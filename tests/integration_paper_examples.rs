//! The worked examples of the paper (Figs. 1b and 2, Table I, the failures
//! example of Section 2.1) as executable assertions.

use ccs_equiv::{failures, Equivalence, Query};
use ccs_fsp::model::ModelClass;
use ccs_fsp::{format, ops};
use ccs_reductions::figures;

/// Table I / Fig. 1a: the model hierarchy — every specialised class is
/// contained in the more general ones.
#[test]
fn model_hierarchy_inclusions() {
    let examples = vec![
        ("general", "trans p tau q\ntrans p a q\next q y"),
        ("observable", "trans p a q\next q y"),
        ("standard", "trans p tau q\naccept q"),
        ("restricted", "trans p a q\naccept p q"),
        ("rou", "trans p a q\ntrans q a q\naccept p q"),
        ("deterministic", "trans p a q\ntrans q a p\naccept p q"),
        ("tree", "trans p a q\ntrans p b r\naccept p q r"),
    ];
    for (name, text) in examples {
        let fsp = format::parse(text).unwrap();
        let profile = fsp.profile();
        let classes = profile.classes();
        assert!(classes.contains(&ModelClass::General), "{name}");
        if profile.is(ModelClass::RestrictedObservableUnary) {
            assert!(profile.is(ModelClass::RestrictedObservable), "{name}");
            assert!(profile.is(ModelClass::Restricted), "{name}");
            assert!(profile.is(ModelClass::Observable), "{name}");
        }
        if profile.is(ModelClass::Restricted) {
            assert!(profile.is(ModelClass::Standard), "{name}");
        }
        if profile.is(ModelClass::Deterministic) {
            assert!(profile.is(ModelClass::Observable), "{name}");
        }
        if profile.is(ModelClass::FiniteTree) {
            assert!(profile.is(ModelClass::Restricted), "{name}");
        }
    }
}

/// The failures example of Section 2.1: for the finite tree of Fig. 1b the
/// start state's failures at the empty trace are exactly the subsets of
/// `{b, c}`.
#[test]
fn fig1_failures_example() {
    let tree = figures::fig1_finite_tree();
    let fails = failures::failures_up_to(&tree, tree.start(), 2);
    let (eps_trace, eps_refusals) = &fails[0];
    assert!(eps_trace.is_empty());
    assert_eq!(eps_refusals, &vec![vec!["b".to_owned(), "c".to_owned()]]);
    // After `a`, one derivative refuses {a} only and another refuses {a, b}:
    // the downward closures match the paper's {a}×2^{b,c} ∪ {a}×2^{a,...}
    // shape in that refusing everything is impossible but refusing the
    // untaken branches is possible.
    let after_a: Vec<_> = fails
        .iter()
        .filter(|(t, _)| t == &vec!["a".to_owned()])
        .collect();
    assert_eq!(after_a.len(), 1);
    assert!(!after_a[0].1.is_empty());
}

/// Fig. 2: the separating examples for the equivalence hierarchy.
#[test]
fn fig2_separations() {
    let (l, r) = figures::trace_equal_failure_different();
    assert!(Query::new(Equivalence::KObservational(1))
        .between(&l, &r)
        .unwrap());
    assert!(!Query::new(Equivalence::Failure).between(&l, &r).unwrap());

    let (l, r) = figures::failure_equal_observational_different();
    assert!(Query::new(Equivalence::Failure).between(&l, &r).unwrap());
    assert!(!Query::new(Equivalence::Observational)
        .between(&l, &r)
        .unwrap());

    let (l, r) = figures::observational_equal_strong_different();
    assert!(Query::new(Equivalence::Observational)
        .between(&l, &r)
        .unwrap());
    assert!(!Query::new(Equivalence::Strong).between(&l, &r).unwrap());
}

/// The remark at the end of Section 4: `p ≈₂ q*` (the trivial process) iff
/// every state reachable from `p` has outgoing transitions for every symbol.
#[test]
fn trivial_process_characterisation() {
    let trivial = ccs_reductions::gadgets::trivial_nfa(&["a", "b"]);
    // Complete process: every reachable state has both actions enabled.
    let complete =
        format::parse("trans p a q\ntrans p b p\ntrans q a p\ntrans q b q\naccept p q").unwrap();
    assert!(Query::new(Equivalence::KObservational(2))
        .between(&complete, &trivial)
        .unwrap());
    // Incomplete process: some reachable state is missing an action.
    let incomplete = format::parse("trans p a q\ntrans p b p\ntrans q b q\naccept p q").unwrap();
    assert!(!Query::new(Equivalence::KObservational(2))
        .between(&incomplete, &trivial)
        .unwrap());
    // Both are ≈₁ (language) equivalent to the trivial process only if
    // universal; the complete one is, the incomplete one is not over {a,b}...
    // actually the incomplete one still traces every string? No: after `a`
    // the state q has no `a` transition, so `aa` is not a trace.
    assert!(Query::new(Equivalence::Language)
        .between(&complete, &trivial)
        .unwrap());
    assert!(!Query::new(Equivalence::Language)
        .between(&incomplete, &trivial)
        .unwrap());
}

/// Lemma 4.1: `p ≈ₖ q` iff (`p ∪ q ≈ₖ p` and `p ∪ q ≈ₖ q`), checked for the
/// star-expression-style union on restricted observable processes.
#[test]
fn lemma_4_1_union_characterisation() {
    let cases = [
        (
            "trans p a q\naccept p q",
            "trans u a v\ntrans u a w\naccept u v w",
            1usize,
        ),
        (
            "trans p a q\naccept p q",
            "trans u a v\ntrans v a w\naccept u v w",
            1,
        ),
        (
            "trans p a q\ntrans q b r\naccept p q r",
            "trans u a v\ntrans v c w\naccept u v w",
            2,
        ),
    ];
    for (lt, rt, k) in cases {
        let p = format::parse(lt).unwrap();
        let q = format::parse(rt).unwrap();
        let union = ccs_fsp::ops::make_restricted(&ops::choice(&p, &q));
        let lhs = ccs_equiv::kobs::kobs_equivalent(&p, &q, k);
        let rhs = ccs_equiv::kobs::kobs_equivalent(&union, &p, k)
            && ccs_equiv::kobs::kobs_equivalent(&union, &q, k);
        assert_eq!(lhs, rhs, "{lt} vs {rt} at level {k}");
    }
}
