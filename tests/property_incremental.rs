//! Cross-crate property tests for incremental partition maintenance: random
//! edit streams drive a [`DeltaRefiner`] per solver engine (the four
//! sequential solvers plus the sharded parallel engine at 1, 2 and 8
//! workers) and the session-level `apply_delta` path, asserting after every
//! step that the maintained state is block-for-block identical to a
//! from-scratch rebuild — partitions via the kernel oracle, verdicts via
//! `classify_all` against a fresh [`EquivSession`].

use ccs_equiv::{EquivSession, Equivalence};
use ccs_fsp::{Label, StateId};
use ccs_partition::{solve, Algorithm, DeltaRefiner, EdgeDelta};
use ccs_workloads::{instances, mutating_queries, random, RandomConfig};
use proptest::prelude::*;

/// Every maintenance engine under test.
const ENGINES: [Algorithm; 7] = [
    Algorithm::Naive,
    Algorithm::KanellakisSmolkaBothHalves,
    Algorithm::KanellakisSmolka,
    Algorithm::PaigeTarjan,
    Algorithm::KanellakisSmolkaParallel { threads: 1 },
    Algorithm::KanellakisSmolkaParallel { threads: 2 },
    Algorithm::KanellakisSmolkaParallel { threads: 8 },
];

/// A deterministic xorshift stream, so a failing case shrinks to a seed.
fn xorshift(seed: &mut u64) -> u64 {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    *seed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random single-edit-to-small-batch streams over random instances:
    /// every engine's refiner stays equal to a from-scratch solve of its
    /// own mutated instance after every batch.
    #[test]
    fn every_engine_tracks_the_from_scratch_oracle(
        n in 2usize..24,
        labels in 1usize..3,
        density in 0usize..4,
        mut seed in 1u64..1_000_000,
    ) {
        let inst = instances::random(n, labels, density * n, seed);
        let mut refiners: Vec<DeltaRefiner> = ENGINES
            .iter()
            .map(|&alg| DeltaRefiner::with_threshold(inst.clone(), alg, 1.0))
            .collect();
        for _ in 0..4 {
            let edits = 1 + (xorshift(&mut seed) % 3) as usize;
            let mut delta = EdgeDelta::default();
            for _ in 0..edits {
                let edge = (
                    (xorshift(&mut seed) % labels as u64) as usize,
                    (xorshift(&mut seed) % n as u64) as usize,
                    (xorshift(&mut seed) % n as u64) as usize,
                );
                if xorshift(&mut seed) % 3 == 0 {
                    delta.removals.push(edge);
                } else {
                    delta.additions.push(edge);
                }
            }
            for refiner in &mut refiners {
                refiner.apply(&delta);
            }
            let oracle = solve(refiners[0].instance(), Algorithm::PaigeTarjan);
            prop_assert!(refiners[0].instance().is_consistent_stable(&oracle));
            for (refiner, alg) in refiners.iter().zip(ENGINES) {
                prop_assert_eq!(
                    refiner.partition(),
                    &oracle,
                    "{} diverged from the from-scratch oracle",
                    alg
                );
            }
        }
    }
}

/// Classifies under a battery of notions on both the mutated session and a
/// fresh one over the same process, asserting block-for-block agreement —
/// identical partitions imply identical pair verdicts for every query.
fn assert_session_matches_fresh(session: &EquivSession) -> Result<(), TestCaseError> {
    let fresh = EquivSession::for_process(session.fsp());
    for notion in [
        Equivalence::Strong,
        Equivalence::Observational,
        Equivalence::Language,
    ] {
        let maintained = session.classify_all(notion);
        let rebuilt = fresh.classify_all(notion);
        prop_assert_eq!(
            maintained.as_ref(),
            rebuilt.as_ref(),
            "{} classification diverged after a delta",
            notion
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The gadget toggle stream (τ-free: the cache-retaining fast paths)
    /// through `EquivSession::apply_delta`, cross-checked per step.
    #[test]
    fn session_deltas_match_fresh_sessions_on_gadget_streams(
        copies in 2usize..8,
        batches in 1usize..5,
        edits in 1usize..3,
        seed in 0u64..1_000,
    ) {
        let wl = mutating_queries::mutating_workload(copies, batches, edits, 4, seed);
        let mut session = EquivSession::for_process(&wl.fsp);
        // Warm the caches so deltas have something to invalidate or retain.
        let _ = session.classify_all(Equivalence::Observational);
        for batch in &wl.batches {
            session.apply_delta(&batch.additions, &batch.removals);
            assert_session_matches_fresh(&session)?;
        }
    }

    /// Random edit streams over random τ-bearing processes: exercises the
    /// τ-touching rebuild path and the strong-only delta refresh.
    #[test]
    fn session_deltas_match_fresh_sessions_on_tau_streams(
        states in 2usize..16,
        mut seed in 1u64..1_000_000,
    ) {
        let config = RandomConfig {
            tau_ratio: 0.3,
            accept_ratio: 0.5,
            ..RandomConfig::sized(states, seed)
        };
        let fsp = random::random_fsp(&config);
        let num_actions = fsp.num_actions();
        let mut session = EquivSession::for_process(&fsp);
        let _ = session.classify_all(Equivalence::Strong);
        let _ = session.classify_all(Equivalence::Observational);
        for _ in 0..3 {
            let pick_label = |seed: &mut u64| {
                let draw = (xorshift(seed) % (num_actions as u64 + 1)) as usize;
                fsp.action_ids()
                    .nth(draw)
                    .map_or(Label::Tau, Label::Act)
            };
            let pick_state = |seed: &mut u64| {
                StateId::from_index((xorshift(seed) % states as u64) as usize)
            };
            let edge = (pick_state(&mut seed), pick_label(&mut seed), pick_state(&mut seed));
            if xorshift(&mut seed) % 3 == 0 {
                session.apply_delta(&[], &[edge]);
            } else {
                session.apply_delta(&[edge], &[]);
            }
            assert_session_matches_fresh(&session)?;
        }
    }
}
