//! Cross-crate property tests: on random `ccs_workloads` inputs, all four
//! generalized-partitioning solvers (naive, Kanellakis–Smolka in both the
//! both-halves and smaller-half variants, Paige–Tarjan) produce identical
//! partitions that pass the `is_consistent_stable` oracle, both on raw
//! instances and through the Lemma 3.1 reduction from processes; on the
//! deterministic special case Hopcroft agrees as well.

use ccs_equiv::strong;
use ccs_partition::{hopcroft, solve, Algorithm, Dfa, Instance, Partition};
use ccs_workloads::{instances, random, RandomConfig};
use proptest::prelude::*;

/// Checks that every [`Algorithm`] produces the same partition and that the
/// result is consistent and stable; returns the agreed partition.
fn solvers_agree(inst: &Instance) -> Result<Partition, TestCaseError> {
    let reference = solve(inst, Algorithm::Naive);
    for alg in Algorithm::ALL {
        let p = solve(inst, alg);
        prop_assert!(p == reference, "{alg} disagrees with naive");
    }
    prop_assert!(inst.is_consistent_stable(&reference));
    Ok(reference)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn solvers_agree_on_random_instances(
        n in 1usize..40,
        labels in 1usize..4,
        density in 0usize..5,
        seed in 0u64..1_000,
    ) {
        let inst = instances::random(n, labels, density * n, seed);
        solvers_agree(&inst)?;
    }

    #[test]
    fn solvers_agree_on_random_processes(
        states in 1usize..32,
        seed in 0u64..1_000,
        tau in 0usize..2,
    ) {
        // Through the Lemma 3.1 reduction: random process -> instance.
        let config = RandomConfig {
            tau_ratio: 0.3 * tau as f64,
            accept_ratio: 0.6,
            ..RandomConfig::sized(states, seed)
        };
        let inst = strong::to_instance(&random::random_fsp(&config));
        let p = solvers_agree(&inst)?;
        prop_assert_eq!(p.num_elements(), states);
    }

    #[test]
    fn hopcroft_agrees_on_the_deterministic_case(
        n in 1usize..32,
        labels in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let inst = instances::complete_deterministic(n, labels, seed);
        let mut dfa = Dfa::new(n, labels, 0);
        for s in 0..n {
            dfa.set_class(s, inst.initial_blocks()[s] as usize);
            for l in 0..labels {
                dfa.set_transition(s, l, inst.successors(l, s)[0].index());
            }
        }
        let via_hopcroft = hopcroft::minimize(&dfa);
        let reference = solvers_agree(&inst)?;
        prop_assert_eq!(via_hopcroft, reference);
    }

    #[test]
    fn smaller_half_matches_both_halves_on_families(n in 1usize..64) {
        for inst in [instances::chain(n), instances::cycle(n)] {
            let small = solve(&inst, Algorithm::KanellakisSmolka);
            let both = solve(&inst, Algorithm::KanellakisSmolkaBothHalves);
            prop_assert_eq!(small, both);
        }
    }
}
