//! Determinism suite for the sharded parallel refinement engine: at 1, 2
//! and 8 worker threads, `ccs_partition::par` must produce block-for-block
//! the same partition as the sequential smaller-half engine on every
//! `ccs_workloads` family — structured instance families, dense and sparse
//! random instances over proptest-drawn seeds, the deterministic special
//! case, and process-level workloads through the Lemma 3.1 reduction.
//!
//! The parallel runs force the sequential-fallback threshold to `0`
//! (`par::refine_with_threshold`) so even small workloads exercise the
//! sharded rounds instead of delegating; the `solve` entry point (default
//! threshold) and the `CCS_THREADS`-driven default worker count are covered
//! separately, since those are the paths the CI thread matrix varies.

use ccs_equiv::strong;
use ccs_partition::{kanellakis_smolka, par, solve, Algorithm, Instance};
use ccs_workloads::{instances, random, RandomConfig};
use proptest::prelude::*;

/// The thread counts the determinism contract is checked at.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Asserts that every parallel configuration reproduces the sequential
/// smaller-half partition block for block, then returns it.
fn assert_parallel_matches_sequential(inst: &Instance, context: &str) {
    let sequential = kanellakis_smolka::refine(inst);
    for threads in THREAD_COUNTS {
        let parallel = par::refine_with_threshold(inst, threads, 0);
        assert_eq!(
            parallel, sequential,
            "{context}: {threads} threads diverged from sequential"
        );
        assert_eq!(
            parallel.blocks(),
            sequential.blocks(),
            "{context}: {threads} threads, block lists differ"
        );
        // Through the public dispatch (default fallback threshold).
        assert_eq!(
            solve(inst, Algorithm::KanellakisSmolkaParallel { threads }),
            sequential,
            "{context}: {threads} threads via solve()"
        );
    }
    assert!(
        inst.is_consistent_stable(&sequential),
        "{context}: oracle rejects the agreed partition"
    );
}

#[test]
fn structured_families_are_deterministic() {
    // Sizes straddle the default sequential-fallback threshold (512).
    for n in [1usize, 2, 33, 257, 700] {
        assert_parallel_matches_sequential(&instances::chain(n), &format!("chain({n})"));
        assert_parallel_matches_sequential(&instances::cycle(n), &format!("cycle({n})"));
    }
    for depth in [0usize, 3, 9] {
        assert_parallel_matches_sequential(
            &instances::binary_tree(depth),
            &format!("binary_tree({depth})"),
        );
    }
    for (n, labels, degree, classes, seed) in
        [(64, 2, 3, 4, 1u64), (300, 4, 8, 16, 2), (1024, 3, 5, 8, 3)]
    {
        assert_parallel_matches_sequential(
            &instances::dense_random(n, labels, degree, classes, seed),
            &format!("dense_random({n})"),
        );
    }
    for (n, labels, seed) in [(100, 2, 4u64), (900, 3, 5)] {
        assert_parallel_matches_sequential(
            &instances::complete_deterministic(n, labels, seed),
            &format!("complete_deterministic({n})"),
        );
    }
}

/// The environment-selected configuration the CI matrix varies: whatever
/// `CCS_THREADS` says (or the machine's parallelism) must still reproduce
/// the sequential partition.
#[test]
fn env_selected_thread_count_is_deterministic() {
    let threads = par::default_threads();
    assert!(threads >= 1);
    let alg = Algorithm::parallel_default();
    assert_eq!(alg, Algorithm::KanellakisSmolkaParallel { threads });
    for inst in [
        instances::random(1500, 3, 6000, 11),
        instances::dense_random(777, 2, 6, 5, 12),
    ] {
        assert_eq!(
            solve(&inst, alg),
            kanellakis_smolka::refine(&inst),
            "CCS_THREADS={threads}"
        );
        assert_eq!(
            par::refine_with_threshold(&inst, threads, 0),
            kanellakis_smolka::refine(&inst),
            "CCS_THREADS={threads}, forced parallel path"
        );
    }
}

/// Repeated runs of the same configuration must agree with each other
/// (no scheduling-dependent output), not just with the sequential engine.
#[test]
fn repeated_parallel_runs_are_identical() {
    let inst = instances::random(600, 2, 2400, 99);
    let first = par::refine_with_threshold(&inst, 8, 0);
    for _ in 0..5 {
        assert_eq!(par::refine_with_threshold(&inst, 8, 0), first);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn parallel_matches_sequential_on_random_instances(
        n in 1usize..120,
        labels in 1usize..4,
        density in 0usize..5,
        seed in 0u64..1_000,
        two_class in 0usize..2,
    ) {
        let mut inst = instances::random(n, labels, density * n, seed);
        if two_class == 1 {
            for x in 0..n {
                inst.set_initial_block(x, x % 2);
            }
        }
        let sequential = kanellakis_smolka::refine(&inst);
        for threads in THREAD_COUNTS {
            let parallel = par::refine_with_threshold(&inst, threads, 0);
            prop_assert_eq!(&parallel, &sequential, "{} threads", threads);
        }
    }

    #[test]
    fn parallel_matches_sequential_on_random_processes(
        states in 1usize..64,
        seed in 0u64..1_000,
        tau in 0usize..2,
    ) {
        // Through the Lemma 3.1 reduction: random process -> instance.
        let config = RandomConfig {
            tau_ratio: 0.3 * tau as f64,
            accept_ratio: 0.6,
            ..RandomConfig::sized(states, seed)
        };
        let inst = strong::to_instance(&random::random_fsp(&config));
        let sequential = kanellakis_smolka::refine(&inst);
        for threads in THREAD_COUNTS {
            let parallel = par::refine_with_threshold(&inst, threads, 0);
            prop_assert_eq!(&parallel, &sequential, "{} threads", threads);
        }
    }
}
