//! End-to-end pipeline tests for star expressions: parse → representative
//! FSP → equivalence checking, exercising every crate in the workspace.

use ccs_equiv::{Equivalence, Query};
use ccs_expr::{ccs_equivalent, construct, language_equivalent, parse};

/// The motivating property of Section 2.3: expressions equal as regular
/// expressions need not be CCS-equivalent, but CCS equivalence always implies
/// language equivalence.
#[test]
fn ccs_equivalence_refines_language_equivalence() {
    let corpus = [
        "0",
        "a",
        "a.b",
        "a + b",
        "a.(b + c)",
        "a.b + a.c",
        "(a + b)*",
        "a*.b*",
        "(a.b)* + a",
        "a.0 + b",
        "a**",
        "(a + 0).(b + c*)",
    ];
    for l in corpus {
        for r in corpus {
            let el = parse(l).unwrap();
            let er = parse(r).unwrap();
            let ccs = ccs_equivalent(&el, &er);
            let lang = language_equivalent(&el, &er);
            if ccs {
                assert!(lang, "{l} ~ {r} must imply language equality");
            }
        }
    }
}

/// The representative FSP of every corpus expression is observable and
/// standard (Lemma 2.3.1) and its strong quotient is still CCS-equivalent to
/// the expression.
#[test]
fn representatives_are_well_formed_and_minimizable() {
    let corpus = ["a.(b + c)*", "(a + b.c)*.(d + 0)", "a.b.c + a.b.d", "(a*)*"];
    for text in corpus {
        let expr = parse(text).unwrap();
        let fsp = construct::representative(&expr);
        assert!(fsp.profile().observable, "{text}");
        assert!(fsp.profile().standard, "{text}");
        let quotient = ccs_equiv::strong::quotient(&fsp);
        assert!(
            ccs_equiv::strong::strong_equivalent(&fsp, &quotient),
            "{text}"
        );
        assert!(quotient.num_states() <= fsp.num_states(), "{text}");
    }
}

/// The three semantics orderings on a hand-picked set of pairs: strong ⊆
/// failure ⊆ language, as seen through star expressions.
#[test]
fn expression_pairs_across_the_hierarchy() {
    // (left, right, ccs-equal?, failure-equal?, language-equal?)
    let cases = [
        ("a.(b + c)", "a.b + a.c", false, false, true),
        ("a + a", "a", true, true, true),
        ("a.b + a.b", "a.b", true, true, true),
        ("(a.b)*", "(a.b)*.(a.b)*", true, true, true),
        ("a.b", "a.c", false, false, false),
        ("a.(b.x + b.y)", "a.b.x + a.b.y", false, true, true),
    ];
    for (l, r, want_ccs, want_failure, want_lang) in cases {
        let el = parse(l).unwrap();
        let er = parse(r).unwrap();
        assert_eq!(ccs_equivalent(&el, &er), want_ccs, "ccs: {l} vs {r}");
        assert_eq!(
            ccs_expr::failure_equivalent(&el, &er),
            want_failure,
            "failure: {l} vs {r}"
        );
        assert_eq!(
            language_equivalent(&el, &er),
            want_lang,
            "language: {l} vs {r}"
        );
    }
}

/// Representative FSPs can be fed straight into the generic checkers: the
/// CCS equivalence problem really is a strong-equivalence problem
/// (Section 2.3).
#[test]
fn ccs_equivalence_problem_is_strong_equivalence_of_representatives() {
    let pairs = [
        ("a.(b + c)", "a.b + a.c"),
        ("a + b", "b + a"),
        ("a*", "a*.a*"),
    ];
    for (l, r) in pairs {
        let el = parse(l).unwrap();
        let er = parse(r).unwrap();
        let fl = construct::representative(&el);
        let fr = construct::representative(&er);
        assert_eq!(
            ccs_equivalent(&el, &er),
            Query::new(Equivalence::Strong).between(&fl, &fr).unwrap(),
            "{l} vs {r}"
        );
    }
}
