//! End-to-end protocol verification: the distributed-protocols corpus
//! (`ccs_workloads::protocols`) checked against its specifications through
//! every relevant pipeline — compositional minimization (`ccs_expr::compose`
//! plus `ccs_fsp::ops::quotient`), the observational checker, the
//! on-the-fly engine, and the server wire protocol.

use ccs_equiv::{onthefly, weak, Equivalence};
use ccs_expr::{compose, laws};
use ccs_workloads::protocols;

/// Every corpus entry's composed system matches (or provably mismatches)
/// its spec under observational equivalence, exactly as declared.
#[test]
fn corpus_meets_declared_observational_verdicts() {
    for protocol in protocols::corpus() {
        assert_eq!(
            weak::observationally_equivalent(&protocol.composed(), &protocol.spec),
            protocol.equivalent,
            "{}",
            protocol.name
        );
    }
}

/// The compositional-minimization pipeline: minimized composition agrees
/// with the plain composition on every corpus entry (the `≈`-congruence
/// law for `|`, checked via `laws::parallel_congruence`), and the minimized
/// system still gets the declared verdict against the spec.
#[test]
fn compositional_minimization_preserves_verdicts() {
    for protocol in protocols::corpus() {
        assert!(
            laws::parallel_congruence(&protocol.components),
            "{}: minimize-then-compose diverged from compose-then-check",
            protocol.name
        );
        assert_eq!(
            weak::observationally_equivalent(&protocol.composed_minimized(), &protocol.spec),
            protocol.equivalent,
            "{}: minimized system changed the verdict",
            protocol.name
        );
    }
}

/// Minimization pays: on the parameter-heavy families the intermediate
/// product never needs to exceed quotient size, and the final minimized
/// system collapses to roughly spec size.
#[test]
fn minimization_collapses_the_state_space() {
    for protocol in [
        protocols::alternating_bit(2),
        protocols::ring_election(3),
        protocols::two_phase_commit(2),
    ] {
        let full = protocol.composed();
        let small = protocol.composed_minimized();
        assert!(small.num_states() < full.num_states(), "{}", protocol.name);
        assert!(
            small.num_states() <= protocol.spec.num_states() + 2,
            "{}: minimized to {} states vs spec {}",
            protocol.name,
            small.num_states(),
            protocol.spec.num_states()
        );
    }
}

/// The on-the-fly engine reaches the same verdicts on the corpus for the
/// determinizable notions; correct protocols are equivalent to their spec
/// under every notion implied by `≈` on these (all-accepting) models.
#[test]
fn on_the_fly_verdicts_match_the_corpus_flags() {
    for protocol in protocols::corpus() {
        let composed = protocol.composed();
        for notion in [
            Equivalence::Language,
            Equivalence::Trace,
            Equivalence::Failure,
        ] {
            let outcome = onthefly::compare(&composed, &protocol.spec, notion).unwrap();
            if protocol.equivalent {
                assert!(
                    outcome.equivalent,
                    "{}/{notion}: ≈ implies the determinizable notions here",
                    protocol.name
                );
            }
        }
        if !protocol.equivalent {
            // The broken variants are already trace-distinguishable, so the
            // on-the-fly engine must refute them with a witness.
            let outcome = onthefly::compare(&composed, &protocol.spec, Equivalence::Trace).unwrap();
            assert!(!outcome.equivalent, "{}", protocol.name);
            assert!(outcome.witness.is_some(), "{}", protocol.name);
        }
    }
}

/// A protocol check over the wire: serialize the composed system into the
/// server, and ask for its verdict against the spec on the on-the-fly path.
#[test]
fn protocol_verification_over_the_server() {
    use ccs_server::{json, Service};

    let protocol = protocols::two_phase_commit(2);
    let composed = protocol.composed();
    let union = ccs_fsp::ops::disjoint_union(&composed, &protocol.spec);
    let (p, q) = ccs_fsp::ops::union_starts(&union, &composed, &protocol.spec);
    let text = ccs_fsp::format::to_text(&union.fsp);
    let left = union.fsp.state_name(p).expect("union states are named");
    let right = union.fsp.state_name(q).expect("union states are named");

    // Threshold 0 forces the on-the-fly path regardless of model size.
    let service = Service::with_otf_threshold(ccs_server::RegistryConfig::default(), 0);
    let escaped = json::Json::str(text.as_str()).to_string();
    let response = service.handle_line(&format!(r#"{{"op":"open","text":{escaped}}}"#));
    let opened = json::parse(&response).unwrap();
    assert_eq!(
        opened.get("ok"),
        Some(&json::Json::Bool(true)),
        "{response}"
    );
    let id = opened.get("session").unwrap().as_str().unwrap().to_owned();

    let escaped_left = json::Json::str(left).to_string();
    let escaped_right = json::Json::str(right).to_string();
    let response = service.handle_line(&format!(
        r#"{{"op":"pair","session":"{id}","notion":"failure","left":{escaped_left},"right":{escaped_right}}}"#
    ));
    let value = json::parse(&response).unwrap();
    assert_eq!(value.get("ok"), Some(&json::Json::Bool(true)), "{response}");
    assert_eq!(value.get("equivalent"), Some(&json::Json::Bool(true)));
    assert_eq!(
        value.get("engine").and_then(json::Json::as_str),
        Some("on-the-fly")
    );
}

/// The quotient operation itself: `P/≈` is weakly bisimilar to `P` on the
/// composed protocols (the other executable fact `compose::minimized`
/// rests on).
#[test]
fn quotient_is_weakly_bisimilar_on_composed_protocols() {
    for protocol in [
        protocols::alternating_bit(1),
        protocols::two_phase_commit(1),
    ] {
        let composed = protocol.composed();
        let minimized = compose::minimized(&composed);
        assert!(
            weak::observationally_equivalent(&minimized, &composed),
            "{}",
            protocol.name
        );
    }
}
