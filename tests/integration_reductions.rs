//! End-to-end verification of the paper's reductions (Lemma 4.2,
//! Theorem 4.1(b)(c), Theorem 5.1) on families of instances.

use ccs_equiv::{kobs, language, Equivalence, Query};
use ccs_fsp::format;
use ccs_reductions::gadgets;
use ccs_workloads::{random, RandomConfig};

/// Theorem 4.1(b): `p ≈ₖ q` iff `p′ ≈ₖ₊₁ q′` for the lifting gadget, checked
/// at k = 1 and k = 2 on a mix of equivalent and inequivalent pairs.
#[test]
fn kobs_lifting_gadget_is_an_equivalence_preserving_reduction() {
    let pairs = vec![
        // ≈₁-equivalent (same prefix-closed language).
        (
            "trans p a q\naccept p q",
            "trans u a v\ntrans u a w\naccept u v w",
        ),
        // ≈₁-inequivalent (different languages).
        (
            "trans p a q\naccept p q",
            "trans u a v\ntrans v a w\naccept u v w",
        ),
        // ≈₁-equivalent but ≈₂-inequivalent (the classic branching pair).
        (
            "trans p a q\ntrans q b r\ntrans q c s\naccept p q r s",
            "trans u a v\ntrans u a w\ntrans v b x\ntrans w c y\naccept u v w x y",
        ),
    ];
    for (lt, rt) in pairs {
        let p = format::parse(lt).unwrap();
        let q = format::parse(rt).unwrap();
        for k in 1..=2usize {
            let before = kobs::kobs_equivalent(&p, &q, k);
            let (p1, q1) = gadgets::kobs_lift(&p, &q, "z");
            let after = kobs::kobs_equivalent(&p1, &q1, k + 1);
            assert_eq!(before, after, "{lt} vs {rt} at level {k}");
        }
    }
}

/// Theorem 5.1: `L(p) = L(q)` iff the gadget outputs are failure equivalent,
/// checked on random restricted observable processes.
#[test]
fn failure_gadget_reduces_language_equivalence() {
    for seed in 0..10u64 {
        let base = random::random_fsp(&RandomConfig::sized(7, seed));
        let other = if seed % 2 == 0 {
            random::bisimilar_variant(&base, seed + 10)
        } else {
            random::random_fsp(&RandomConfig::sized(7, seed + 40))
        };
        let lang = language::language_equivalent(&base, &other).holds;
        let g1 = gadgets::failure_gadget(&base);
        let g2 = gadgets::failure_gadget(&other);
        let fail = ccs_equiv::failures::failure_equivalent(&g1, &g2).equivalent;
        assert_eq!(lang, fail, "seed {seed}");
    }
}

/// Lemma 4.2 / Fig. 4: the gadget preserves universality status, and
/// universality over the restricted observable model is `≈₁`-equivalence to
/// the trivial process.
#[test]
fn universality_gadget_end_to_end() {
    // A family of complete automata over {a, b}: counters of different
    // moduli accepting residue 0 (universal only for modulus 1).
    for modulus in 1..=4usize {
        let mut b = ccs_fsp::Fsp::builder(&format!("mod-{modulus}"));
        let states: Vec<_> = (0..modulus).map(|i| b.state(&format!("s{i}"))).collect();
        let a = b.action("a");
        let bb = b.action("b");
        for i in 0..modulus {
            b.add_transition(states[i], ccs_fsp::Label::Act(a), states[(i + 1) % modulus]);
            b.add_transition(states[i], ccs_fsp::Label::Act(bb), states[i]);
        }
        b.set_start(states[0]);
        b.mark_accepting(states[0]);
        let m = b.build().unwrap();
        let input_universal = language::is_universal(&m, m.start()).holds;
        assert_eq!(input_universal, modulus == 1);

        let gadget = gadgets::universality_gadget(&m);
        assert!(gadget.profile().restricted && gadget.profile().observable);
        let output_universal = language::is_universal(&gadget, gadget.start()).holds;
        assert_eq!(input_universal, output_universal, "modulus {modulus}");

        let trivial = gadgets::trivial_nfa(&["a", "b"]);
        assert_eq!(
            output_universal,
            Query::new(Equivalence::KObservational(1))
                .between(&gadget, &trivial)
                .unwrap(),
            "modulus {modulus}"
        );
    }
}

/// Theorem 4.1(c): the dead-state transformation preserves the language while
/// making accepting states exactly the dead states.
#[test]
fn dead_state_transformation_on_random_automata() {
    for seed in 0..8u64 {
        let cfg = RandomConfig {
            accept_ratio: 0.5,
            ..RandomConfig::sized(8, seed)
        };
        // Prefix with a fresh initial action so the empty string is never
        // accepted — the precondition under which Theorem 4.1(c) applies the
        // transformation (an accepting live start state cannot be represented
        // in the "accepting iff dead" form).
        let m = ccs_fsp::ops::prefix("init", &random::random_fsp(&cfg));
        let t = gadgets::dead_state_transform(&m);
        for s in t.accepting_states() {
            assert!(t.is_dead(s), "seed {seed}");
        }
        assert!(
            language::language_equivalent(&m, &t).holds,
            "seed {seed}: language must be preserved"
        );
    }
}

/// The chaos process: `q ≈₂ chaos` holds for processes that can, after every
/// non-empty string, both continue and be stuck — and fails otherwise.
#[test]
fn chaos_characterisation() {
    let chaos = gadgets::chaos("a");
    // A process with the same "may continue, may be stuck" structure.
    let similar = format::parse(
        "trans s a s\ntrans s a t\ntrans s a u\ntrans u a u\ntrans u a t\naccept s t u",
    )
    .unwrap();
    assert!(kobs::kobs_equivalent(&chaos, &similar, 2));
    // A process that can never get stuck is not ≈₂ chaos.
    let always = format::parse("trans p a p\naccept p").unwrap();
    assert!(!kobs::kobs_equivalent(&chaos, &always, 2));
    // A process that always gets stuck after one step is not ≈₂ chaos either.
    let once = format::parse("trans p a q\naccept p q").unwrap();
    assert!(!kobs::kobs_equivalent(&chaos, &once, 2));
}
