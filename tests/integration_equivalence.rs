//! Cross-crate integration tests: the equivalence hierarchy of Table II /
//! Proposition 2.2.3 checked on generated workloads.

use ccs_equiv::{Equivalence, Query};
use ccs_fsp::ops;
use ccs_workloads::{families, random, RandomConfig};

/// Proposition 2.2.3(a): `~` ⟹ `≡F` ⟹ `≈₁`, and `≈` ⟹ `≡F` on restricted
/// processes; checked on random restricted observable pairs.
#[test]
fn implication_hierarchy_on_random_restricted_pairs() {
    for seed in 0..12u64 {
        let base = random::random_fsp(&RandomConfig::sized(10, seed));
        let other = if seed % 2 == 0 {
            random::bisimilar_variant(&base, seed + 100)
        } else {
            random::random_fsp(&RandomConfig::sized(10, seed + 1000))
        };
        let strong = Query::new(Equivalence::Strong)
            .between(&base, &other)
            .unwrap();
        let weak = Query::new(Equivalence::Observational)
            .between(&base, &other)
            .unwrap();
        let failure = Query::new(Equivalence::Failure)
            .between(&base, &other)
            .unwrap();
        let language = Query::new(Equivalence::Language)
            .between(&base, &other)
            .unwrap();
        let k1 = Query::new(Equivalence::KObservational(1))
            .between(&base, &other)
            .unwrap();
        // Strong implies observational implies failure implies language = ≈₁.
        if strong {
            assert!(weak, "seed {seed}: ~ must imply ≈");
        }
        if weak {
            assert!(
                failure,
                "seed {seed}: ≈ must imply ≡F on restricted processes"
            );
        }
        if failure {
            assert!(language, "seed {seed}: ≡F must imply ≈₁");
        }
        assert_eq!(language, k1, "seed {seed}: ≈₁ is language equivalence here");
    }
}

/// Proposition 2.2.4: in the deterministic model, strong, observational,
/// failure and language equivalence all coincide, and agree with the
/// UNION-FIND fast path.
#[test]
fn deterministic_collapse() {
    for seed in 0..8u64 {
        let left = random::random_deterministic(8, 2, seed);
        let right = random::random_deterministic(8, 2, seed + 50);
        let fast = ccs_equiv::deterministic::deterministic_equivalent(&left, &right)
            .unwrap()
            .equivalent;
        // Failure equivalence is omitted here: it is defined for the
        // *restricted* model (all states accepting), while these random
        // deterministic automata have arbitrary accepting sets.
        for notion in [
            Equivalence::Language,
            Equivalence::Observational,
            Equivalence::KObservational(1),
            Equivalence::KObservational(2),
        ] {
            assert_eq!(
                Query::new(notion).between(&left, &right).unwrap(),
                fast,
                "seed {seed}, notion {notion}"
            );
        }
        // Strong equivalence may be finer in general, but for deterministic
        // *complete* processes it coincides with language equivalence too.
        assert_eq!(
            Query::new(Equivalence::Strong)
                .between(&left, &right)
                .unwrap(),
            fast
        );
    }
}

/// Proposition 2.2.1(c): the limit of the ≃ₖ hierarchy is exactly
/// observational equivalence, on processes with τ-moves.
#[test]
fn limited_limit_equals_observational() {
    for seed in 0..8u64 {
        let cfg = RandomConfig {
            tau_ratio: 0.4,
            accept_ratio: 0.6,
            ..RandomConfig::sized(12, seed)
        };
        let f = random::random_fsp(&cfg);
        let hierarchy = ccs_equiv::limited::limited_hierarchy(&f);
        let wp = ccs_equiv::weak::weak_partition(&f);
        assert_eq!(hierarchy.limit(), wp.partition(), "seed {seed}");
    }
}

/// The quotient by strong equivalence is minimal and equivalent, for both
/// structured and random processes.
#[test]
fn quotient_round_trip() {
    let candidates = vec![
        families::cycle(9, "a"),
        families::binary_tree(4),
        families::vending_machine(true),
        random::random_fsp(&RandomConfig::sized(20, 77)),
        random::bisimilar_variant(&families::counter(4), 3),
    ];
    for fsp in candidates {
        let q = ccs_equiv::strong::quotient(&fsp);
        assert!(
            ccs_equiv::strong::strong_equivalent(&fsp, &q),
            "{}",
            fsp.name()
        );
        assert_eq!(
            q.num_states(),
            ccs_equiv::strong::strong_partition(&fsp)
                .partition()
                .blocks()
                .iter()
                .filter(|b| {
                    // Only reachable classes appear in the quotient's reachable part,
                    // but quotient keeps all classes; just compare class count.
                    !b.is_empty()
                })
                .count(),
            "{}",
            fsp.name()
        );
        // Quotienting twice is idempotent in size.
        assert_eq!(ccs_equiv::strong::quotient(&q).num_states(), q.num_states());
    }
}

/// Comparing a process against a bisimilar inflation of itself is the
/// "equivalent pair" workload used by the benches; every notion must agree.
#[test]
fn inflated_pairs_are_equivalent_under_every_notion() {
    for seed in 0..6u64 {
        let cfg = RandomConfig {
            tau_ratio: 0.2,
            accept_ratio: 0.7,
            ..RandomConfig::sized(9, seed)
        };
        let base = random::random_fsp(&cfg);
        let inflated = random::bisimilar_variant(&base, seed + 7);
        for notion in [
            Equivalence::Strong,
            Equivalence::Observational,
            Equivalence::Limited(4),
            Equivalence::KObservational(1),
            Equivalence::Language,
            Equivalence::Trace,
            Equivalence::Failure,
        ] {
            assert!(
                Query::new(notion).between(&base, &inflated).unwrap(),
                "seed {seed}, notion {notion}"
            );
        }
    }
}

/// Witness formulas produced for inequivalent states really do distinguish
/// them (checked by the independent HML model checker).
#[test]
fn distinguishing_formulas_are_sound_on_random_processes() {
    for seed in 0..6u64 {
        let base = random::random_fsp(&RandomConfig::sized(8, seed));
        let Some(perturbed) = random::perturbed_variant(&base, seed + 1) else {
            continue;
        };
        let union = ops::disjoint_union(&base, &perturbed);
        let (p, q) = ops::union_starts(&union, &base, &perturbed);
        let strongly_equivalent = ccs_equiv::strong::strong_equivalent_states(&union.fsp, p, q);
        match ccs_equiv::witness::distinguishing_formula(&union.fsp, p, q) {
            Some(formula) => {
                assert!(!strongly_equivalent);
                assert!(ccs_equiv::witness::satisfies(&union.fsp, p, &formula));
                assert!(!ccs_equiv::witness::satisfies(&union.fsp, q, &formula));
            }
            None => assert!(strongly_equivalent),
        }
    }
}
