//! Determinism suite for the sharded parallel subset exploration: at 1, 2
//! and 8 worker threads, `SubsetAutomaton::explore_with_threshold` must
//! produce an arena byte-identical to the sequential lazy BFS — the same
//! subset ids in the same intern order, the same member sets, enabled
//! lists, acceptance bits, transition table and refusal classes — on
//! structured families, the determinization blowup family, the `≈ₖ`
//! ladder, and proptest-drawn random processes.
//!
//! The parallel runs force the sequential-fallback threshold to `0` so
//! even small processes exercise the sharded rounds, mirroring
//! `tests/parallel_determinism.rs` for the refinement engine.
//!
//! The second half pins the one-arena `≈ₖ` engine to the per-pair
//! synchronized-BFS oracle for k ∈ 0..=4, both through the free functions
//! and through a session sweep.

use ccs_equiv::determinize::{SubsetAutomaton, SubsetId};
use ccs_equiv::{kobs, EquivSession, Equivalence};
use ccs_fsp::saturate::{tau_closure, SaturatedView};
use ccs_fsp::{format, Fsp};
use ccs_partition::Algorithm;
use ccs_workloads::{families, random, RandomConfig};
use proptest::prelude::*;

/// The thread counts the determinism contract is checked at.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Every observable byte of an explored arena, in id order.
#[derive(Debug, PartialEq, Eq)]
struct ArenaSnapshot {
    num_subsets: usize,
    steps_computed: usize,
    delta: Vec<u32>,
    members: Vec<Vec<u32>>,
    enabled: Vec<Vec<u32>>,
    accepting: Vec<bool>,
    refusal_classes: Vec<u32>,
}

/// Interns every state's start subset, explores with the given thread
/// count (threshold 0: always sharded when `threads > 1`), and snapshots
/// the arena.
fn explore_snapshot(fsp: &Fsp, view: &SaturatedView, threads: usize) -> ArenaSnapshot {
    let mut auto = SubsetAutomaton::new(fsp);
    for s in fsp.state_ids() {
        auto.start(view, s);
    }
    auto.explore_with_threshold(view, threads, 0);
    let ids: Vec<SubsetId> = (0..auto.num_subsets())
        .map(|i| u32::try_from(i).unwrap())
        .collect();
    ArenaSnapshot {
        num_subsets: auto.num_subsets(),
        steps_computed: auto.steps_computed(),
        delta: auto.transition_table().to_vec(),
        members: ids.iter().map(|&id| auto.subset(id)).collect(),
        enabled: ids.iter().map(|&id| auto.enabled(id).to_vec()).collect(),
        accepting: ids.iter().map(|&id| auto.is_accepting(id)).collect(),
        refusal_classes: ids.iter().map(|&id| auto.refusal_class(view, id)).collect(),
    }
}

/// Asserts that every parallel thread count reproduces the sequential
/// arena snapshot byte for byte.
fn assert_arena_deterministic(fsp: &Fsp, context: &str) {
    let closure = tau_closure(fsp);
    let view = SaturatedView::build(fsp, &closure);
    let mut sequential = SubsetAutomaton::new(fsp);
    for s in fsp.state_ids() {
        sequential.start(&view, s);
    }
    sequential.explore(&view);
    let baseline = explore_snapshot(fsp, &view, 1);
    assert_eq!(
        baseline.num_subsets,
        sequential.num_subsets(),
        "{context}: explore_with_threshold(1) diverged from plain explore"
    );
    assert_eq!(baseline.delta, sequential.transition_table());
    for threads in THREAD_COUNTS {
        let parallel = explore_snapshot(fsp, &view, threads);
        assert_eq!(
            parallel, baseline,
            "{context}: {threads} threads diverged from sequential arena"
        );
    }
}

#[test]
fn structured_families_build_identical_arenas() {
    for n in [1usize, 3, 17] {
        assert_arena_deterministic(&families::chain(n, "a"), &format!("chain({n})"));
        assert_arena_deterministic(&families::cycle(n, "a"), &format!("cycle({n})"));
        assert_arena_deterministic(&families::tau_chain(n), &format!("tau_chain({n})"));
    }
    assert_arena_deterministic(&families::binary_tree(4), "binary_tree(4)");
    assert_arena_deterministic(&families::vending_machine(true), "vending(internal)");
    assert_arena_deterministic(&families::vending_machine(false), "vending(external)");
}

#[test]
fn blowup_and_ladder_arenas_are_deterministic() {
    // The subset arena here is larger than the process — the interesting
    // case: parallel rounds with many frontier rows.
    for (n, w) in [(12usize, 3usize), (16, 6)] {
        assert_arena_deterministic(&families::det_blowup(n, w), &format!("det_blowup({n},{w})"));
    }
    for (n, k) in [(23usize, 3usize), (60, 4)] {
        assert_arena_deterministic(
            &families::kobs_ladder(n, k),
            &format!("kobs_ladder({n},{k})"),
        );
    }
}

#[test]
fn table_ii_processes_build_identical_arenas() {
    // a.(b + c) vs a.b + a.c — the paper's running example, τ-decorated.
    let f = format::parse(
        "trans p a q\ntrans q b r\ntrans q c s\ntrans u a v\ntrans u a w\n\
         trans v b x\ntrans w c y\ntrans p tau u\naccept p q r s u v w x y",
    )
    .unwrap();
    assert_arena_deterministic(&f, "table-ii union");
}

/// The one-arena `≈ₖ` engine agrees with the per-pair synchronized-BFS
/// oracle on every level of a sweep — through the free functions, with
/// both solvers, and through a session that shares one arena across the
/// whole hierarchy.
#[test]
fn kobs_arena_sweep_matches_the_pairwise_oracle() {
    let ladder = families::kobs_ladder(2 * families::kobs_ladder_module_size(3), 3);
    let processes: Vec<(&str, Fsp)> = vec![
        ("kobs_ladder", ladder),
        ("vending", families::vending_machine(true)),
        ("tau_chain", families::tau_chain(4)),
        ("det_blowup", families::det_blowup(12, 3)),
    ];
    for (name, f) in &processes {
        let session = EquivSession::for_process(f);
        for k in 0..=4usize {
            let oracle = kobs::kobs_partition(f, k);
            assert_eq!(
                &kobs::kobs_partition_arena(f, k),
                &oracle,
                "{name}: one-arena sweep diverged at k = {k}"
            );
            assert_eq!(
                &kobs::kobs_partition_arena_with(
                    f,
                    k,
                    Algorithm::KanellakisSmolkaParallel { threads: 2 },
                    2,
                ),
                &oracle,
                "{name}: parallel one-arena sweep diverged at k = {k}"
            );
            assert_eq!(
                session
                    .classify_all(Equivalence::KObservational(k))
                    .as_ref(),
                &oracle,
                "{name}: session sweep diverged at k = {k}"
            );
        }
        // The whole k = 0..=4 session sweep shares one subset arena: the
        // arena is explored at most once, not once per level.
        let arena_size = session.subset_arena_size();
        let _ = session.classify_all(Equivalence::KObservational(4));
        assert_eq!(
            session.subset_arena_size(),
            arena_size,
            "{name}: re-explored"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_processes_build_identical_arenas(
        states in 1usize..24,
        seed in 0u64..1_000,
        tau in 0usize..2,
    ) {
        let config = RandomConfig {
            tau_ratio: 0.3 * tau as f64,
            accept_ratio: 0.6,
            ..RandomConfig::sized(states, seed)
        };
        let f = random::random_fsp(&config);
        let closure = tau_closure(&f);
        let view = SaturatedView::build(&f, &closure);
        let baseline = explore_snapshot(&f, &view, 1);
        for threads in THREAD_COUNTS {
            let parallel = explore_snapshot(&f, &view, threads);
            prop_assert_eq!(&parallel, &baseline, "{} threads", threads);
        }
    }

    #[test]
    fn random_processes_agree_on_kobs_levels(
        states in 1usize..12,
        seed in 0u64..500,
    ) {
        let config = RandomConfig {
            tau_ratio: 0.25,
            accept_ratio: 0.5,
            ..RandomConfig::sized(states, seed)
        };
        let f = random::random_fsp(&config);
        for k in 0..=3usize {
            prop_assert_eq!(
                &kobs::kobs_partition_arena(&f, k),
                &kobs::kobs_partition(&f, k),
                "k = {}", k
            );
        }
    }
}
