//! Umbrella crate for the Kanellakis–Smolka (PODC '83) reproduction.
//!
//! Re-exports every workspace crate under one roof so the root integration
//! tests, the examples, and downstream users can depend on a single package:
//!
//! * [`fsp`] — finite state processes (Definition 2.1.1): model, builder,
//!   combinators, τ-saturation.
//! * [`partition`] — the generalized partitioning solvers of Section 3
//!   (naive, Kanellakis–Smolka, Paige–Tarjan) plus the deterministic
//!   specializations (Hopcroft, UNION-FIND).
//! * [`equiv`] — the paper's equivalence notions: strong (≅), observational
//!   (≈), k-observational (≈ₖ), failure (≡F), trace, and language.
//! * [`expr`] — CCS star expressions (Section 2.3): AST, parser, and the
//!   representative-FSP construction of Lemma 2.3.1.
//! * [`reductions`] — the hardness gadgets behind the lower bounds of
//!   Sections 4–5.
//! * [`workloads`] — random and structured process generators used by tests
//!   and benchmarks.
//! * [`server`] — equivalence-as-a-service: the line-oriented JSON wire
//!   protocol over TCP, its session registry and batching layer, and the
//!   matching blocking client.
//!
//! Where this crate sits in the workspace — the crate map, the
//! end-to-end data flow, and the notion-to-procedure table — is laid out
//! in `ARCHITECTURE.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ccs_equiv as equiv;
pub use ccs_expr as expr;
pub use ccs_fsp as fsp;
pub use ccs_partition as partition;
pub use ccs_reductions as reductions;
pub use ccs_server as server;
pub use ccs_workloads as workloads;
