//! Offline drop-in subset of the [`criterion`](https://docs.rs/criterion/0.5)
//! benchmark harness.
//!
//! The build environment for this workspace has no network access to a crate
//! registry, so this vendored stub provides the surface the workspace's
//! benches use: [`Criterion`] with `sample_size` / `warm_up_time` /
//! `measurement_time`, benchmark groups with `bench_with_input` and
//! `bench_function`, [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is simple wall-clock timing (no outlier analysis, no saved
//! baselines, no HTML report), reported as `[min median mean]` per
//! benchmark so a single outlier-skewed mean is visible at a glance.
//! `cargo bench -- --test` is honoured the same way real criterion honours
//! it: every benchmark body runs exactly once so CI can smoke-test benches
//! without paying for measurement.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group: a function name, a parameter,
/// or both.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier made of a function name and a parameter, rendered as
    /// `name/parameter`.
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier made of a parameter alone.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times a closure over repeated iterations.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    /// Mean seconds per iteration, filled in by [`Bencher::iter`].
    mean_secs: f64,
    /// Fastest observed iteration, filled in by [`Bencher::iter`].
    min_secs: f64,
    /// Median iteration over the recorded samples, filled in by
    /// [`Bencher::iter`].
    median_secs: f64,
    iterations: u64,
}

/// Per-iteration samples kept for the median; iterations beyond the cap
/// still feed the mean and the min, so a nanosecond-scale routine cannot
/// balloon memory during a long measurement phase.
const MAX_RECORDED_SAMPLES: usize = 65_536;

impl Bencher {
    /// Calls `routine` repeatedly and records its min, median and mean
    /// wall-clock time.
    ///
    /// In `--test` mode the routine runs exactly once and nothing is timed.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.iterations = 1;
            return;
        }
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            black_box(routine());
        }
        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        let mut min = f64::INFINITY;
        let mut samples: Vec<f64> = Vec::new();
        while total < self.measurement_time || iterations < self.sample_size as u64 {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            total += elapsed;
            iterations += 1;
            let secs = elapsed.as_secs_f64();
            min = min.min(secs);
            if samples.len() < MAX_RECORDED_SAMPLES {
                samples.push(secs);
            }
        }
        self.mean_secs = total.as_secs_f64() / iterations as f64;
        self.min_secs = min;
        samples.sort_unstable_by(f64::total_cmp);
        self.median_secs = samples[samples.len() / 2];
        self.iterations = iterations;
    }
}

/// A named collection of related benchmarks sharing the parent configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let full_id = format!("{}/{}", self.name, id);
        if !self.criterion.matches_filter(&full_id) {
            return;
        }
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.criterion.sample_size,
            warm_up_time: self.criterion.warm_up_time,
            measurement_time: self.criterion.measurement_time,
            mean_secs: 0.0,
            min_secs: 0.0,
            median_secs: 0.0,
            iterations: 0,
        };
        if self.criterion.test_mode {
            print!("Testing {full_id} ... ");
            f(&mut bencher);
            println!("ok");
        } else {
            f(&mut bencher);
            println!(
                "{full_id:<50} time: [{:>11} {:>11} {:>11}]   (min/median/mean over {} iterations)",
                format_secs(bencher.min_secs),
                format_secs(bencher.median_secs),
                format_secs(bencher.mean_secs),
                bencher.iterations
            );
        }
    }

    /// Benchmarks `f`, handing it a reference to `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.id, |b| f(b, input));
        self
    }

    /// Benchmarks `f` with no input parameter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, f: F) -> &mut Self {
        self.run(&id.id, f);
        self
    }

    /// Finishes the group. (No summary output in this stub.)
    pub fn finish(self) {}
}

fn format_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// The benchmark harness configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(400),
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the minimum number of measured iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, size: usize) -> Self {
        self.sample_size = size;
        self
    }

    /// Sets the duration of the untimed warm-up phase.
    #[must_use]
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.warm_up_time = duration;
        self
    }

    /// Sets the target duration of the timed phase.
    #[must_use]
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement_time = duration;
        self
    }

    /// Applies the harness command line: `--test` switches to run-once smoke
    /// mode (as under `cargo bench -- --test`), a positional argument filters
    /// benchmarks by substring, and flags criterion would accept are ignored.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" | "--profile-time" | "--save-baseline" | "--baseline"
                | "--measurement-time" | "--warm-up-time" | "--sample-size" => {
                    // Flags with a value we don't use; skip the value if the
                    // form was `--flag value` rather than `--flag=value`.
                    if arg == "--bench" {
                        continue;
                    }
                    let _ = args.next();
                }
                flag if flag.starts_with("--") => {}
                positional => self.filter = Some(positional.to_string()),
            }
        }
        self
    }

    fn matches_filter(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks `f` as a standalone (group-less) benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let name = name.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.run(&name, f);
        self
    }
}

/// Declares a group of benchmark functions, optionally with a shared
/// configuration, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates the `main` function running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_the_routine() {
        let mut b = Bencher {
            test_mode: false,
            sample_size: 3,
            warm_up_time: Duration::ZERO,
            measurement_time: Duration::ZERO,
            mean_secs: 0.0,
            min_secs: 0.0,
            median_secs: 0.0,
            iterations: 0,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert!(b.iterations >= 3);
        assert_eq!(count, b.iterations);
    }

    #[test]
    fn bencher_records_min_median_and_mean() {
        let mut b = Bencher {
            test_mode: false,
            sample_size: 8,
            warm_up_time: Duration::ZERO,
            measurement_time: Duration::ZERO,
            mean_secs: 0.0,
            min_secs: 0.0,
            median_secs: 0.0,
            iterations: 0,
        };
        b.iter(|| std::thread::sleep(Duration::from_micros(50)));
        assert!(b.min_secs > 0.0);
        assert!(b.min_secs <= b.median_secs, "median below the minimum");
        assert!(b.min_secs <= b.mean_secs, "mean below the minimum");
    }

    #[test]
    fn test_mode_runs_exactly_once() {
        let mut b = Bencher {
            test_mode: true,
            sample_size: 10,
            warm_up_time: Duration::from_secs(1),
            measurement_time: Duration::from_secs(1),
            mean_secs: 0.0,
            min_secs: 0.0,
            median_secs: 0.0,
            iterations: 0,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("hopcroft", 64).id, "hopcroft/64");
        assert_eq!(BenchmarkId::from_parameter(128).id, "128");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut ran = 0;
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 1), &41, |b, &x| {
            b.iter(|| x + 1);
            ran += 1;
        });
        group.finish();
        assert_eq!(ran, 1);
    }
}
