//! Offline drop-in subset of the [`rand`](https://docs.rs/rand/0.8) crate.
//!
//! The build environment for this workspace has no network access to a crate
//! registry, so this vendored stub provides exactly the surface the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen_range`, `gen_bool`, and `gen`.
//!
//! The generator is a SplitMix64 — statistically fine for workload generation
//! and benchmarks, deterministic in the seed, but **not** the same stream as
//! the real `rand::rngs::StdRng` (ChaCha12). Anything that hard-codes expected
//! values for a given seed must derive them from this implementation.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types that can be sampled uniformly from a [`Range`] by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Draws a uniform sample in `range` using `rng`'s output stream.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u128;
                range.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = range.end.abs_diff(range.start) as u128;
                let offset = (rng.next_u64() as u128 % span) as $u;
                range.start.wrapping_add(offset as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`'s output stream.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open, must be non-empty).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            true
        } else if p <= 0.0 {
            false
        } else {
            f64::sample(self) < p
        }
    }

    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic pseudo-random generator (SplitMix64 under the hood).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
