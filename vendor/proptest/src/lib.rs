//! Offline drop-in subset of the [`proptest`](https://docs.rs/proptest/1)
//! crate.
//!
//! The build environment for this workspace has no network access to a crate
//! registry, so this vendored stub provides the surface the workspace's
//! property tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_flat_map`,
//!   `prop_recursive`, and `boxed`;
//! * strategies for integer ranges, tuples, [`strategy::Just`],
//!   [`arbitrary::any`], [`collection::vec`], and [`strategy::Union`]
//!   (via [`prop_oneof!`]);
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`], and
//!   [`prop_assert_ne!`] macros with `#![proptest_config(..)]` support.
//!
//! Semantics differ from real proptest in one important way: failing cases
//! are **not shrunk**. A failure panics with the generated inputs (which are
//! deterministic in the test name and case number), so reproduction is still
//! exact.

#![forbid(unsafe_code)]

/// Test-runner configuration and errors.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Subset of proptest's run configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Returns a configuration running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case failed.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given explanation.
        #[must_use]
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic source of randomness handed to [`Strategy::sample`].
    ///
    /// [`Strategy::sample`]: crate::strategy::Strategy::sample
    #[derive(Clone, Debug)]
    pub struct TestRng {
        pub(crate) rng: StdRng,
    }

    impl TestRng {
        /// Creates a generator seeded from `name` (stable across runs).
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name: distinct tests get distinct streams.
            let mut hash = 0xCBF2_9CE4_8422_2325u64;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(hash),
            }
        }
    }
}

/// The [`Strategy`] trait and combinator strategies.
pub mod strategy {
    use std::fmt::Debug;
    use std::ops::Range;
    use std::rc::Rc;

    use rand::{Rng, SampleUniform};

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// simply samples a value from a deterministic RNG.
    pub trait Strategy: Clone {
        /// The type of generated values.
        type Value: Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Returns a strategy producing `f(v)` for generated `v`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            O: Debug,
            F: Fn(Self::Value) -> O + Clone,
        {
            Map { source: self, f }
        }

        /// Returns a strategy sampling from the strategy `f(v)` built from a
        /// generated `v`.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            S: Strategy,
            F: Fn(Self::Value) -> S + Clone,
        {
            FlatMap { source: self, f }
        }

        /// Returns a strategy generating recursive structures, using `self`
        /// for leaves and `recurse` to wrap an inner strategy, nesting at most
        /// `depth` levels.
        ///
        /// `desired_size` and `expected_branch_size` are accepted for API
        /// compatibility but ignored: depth alone bounds the output here.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut current = base.clone();
            for _ in 0..depth {
                let grown = recurse(current.clone()).boxed();
                current = Union::new(vec![base.clone(), grown]).boxed();
            }
            current
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe sampling, used by [`BoxedStrategy`].
    trait SampleObj {
        type Value;
        fn sample_obj(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> SampleObj for S {
        type Value = S::Value;
        fn sample_obj(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V>(Rc<dyn SampleObj<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Debug for BoxedStrategy<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<V: Debug + 'static> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            self.0.sample_obj(rng)
        }
    }

    /// Strategy that always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O + Clone,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2 + Clone,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between several strategies with the same value type.
    ///
    /// Built by the [`prop_oneof!`](crate::prop_oneof) macro.
    #[derive(Debug)]
    pub struct Union<V> {
        variants: Vec<BoxedStrategy<V>>,
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                variants: self.variants.clone(),
            }
        }
    }

    impl<V> Union<V> {
        /// Creates a union over `variants` (must be non-empty).
        #[must_use]
        pub fn new(variants: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
            Union { variants }
        }
    }

    impl<V: Debug + 'static> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let ix = rng.rng.gen_range(0..self.variants.len());
            self.variants[ix].sample(rng)
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: SampleUniform + Debug + 'static,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
}

/// Strategies for standard types, mirroring `proptest::arbitrary`.
pub mod arbitrary {
    use std::fmt::Debug;
    use std::marker::PhantomData;

    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng.gen_bool(0.5)
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<A>(PhantomData<A>);

    impl<A> Clone for Any<A> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<A> Debug for Any<A> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Any")
        }
    }

    impl<A: Arbitrary + Debug> Strategy for Any<A> {
        type Value = A;
        fn sample(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`.
    #[must_use]
    pub fn any<A: Arbitrary + Debug>() -> Any<A> {
        Any(PhantomData)
    }
}

/// Strategies for collections, mirroring `proptest::collection`.
pub mod collection {
    use std::ops::Range;

    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification: either exact or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty vec size range");
            SizeRange {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current case unless `cond` holds.
///
/// Must be used inside a [`proptest!`] body; expands to an early `return` of
/// a [`test_runner::TestCaseError`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Fails the current case unless the two expressions compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`: {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left
            )));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests.
///
/// Supports the subset of proptest syntax used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///
///     #[test]
///     fn my_property(x in 0usize..10, ys in proptest::collection::vec(any::<bool>(), 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    let mut described = ::std::string::String::new();
                    $(
                        let value = $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                        described.push_str(&format!(
                            "\n    {} = {:?}",
                            stringify!($pat),
                            &value
                        ));
                        let $pat = value;
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs:{}",
                            case + 1,
                            config.cases,
                            err,
                            described
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_vecs_sample_in_bounds() {
        let mut rng = TestRng::deterministic("sampling");
        let strat = (1usize..5, 0usize..3).prop_flat_map(|(n, k)| {
            let items = crate::collection::vec(0..n, 1..10);
            (Just(n), Just(k), items)
        });
        for _ in 0..200 {
            let (n, k, items) = strat.sample(&mut rng);
            assert!((1..5).contains(&n));
            assert!(k < 3);
            assert!(!items.is_empty() && items.len() < 10);
            assert!(items.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let mut rng = TestRng::deterministic("union");
        let strat = prop_oneof![Just(0usize), Just(1usize), Just(2usize)];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strat.sample(&mut rng)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(4, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
        });
        let mut rng = TestRng::deterministic("recursive");
        for _ in 0..200 {
            assert!(depth(&strat.sample(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0usize..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(flip, flip);
            prop_assert_ne!(x, x + 1);
        }
    }
}
