//! Offline drop-in subset of the [`proptest`](https://docs.rs/proptest/1)
//! crate.
//!
//! The build environment for this workspace has no network access to a crate
//! registry, so this vendored stub provides the surface the workspace's
//! property tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_flat_map`,
//!   `prop_recursive`, and `boxed`;
//! * strategies for integer ranges, tuples, [`strategy::Just`],
//!   [`arbitrary::any`], [`collection::vec`], and [`strategy::Union`]
//!   (via [`prop_oneof!`]);
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`], and
//!   [`prop_assert_ne!`] macros with `#![proptest_config(..)]` support.
//!
//! Semantics differ from real proptest in scope but not in spirit: failing
//! cases **are shrunk**, by a minimal greedy scheme instead of proptest's
//! value trees.  [`strategy::Strategy::shrink`] proposes smaller candidate
//! values — integer ranges bisect toward their lower bound, vectors try
//! shorter prefixes, element removal and element-wise shrinks, tuples shrink
//! component-wise — and the [`proptest!`] runner greedily re-runs the body
//! on candidates (bounded by a fixed budget) until none fails, then reports
//! the *minimized* inputs alongside the original ones.  Combinators that
//! cannot invert their mapping (`prop_map`, `prop_flat_map`, `prop_oneof!`)
//! propose nothing, so strategies built from them fail with the originally
//! generated inputs, which remain deterministic in the test name and case
//! number — reproduction is still exact.

#![forbid(unsafe_code)]

/// Test-runner configuration and errors.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Subset of proptest's run configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Returns a configuration running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case failed.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given explanation.
        #[must_use]
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic source of randomness handed to [`Strategy::sample`].
    ///
    /// [`Strategy::sample`]: crate::strategy::Strategy::sample
    #[derive(Clone, Debug)]
    pub struct TestRng {
        pub(crate) rng: StdRng,
    }

    impl TestRng {
        /// Creates a generator seeded from `name` (stable across runs).
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name: distinct tests get distinct streams.
            let mut hash = 0xCBF2_9CE4_8422_2325u64;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(hash),
            }
        }
    }
}

/// The [`Strategy`] trait and combinator strategies.
pub mod strategy {
    use std::fmt::Debug;
    use std::ops::Range;
    use std::rc::Rc;

    use rand::{Rng, SampleUniform};

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    ///
    /// Unlike real proptest there is no value tree: a strategy samples a
    /// value from a deterministic RNG and, on failure, proposes smaller
    /// candidates through [`Strategy::shrink`].
    pub trait Strategy: Clone {
        /// The type of generated values.
        type Value: Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Proposes candidate values smaller than `value`, most aggressive
        /// first.  The [`proptest!`](crate::proptest) runner greedily keeps
        /// any candidate that still fails the property and re-shrinks from
        /// there, so a short list converging toward the minimum (e.g.
        /// bisection steps) is enough.  The default proposes nothing —
        /// combinators that cannot invert their mapping keep it.
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        /// Returns a strategy producing `f(v)` for generated `v`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            O: Debug,
            F: Fn(Self::Value) -> O + Clone,
        {
            Map { source: self, f }
        }

        /// Returns a strategy sampling from the strategy `f(v)` built from a
        /// generated `v`.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            S: Strategy,
            F: Fn(Self::Value) -> S + Clone,
        {
            FlatMap { source: self, f }
        }

        /// Returns a strategy generating recursive structures, using `self`
        /// for leaves and `recurse` to wrap an inner strategy, nesting at most
        /// `depth` levels.
        ///
        /// `desired_size` and `expected_branch_size` are accepted for API
        /// compatibility but ignored: depth alone bounds the output here.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut current = base.clone();
            for _ in 0..depth {
                let grown = recurse(current.clone()).boxed();
                current = Union::new(vec![base.clone(), grown]).boxed();
            }
            current
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe sampling and shrinking, used by [`BoxedStrategy`].
    trait SampleObj {
        type Value;
        fn sample_obj(&self, rng: &mut TestRng) -> Self::Value;
        fn shrink_obj(&self, value: &Self::Value) -> Vec<Self::Value>;
    }

    impl<S: Strategy> SampleObj for S {
        type Value = S::Value;
        fn sample_obj(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
        fn shrink_obj(&self, value: &S::Value) -> Vec<S::Value> {
            self.shrink(value)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V>(Rc<dyn SampleObj<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Debug for BoxedStrategy<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<V: Debug + 'static> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            self.0.sample_obj(rng)
        }
        fn shrink(&self, value: &V) -> Vec<V> {
            self.0.shrink_obj(value)
        }
    }

    /// Strategy that always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O + Clone,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2 + Clone,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between several strategies with the same value type.
    ///
    /// Built by the [`prop_oneof!`](crate::prop_oneof) macro.
    #[derive(Debug)]
    pub struct Union<V> {
        variants: Vec<BoxedStrategy<V>>,
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                variants: self.variants.clone(),
            }
        }
    }

    impl<V> Union<V> {
        /// Creates a union over `variants` (must be non-empty).
        #[must_use]
        pub fn new(variants: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
            Union { variants }
        }
    }

    impl<V: Debug + 'static> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let ix = rng.rng.gen_range(0..self.variants.len());
            self.variants[ix].sample(rng)
        }
    }

    /// Integer bisection toward a range's lower bound — the shrink scheme
    /// of [`Strategy::shrink`] for range strategies.
    pub trait Bisect: Sized {
        /// Candidates strictly smaller than `value` (and at least `low`),
        /// most aggressive first: the lower bound itself, the midpoint, and
        /// the predecessor.  Returns nothing when `value <= low`.
        fn bisect(low: &Self, value: &Self) -> Vec<Self>;
    }

    macro_rules! impl_bisect_int {
        ($($t:ty),+) => {$(
            impl Bisect for $t {
                fn bisect(low: &Self, value: &Self) -> Vec<Self> {
                    let (low, value) = (*low, *value);
                    if value <= low {
                        return Vec::new();
                    }
                    // `checked_sub` guards the signed extremes (the greedy
                    // runner only needs *some* progress, so falling back to
                    // the lower bound alone is fine).
                    let Some(span) = value.checked_sub(low) else {
                        return vec![low];
                    };
                    let mut out = vec![low];
                    let mid = low + span / 2;
                    if mid != low {
                        out.push(mid);
                    }
                    if value - 1 != low && value - 1 != mid {
                        out.push(value - 1);
                    }
                    out
                }
            }
        )+};
    }

    impl_bisect_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

    impl<T> Strategy for Range<T>
    where
        T: SampleUniform + Bisect + Debug + 'static,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.rng.gen_range(self.clone())
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            T::bisect(&self.start, value)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($name:ident, $idx:tt)),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+)
            where
                $($name::Value: Clone),+
            {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&value.$idx) {
                            let mut candidate = value.clone();
                            candidate.$idx = cand;
                            out.push(candidate);
                        }
                    )+
                    out
                }
            }
        };
    }

    impl_tuple_strategy!((A, 0));
    impl_tuple_strategy!((A, 0), (B, 1));
    impl_tuple_strategy!((A, 0), (B, 1), (C, 2));
    impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
    impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
    impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (G, 5));

    /// Upper bound on property re-runs spent minimizing one failure.
    const SHRINK_BUDGET: usize = 512;

    /// Runs one generated case and, on failure, greedily minimizes it with
    /// [`Strategy::shrink`]: any candidate that still fails becomes the new
    /// best and is re-shrunk, until no candidate fails or the budget runs
    /// out.
    ///
    /// Returns `Ok(())` when the case passes; otherwise the minimized
    /// inputs, the `Debug` rendering of the *originally generated* inputs
    /// (for exact reproduction), and the error the minimized inputs
    /// produce.  Used by the [`proptest!`](crate::proptest) runner — the
    /// generic signature is what ties the test body closure's input type to
    /// the combined strategy's value type.
    ///
    /// # Errors
    ///
    /// The failing-case triple described above.
    pub fn run_shrink_case<S>(
        strategy: &S,
        sampled: S::Value,
        run: impl Fn(&S::Value) -> Result<(), crate::test_runner::TestCaseError>,
    ) -> Result<(), (S::Value, String, crate::test_runner::TestCaseError)>
    where
        S: Strategy,
        S::Value: Clone,
    {
        let first_err = match run(&sampled) {
            Ok(()) => return Ok(()),
            Err(e) => e,
        };
        let described = format!("{:?}", &sampled);
        let mut best = sampled;
        let mut best_err = first_err;
        let mut budget = SHRINK_BUDGET;
        'minimize: loop {
            let mut improved = false;
            for cand in strategy.shrink(&best) {
                if budget == 0 {
                    break 'minimize;
                }
                budget -= 1;
                if let Err(e) = run(&cand) {
                    best = cand;
                    best_err = e;
                    improved = true;
                    break;
                }
            }
            if !improved {
                break;
            }
        }
        Err((best, described, best_err))
    }
}

/// Strategies for standard types, mirroring `proptest::arbitrary`.
pub mod arbitrary {
    use std::fmt::Debug;
    use std::marker::PhantomData;

    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng.gen_bool(0.5)
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<A>(PhantomData<A>);

    impl<A> Clone for Any<A> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<A> Debug for Any<A> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Any")
        }
    }

    impl<A: Arbitrary + Debug> Strategy for Any<A> {
        type Value = A;
        fn sample(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`.
    #[must_use]
    pub fn any<A: Arbitrary + Debug>() -> Any<A> {
        Any(PhantomData)
    }
}

/// Strategies for collections, mirroring `proptest::collection`.
pub mod collection {
    use std::ops::Range;

    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification: either exact or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty vec size range");
            SizeRange {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let len = value.len();
            // Structural shrinks first (never below the minimum size):
            // shortest allowed prefix, half-length prefix, drop one element.
            if len > self.size.min {
                out.push(value[..self.size.min].to_vec());
                let half = len / 2;
                if half > self.size.min {
                    out.push(value[..half].to_vec());
                }
                if len - 1 > self.size.min {
                    out.push(value[..len - 1].to_vec());
                }
                for i in 0..len.saturating_sub(1) {
                    let mut dropped = value.clone();
                    dropped.remove(i);
                    out.push(dropped);
                }
            }
            // Then element-wise shrinks at unchanged length.
            for (i, elem) in value.iter().enumerate() {
                for cand in self.element.shrink(elem) {
                    let mut candidate = value.clone();
                    candidate[i] = cand;
                    out.push(candidate);
                }
            }
            out
        }
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current case unless `cond` holds.
///
/// Must be used inside a [`proptest!`] body; expands to an early `return` of
/// a [`test_runner::TestCaseError`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Fails the current case unless the two expressions compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`: {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left
            )));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests.
///
/// Supports the subset of proptest syntax used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///
///     #[test]
///     fn my_property(x in 0usize..10, ys in proptest::collection::vec(any::<bool>(), 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                // All inputs are drawn through one combined tuple strategy so
                // a failing case can be re-run on shrunk candidates (at most
                // 6 inputs per property, the tuple-strategy arity cap).
                let strategy = ($( $strategy, )+);
                for case in 0..config.cases {
                    let sampled = $crate::strategy::Strategy::sample(&strategy, &mut rng);
                    let outcome = $crate::strategy::run_shrink_case(
                        &strategy,
                        sampled,
                        |case_inputs| {
                            #[allow(unused_parens)]
                            let ($($pat,)+) = ::std::clone::Clone::clone(case_inputs);
                            $body
                            ::std::result::Result::Ok(())
                        },
                    );
                    if let ::std::result::Result::Err((best, described, best_err)) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs ({}):\n    as generated: {}\n    minimized:    {:?}",
                            case + 1,
                            config.cases,
                            best_err,
                            stringify!($($pat),+),
                            described,
                            &best,
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_vecs_sample_in_bounds() {
        let mut rng = TestRng::deterministic("sampling");
        let strat = (1usize..5, 0usize..3).prop_flat_map(|(n, k)| {
            let items = crate::collection::vec(0..n, 1..10);
            (Just(n), Just(k), items)
        });
        for _ in 0..200 {
            let (n, k, items) = strat.sample(&mut rng);
            assert!((1..5).contains(&n));
            assert!(k < 3);
            assert!(!items.is_empty() && items.len() < 10);
            assert!(items.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let mut rng = TestRng::deterministic("union");
        let strat = prop_oneof![Just(0usize), Just(1usize), Just(2usize)];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strat.sample(&mut rng)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(4, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
        });
        let mut rng = TestRng::deterministic("recursive");
        for _ in 0..200 {
            assert!(depth(&strat.sample(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0usize..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(flip, flip);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    fn integer_ranges_bisect_toward_the_lower_bound() {
        let range = 3usize..100;
        let candidates = range.shrink(&50);
        assert_eq!(candidates, vec![3, 26, 49]);
        assert!(range.shrink(&3).is_empty());
        assert_eq!(range.shrink(&4), vec![3]);
        // Repeated greedy shrinking converges to the lower bound.
        let mut v = 99usize;
        while let Some(&next) = range.shrink(&v).first() {
            assert!(next < v);
            v = next;
        }
        assert_eq!(v, 3);
    }

    #[test]
    fn vec_shrinks_respect_the_minimum_size() {
        let strat = crate::collection::vec(0usize..10, 2..6);
        let candidates = strat.shrink(&vec![7, 8, 9, 1]);
        assert!(!candidates.is_empty());
        for cand in &candidates {
            assert!(cand.len() >= 2, "{cand:?} shrank below the minimum");
        }
        // Structural candidates come first: the shortest allowed prefix.
        assert_eq!(candidates[0], vec![7, 8]);
        // Element-wise candidates keep the length.
        assert!(candidates.iter().any(|c| c.len() == 4 && c[0] == 0));
    }

    #[test]
    fn tuples_shrink_component_wise() {
        let strat = (5usize..50, 1usize..9);
        let candidates = strat.shrink(&(40, 8));
        assert!(candidates.contains(&(5, 8)));
        assert!(candidates.contains(&(40, 1)));
        // Never both components at once (the runner iterates instead).
        assert!(!candidates.contains(&(5, 1)));
    }

    #[test]
    fn map_and_oneof_propose_nothing() {
        let mapped = (0usize..10).prop_map(|x| x * 2);
        assert!(mapped.shrink(&6).is_empty());
        let union = prop_oneof![Just(1usize), Just(2usize)];
        assert!(union.shrink(&2).is_empty());
    }

    // A deliberately failing property (no #[test] attribute — invoked via
    // catch_unwind below): fails for every x ≥ 10, so greedy bisection must
    // minimize the reported counterexample to exactly 10.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        fn fails_at_ten_or_more(x in 0usize..1000, pad in crate::collection::vec(0usize..5, 0..4)) {
            let _ = &pad;
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn failing_cases_are_minimized() {
        let panic = std::panic::catch_unwind(fails_at_ten_or_more).expect_err("property must fail");
        let message = panic
            .downcast_ref::<String>()
            .expect("panic carries a formatted message");
        assert!(
            message.contains("minimized:    (10, [])"),
            "expected the minimal counterexample in: {message}"
        );
        assert!(message.contains("as generated:"), "{message}");
    }
}
