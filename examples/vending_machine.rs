//! The vending-machine example: why observational equivalence (and failure
//! equivalence) distinguish internal from external choice even though the
//! trace sets coincide.
//!
//! Run with `cargo run --example vending_machine`.

use ccs_equiv::{limited, strong, Equivalence, Query};
use ccs_fsp::{dot, ops};
use ccs_workloads::families;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Machine A lets the customer choose tea or coffee after paying.
    // Machine B decides internally (τ) which single drink it will serve.
    let external = families::vending_machine(false);
    let internal = families::vending_machine(true);

    println!("external choice machine: {} states", external.num_states());
    println!(
        "internal choice machine: {} states\n",
        internal.num_states()
    );

    for notion in [
        Equivalence::Trace,
        Equivalence::Language,
        Equivalence::Failure,
        Equivalence::Observational,
        Equivalence::Strong,
    ] {
        let verdict = Query::new(notion).between(&external, &internal)?;
        println!(
            "{notion:<16} {}",
            if verdict {
                "cannot tell them apart"
            } else {
                "tells them apart"
            }
        );
    }

    // Where in the ≃k hierarchy does the difference appear?
    let union = ops::disjoint_union(&external, &internal);
    let (p, q) = ops::union_starts(&union, &external, &internal);
    let hierarchy = limited::limited_hierarchy(&union.fsp);
    let first_difference =
        (0..=hierarchy.convergence_round()).find(|&k| !hierarchy.equivalent_at(k, p, q));
    match first_difference {
        Some(k) => println!("\nthe machines are separated at refinement level {k}"),
        None => println!("\nthe machines are never separated"),
    }

    // Minimise the internal-choice machine and show its quotient.
    let quotient = strong::quotient(&internal);
    println!(
        "internal machine quotient: {} states (from {})",
        quotient.num_states(),
        internal.num_states()
    );
    println!(
        "\nGraphviz of the internal-choice machine:\n{}",
        dot::to_dot(&internal)
    );
    Ok(())
}
