//! Equivalence-as-a-service: spin up an in-process `ccs-server`, connect a
//! client over real TCP, and answer equivalence queries over the wire.
//!
//! Run with `cargo run --example equiv_service`.
//!
//! The same protocol serves out-of-process use: start `cargo run --bin
//! ccs-server` in one terminal and drive it with `cargo run --bin
//! ccs-client -- 127.0.0.1:7878 demo` (or any line-oriented JSON client —
//! the README documents the wire shapes).

use ccs_server::{Client, Server, Service};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Bind an ephemeral port and move the accept loop to a background
    // thread; the handle tells us where it landed.
    let handle = Server::bind("127.0.0.1:0", Service::default())?.spawn()?;
    println!("server listening on {}", handle.addr());

    let mut client = Client::connect(handle.addr())?;

    // Open the vending machine pair: commit internally (τ) after the coin,
    // or offer the choice externally.
    let opened = client.open_fsp(
        "trans m0 coin m1\n\
         trans m1 tau m2\n\
         trans m1 tau m3\n\
         trans m2 tea m4\n\
         trans m3 coffee m5\n\
         trans e0 coin e1\n\
         trans e1 tea e2\n\
         trans e1 coffee e3",
    )?;
    println!(
        "opened session {} ({} states, {} transitions)",
        opened.session, opened.states, opened.transitions
    );

    // The classic verdicts, over the wire: same traces, different behaviour.
    for notion in ["trace", "observational", "failure"] {
        let verdict = client.pair(&opened.session, notion, "m0", "e0")?;
        println!(
            "  {notion:<14} internal ~ external  ->  {}",
            if verdict { "equivalent" } else { "DIFFERENT" }
        );
    }

    // Whole-space classification of the same session (served from the warm
    // caches the pair queries left behind).
    let classes = client.classify(&opened.session, "observational")?;
    println!("  observational classes: {}", classes.len());
    for block in &classes {
        println!("    {}", block.join(" "));
    }

    // A second, independent session from a CCS star expression.
    let expr = client.open_ccs("(a+b).c")?;
    println!(
        "CCS representative of (a+b).c: session {} with {} states",
        expr.session, expr.states
    );

    // The server keeps honest books: every refinement that ran, every pair
    // query served, and how they coalesced.
    let stats = client.stats()?;
    println!(
        "server stats: sessions={} resident_bytes={} refinements={} \
         pair_queries={} batches={}",
        stats.sessions, stats.resident_bytes, stats.refinements, stats.pair_queries, stats.batches
    );

    client.close_session(&opened.session)?;
    client.close_session(&expr.session)?;
    Ok(())
}
