//! A small protocol-verification scenario: check that a sender/receiver
//! implementation over a lossy-free channel is observationally equivalent to
//! its one-state service specification, then break the implementation and
//! watch the checkers disagree.
//!
//! Run with `cargo run --example protocol_verification`.

use ccs_equiv::{strong, weak, Equivalence, Query};
use ccs_fsp::{format, Fsp};

/// The specification: the service alternates `send` and `deliver` forever.
fn specification() -> Fsp {
    format::parse(
        "process spec
         trans idle send full
         trans full deliver idle
         accept idle full",
    )
    .expect("spec is well-formed")
}

/// The implementation: the message is accepted, handed over an internal
/// channel (τ), acknowledged internally (τ), then delivered.
fn implementation(drops_ack: bool) -> Fsp {
    let mut text = String::from(
        "process impl
         trans s0 send s1
         trans s1 tau s2
         trans s2 deliver s3
         trans s3 tau s0
         accept s0 s1 s2 s3",
    );
    if drops_ack {
        // A bug: the internal hand-over may silently drop the message and
        // return to the idle state without delivering.
        text.push_str("\ntrans s1 tau s0");
    }
    format::parse(&text).expect("implementation is well-formed")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = specification();
    let good = implementation(false);
    let buggy = implementation(true);

    println!(
        "specification: {} states / implementation: {} states\n",
        spec.num_states(),
        good.num_states()
    );

    println!("-- correct implementation --");
    for notion in [
        Equivalence::Trace,
        Equivalence::Observational,
        Equivalence::Strong,
    ] {
        println!(
            "  {notion:<16} {}",
            if Query::new(notion).between(&spec, &good)? {
                "matches spec"
            } else {
                "VIOLATES spec"
            }
        );
    }
    let wp = weak::weak_partition(&good);
    println!("  weak classes of the implementation: {}", wp.num_classes());
    println!(
        "  minimized implementation has {} states",
        strong::quotient(&good).num_states()
    );

    println!("\n-- buggy implementation (may drop the message) --");
    for notion in [
        Equivalence::Trace,
        Equivalence::Failure,
        Equivalence::Observational,
    ] {
        println!(
            "  {notion:<16} {}",
            if Query::new(notion).between(&spec, &buggy)? {
                "matches spec"
            } else {
                "VIOLATES spec"
            }
        );
    }
    let report = ccs_equiv::failures::failure_equivalent(&spec, &buggy);
    if let Some(pair) = report.witness {
        println!(
            "  bug explanation: after {:?} the buggy system may refuse {:?}",
            pair.trace, pair.refusal
        );
    }
    Ok(())
}
