//! Star expressions: parse CCS star expressions, build their representative
//! processes (Definition 2.3.1), decide the CCS equivalence problem, and
//! check which regular-expression laws survive the CCS semantics.
//!
//! Run with `cargo run --example expression_equivalence`.

use ccs_expr::{ccs_equivalent, construct, language_equivalent, laws, parse};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pairs = [
        ("a.b + c", "c + a.b"),
        ("a.(b + c)", "a.b + a.c"),
        ("(a.b)*", "(a.b)*.(a.b)*"),
        ("a.0", "0"),
        ("a + a", "a"),
    ];

    println!(
        "{:<16} {:<16} {:>10} {:>10}",
        "left", "right", "language", "ccs"
    );
    for (l, r) in pairs {
        let left = parse(l)?;
        let right = parse(r)?;
        println!(
            "{:<16} {:<16} {:>10} {:>10}",
            l,
            r,
            if language_equivalent(&left, &right) {
                "equal"
            } else {
                "differ"
            },
            if ccs_equivalent(&left, &right) {
                "equal"
            } else {
                "differ"
            },
        );
    }

    // Show the representative FSP of one expression.
    let expr = parse("a.(b + c)*")?;
    let fsp = construct::representative(&expr);
    println!(
        "\nrepresentative FSP of {expr}: {} states, {} transitions (length {})",
        fsp.num_states(),
        fsp.num_transitions(),
        expr.len()
    );
    println!("{fsp}");

    // Which regular-expression identities survive the CCS semantics?
    let r = parse("a")?;
    let s = parse("b.c")?;
    let t = parse("d*")?;
    println!("{:<28} {:>10} {:>10}", "law", "language", "ccs");
    for law in laws::Law::ALL {
        let verdict = laws::check(law, &r, &s, &t);
        println!(
            "{:<28} {:>10} {:>10}",
            law.to_string(),
            if verdict.language { "holds" } else { "fails" },
            if verdict.ccs { "holds" } else { "fails" },
        );
    }
    Ok(())
}
