//! Quickstart: build two small processes, compare them under every
//! equivalence notion of the paper, and print a distinguishing witness where
//! one exists.
//!
//! Run with `cargo run --example quickstart`.

use ccs_equiv::{failures, witness, Equivalence, Query};
use ccs_fsp::{format, ops};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The canonical example from the paper's introduction to CCS semantics:
    // a.(b + c) — choose after the `a` — versus a.b + a.c — commit before it.
    let merged = format::parse(
        "process merged
         trans p a q
         trans q b r
         trans q c s
         accept p q r s",
    )?;
    let split = format::parse(
        "process split
         trans u a v1
         trans u a v2
         trans v1 b w1
         trans v2 c w2
         accept u v1 v2 w1 w2",
    )?;

    println!("left  = a.(b + c)   ({} states)", merged.num_states());
    println!("right = a.b + a.c   ({} states)\n", split.num_states());

    for notion in [
        Equivalence::Language,
        Equivalence::Trace,
        Equivalence::KObservational(1),
        Equivalence::KObservational(2),
        Equivalence::Failure,
        Equivalence::Observational,
        Equivalence::Strong,
    ] {
        let verdict = Query::new(notion).between(&merged, &split)?;
        println!(
            "{notion:<22} {}",
            if verdict { "equivalent" } else { "DIFFERENT" }
        );
    }

    // Explain the failure-equivalence difference with a concrete failure pair.
    let report = failures::failure_equivalent(&merged, &split);
    if let Some(pair) = report.witness {
        println!(
            "\nfailure witness: after trace {:?} one side can refuse {:?} and the other cannot",
            pair.trace, pair.refusal
        );
    }

    // And the strong-equivalence difference with a Hennessy–Milner formula.
    let union = ops::disjoint_union(&merged, &split);
    let (p, q) = ops::union_starts(&union, &merged, &split);
    if let Some(formula) = witness::distinguishing_formula(&union.fsp, p, q) {
        println!("distinguishing HML formula: {formula}");
    }
    Ok(())
}
