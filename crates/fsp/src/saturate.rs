//! The weak (double-arrow) transition relation `⇒` and τ-saturation.
//!
//! Observational equivalence is reduced to strong equivalence by *saturating*
//! a process (Theorem 4.1(a)): for a general FSP `P` one computes the
//! observable FSP `P̂` over the alphabet `Σ ∪ {ε}` whose transitions are the
//! weak transitions of `P`:
//!
//! * `p ⇒ε q` iff `q` is reachable from `p` by zero or more τ-moves,
//! * `p ⇒a q` (for `a ∈ Σ`) iff there exist `p′, p″` with
//!   `p ⇒ε p′ →a p″ ⇒ε q`.
//!
//! Then `p ≈ q` in `P` iff `p ~ q` in `P̂` (Proposition 2.2.1(c) plus
//! Lemma 3.1).
//!
//! The closure here is computed by a breadth-first search from every state
//! (`O(n·(n + m))`), which matches the paper's polynomial bound with better
//! constants on sparse graphs than the adjacency-matrix formulation; the
//! matrix variant is provided as [`tau_closure_matrix`] for cross-checking.

use std::collections::VecDeque;

use crate::label::{ActionId, Label};
use crate::process::{Fsp, StateData, Transition};
use crate::state::StateId;
use crate::EPSILON_ACTION;

/// The reflexive–transitive closure of the τ-transition relation.
///
/// `closure.successors(p)` is the sorted set `{q | p ⇒ε q}`; it always
/// contains `p` itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TauClosure {
    succ: Vec<Vec<StateId>>,
}

impl TauClosure {
    /// The sorted ε-successor set of `state` (always contains `state`).
    ///
    /// # Panics
    ///
    /// Panics if `state` does not belong to the process the closure was
    /// computed from.
    #[must_use]
    pub fn successors(&self, state: StateId) -> &[StateId] {
        &self.succ[state.index()]
    }

    /// Returns `true` iff `to` is reachable from `from` via τ-moves only.
    #[must_use]
    pub fn reaches(&self, from: StateId, to: StateId) -> bool {
        self.succ[from.index()].binary_search(&to).is_ok()
    }

    /// Number of states the closure was computed over.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.succ.len()
    }

    /// Total number of `(p, q)` pairs with `p ⇒ε q` (including reflexive
    /// pairs).
    #[must_use]
    pub fn num_pairs(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }
}

/// Computes the reflexive–transitive τ-closure by one BFS per state.
#[must_use]
pub fn tau_closure(fsp: &Fsp) -> TauClosure {
    let n = fsp.num_states();
    let mut succ = Vec::with_capacity(n);
    let mut seen = vec![usize::MAX; n];
    for s in 0..n {
        let mut out = Vec::new();
        let mut queue = VecDeque::new();
        seen[s] = s;
        queue.push_back(StateId::from_index(s));
        while let Some(p) = queue.pop_front() {
            out.push(p);
            for t in fsp.transitions(p) {
                if t.label.is_tau() && seen[t.target.index()] != s {
                    seen[t.target.index()] = s;
                    queue.push_back(t.target);
                }
            }
        }
        out.sort_unstable();
        succ.push(out);
    }
    TauClosure { succ }
}

/// Computes the reflexive–transitive τ-closure as a boolean reachability
/// matrix using the Floyd–Warshall scheme, mirroring the paper's
/// matrix-product formulation.  Intended for cross-checking [`tau_closure`];
/// costs `O(n³)` time and `O(n²)` space.
#[must_use]
pub fn tau_closure_matrix(fsp: &Fsp) -> Vec<Vec<bool>> {
    let n = fsp.num_states();
    let mut reach = vec![vec![false; n]; n];
    for (i, row) in reach.iter_mut().enumerate() {
        row[i] = true;
    }
    for (from, label, to) in fsp.all_transitions() {
        if label.is_tau() {
            reach[from.index()][to.index()] = true;
        }
    }
    for k in 0..n {
        let via_k = reach[k].clone();
        for row in &mut reach {
            if row[k] {
                row.iter_mut().zip(&via_k).for_each(|(r, &v)| *r |= v);
            }
        }
    }
    reach
}

/// The weak `a`-successor set `{q | p ⇒a q}` for an observable action `a`.
///
/// Returned sorted and duplicate-free.
#[must_use]
pub fn weak_action_successors(
    fsp: &Fsp,
    closure: &TauClosure,
    p: StateId,
    action: ActionId,
) -> Vec<StateId> {
    let mut out = Vec::new();
    for &p1 in closure.successors(p) {
        for p2 in fsp.successors(p1, Label::Act(action)) {
            out.extend_from_slice(closure.successors(p2));
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// The set of observable actions weakly enabled at `p`: actions `a` such that
/// `p ⇒a q` for some `q`.  Used by the failures semantics (Section 5), where
/// `¬(p ⇒a)` contributes `a` to a refusal set.
#[must_use]
pub fn weakly_enabled_actions(fsp: &Fsp, closure: &TauClosure, p: StateId) -> Vec<ActionId> {
    let mut out = Vec::new();
    for a in fsp.action_ids() {
        let enabled = closure
            .successors(p)
            .iter()
            .any(|&p1| fsp.successors(p1, Label::Act(a)).next().is_some());
        if enabled {
            out.push(a);
        }
    }
    out
}

/// A τ-saturated process: the observable FSP `P̂` over `Σ ∪ {ε}` of
/// Theorem 4.1(a), plus bookkeeping to identify the ε column.
#[derive(Clone, Debug)]
pub struct Saturated {
    /// The saturated process (observable; one extra action named
    /// [`EPSILON_ACTION`](crate::EPSILON_ACTION)).
    pub fsp: Fsp,
    /// The action identifier of `ε` inside [`Saturated::fsp`].
    pub epsilon: ActionId,
}

/// Saturates a process: computes `P̂` with transitions `p ⇒σ q` for
/// `σ ∈ Σ ∪ {ε}`.
///
/// State identifiers, names and extension sets are preserved, so a state of
/// the original process denotes the same state in the saturated one.
///
/// The size of the saturated transition relation is `O(n²·|Σ|)` in the worst
/// case (the paper bounds it by `O(n²·m)` using per-symbol matrices).
#[must_use]
pub fn saturate(fsp: &Fsp) -> Saturated {
    let closure = tau_closure(fsp);
    saturate_with_closure(fsp, &closure)
}

/// Like [`saturate`], reusing an already-computed τ-closure.
#[must_use]
pub fn saturate_with_closure(fsp: &Fsp, closure: &TauClosure) -> Saturated {
    let mut actions = fsp_actions_clone(fsp);
    let eps_raw = actions.intern(EPSILON_ACTION);
    let epsilon = ActionId::from_index(eps_raw as usize);
    let n = fsp.num_states();
    let mut states: Vec<StateData> = Vec::with_capacity(n);
    for p in fsp.state_ids() {
        let mut transitions = Vec::new();
        for &q in closure.successors(p) {
            transitions.push(Transition {
                label: Label::Act(epsilon),
                target: q,
            });
        }
        for a in fsp.action_ids() {
            for q in weak_action_successors(fsp, closure, p, a) {
                transitions.push(Transition {
                    label: Label::Act(a),
                    target: q,
                });
            }
        }
        states.push(StateData {
            name: fsp.state_name(p).map(str::to_owned),
            extensions: fsp.extensions(p).clone(),
            transitions,
        });
    }
    let sat = Fsp::from_parts(
        format!("{}^sat", fsp.name()),
        fsp.start(),
        states,
        actions,
        fsp_vars_clone(fsp),
    );
    Saturated { fsp: sat, epsilon }
}

fn fsp_actions_clone(fsp: &Fsp) -> crate::interner::Interner {
    fsp.actions.clone()
}

fn fsp_vars_clone(fsp: &Fsp) -> crate::interner::Interner {
    fsp.vars.clone()
}

/// Computes, for every state, its weak `s`-derivative set for a string `s`
/// of observable actions: `{q | p ⇒s q}` (Definition in Section 2.1).
///
/// The empty string yields the ε-closure of `p`.
#[must_use]
pub fn weak_string_derivatives(
    fsp: &Fsp,
    closure: &TauClosure,
    p: StateId,
    s: &[ActionId],
) -> Vec<StateId> {
    let mut current: Vec<StateId> = closure.successors(p).to_vec();
    for &a in s {
        let mut next = Vec::new();
        for &q in &current {
            // q ⇒ε is already folded into `current`; we need q →a r ⇒ε.
            for r in fsp.successors(q, Label::Act(a)) {
                next.extend_from_slice(closure.successors(r));
            }
        }
        next.sort_unstable();
        next.dedup();
        current = next;
        if current.is_empty() {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fsp;

    /// p --tau--> q --a--> r --tau--> s,  p --b--> t
    fn sample() -> Fsp {
        let mut b = Fsp::builder("sat-sample");
        b.transition("p", "tau", "q");
        b.transition("q", "a", "r");
        b.transition("r", "tau", "s");
        b.transition("p", "b", "t");
        b.build().unwrap()
    }

    #[test]
    fn closure_contains_reflexive_pairs() {
        let f = sample();
        let cl = tau_closure(&f);
        for s in f.state_ids() {
            assert!(cl.reaches(s, s));
        }
        assert_eq!(cl.num_states(), f.num_states());
    }

    #[test]
    fn closure_follows_tau_chains() {
        let f = sample();
        let cl = tau_closure(&f);
        let p = f.state_by_name("p").unwrap();
        let q = f.state_by_name("q").unwrap();
        let r = f.state_by_name("r").unwrap();
        assert!(cl.reaches(p, q));
        assert!(!cl.reaches(p, r)); // the a-step is not a τ-step
        assert!(!cl.reaches(q, p)); // τ is not symmetric
        assert_eq!(cl.successors(p).len(), 2);
    }

    #[test]
    fn closure_matches_matrix_formulation() {
        let f = sample();
        let cl = tau_closure(&f);
        let m = tau_closure_matrix(&f);
        for i in f.state_ids() {
            for j in f.state_ids() {
                assert_eq!(cl.reaches(i, j), m[i.index()][j.index()]);
            }
        }
    }

    #[test]
    fn transitive_tau_chain_is_closed() {
        let mut b = Fsp::builder("chain");
        b.transition("a0", "tau", "a1");
        b.transition("a1", "tau", "a2");
        b.transition("a2", "tau", "a3");
        let f = b.build().unwrap();
        let cl = tau_closure(&f);
        let a0 = f.state_by_name("a0").unwrap();
        assert_eq!(cl.successors(a0).len(), 4);
        assert_eq!(cl.num_pairs(), 4 + 3 + 2 + 1);
    }

    #[test]
    fn weak_action_successors_skip_over_tau() {
        let f = sample();
        let cl = tau_closure(&f);
        let p = f.state_by_name("p").unwrap();
        let r = f.state_by_name("r").unwrap();
        let s = f.state_by_name("s").unwrap();
        let a = f.action_id("a").unwrap();
        let succs = weak_action_successors(&f, &cl, p, a);
        assert_eq!(succs, vec![r, s]);
    }

    #[test]
    fn weakly_enabled_sees_through_tau() {
        let f = sample();
        let cl = tau_closure(&f);
        let p = f.state_by_name("p").unwrap();
        let enabled = weakly_enabled_actions(&f, &cl, p);
        let names: Vec<&str> = enabled.iter().map(|&a| f.action_name(a)).collect();
        assert_eq!(names, vec!["a", "b"]);
        let s = f.state_by_name("s").unwrap();
        assert!(weakly_enabled_actions(&f, &cl, s).is_empty());
    }

    #[test]
    fn saturation_produces_observable_process() {
        let f = sample();
        let sat = saturate(&f);
        assert!(!sat.fsp.has_tau_transitions());
        assert_eq!(sat.fsp.num_states(), f.num_states());
        assert_eq!(sat.fsp.action_name(sat.epsilon), crate::EPSILON_ACTION);
        // p ⇒a {r, s}; p ⇒ε {p, q}; p ⇒b {t}.
        let p = f.state_by_name("p").unwrap();
        let a = sat.fsp.action_id("a").unwrap();
        let succs: Vec<_> = sat.fsp.successors(p, Label::Act(a)).collect();
        assert_eq!(succs.len(), 2);
        let eps: Vec<_> = sat.fsp.successors(p, Label::Act(sat.epsilon)).collect();
        assert_eq!(eps.len(), 2);
    }

    #[test]
    fn string_derivatives() {
        let f = sample();
        let cl = tau_closure(&f);
        let p = f.state_by_name("p").unwrap();
        let a = f.action_id("a").unwrap();
        let b = f.action_id("b").unwrap();
        assert_eq!(weak_string_derivatives(&f, &cl, p, &[]).len(), 2);
        assert_eq!(weak_string_derivatives(&f, &cl, p, &[a]).len(), 2);
        assert_eq!(weak_string_derivatives(&f, &cl, p, &[b]).len(), 1);
        assert!(weak_string_derivatives(&f, &cl, p, &[a, a]).is_empty());
        assert!(weak_string_derivatives(&f, &cl, p, &[b, a]).is_empty());
    }

    #[test]
    fn saturation_preserves_extensions_and_names() {
        let mut b = Fsp::builder("ext");
        b.transition("p", "tau", "q");
        let q = b.state("q");
        b.mark_accepting(q);
        let f = b.build().unwrap();
        let sat = saturate(&f);
        assert!(sat.fsp.is_accepting(q));
        assert_eq!(sat.fsp.state_name(q), Some("q"));
        assert!(!sat.fsp.is_accepting(f.state_by_name("p").unwrap()));
    }
}
