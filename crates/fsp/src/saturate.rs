//! The weak (double-arrow) transition relation `⇒` and τ-saturation.
//!
//! Observational equivalence is reduced to strong equivalence by *saturating*
//! a process (Theorem 4.1(a)): for a general FSP `P` one computes the
//! observable FSP `P̂` over the alphabet `Σ ∪ {ε}` whose transitions are the
//! weak transitions of `P`:
//!
//! * `p ⇒ε q` iff `q` is reachable from `p` by zero or more τ-moves,
//! * `p ⇒a q` (for `a ∈ Σ`) iff there exist `p′, p″` with
//!   `p ⇒ε p′ →a p″ ⇒ε q`.
//!
//! Then `p ≈ q` in `P` iff `p ~ q` in `P̂` (Proposition 2.2.1(c) plus
//! Lemma 3.1).
//!
//! The closure here is computed by a breadth-first search from every state
//! (`O(n·(n + m))`), which matches the paper's polynomial bound with better
//! constants on sparse graphs than the adjacency-matrix formulation; the
//! matrix variant is provided as [`tau_closure_matrix`] for cross-checking.
//!
//! The weak relation itself is exposed three ways, from cheapest to most
//! convenient: [`weak_edges`] streams it edge by edge (for consumers that
//! lay it out themselves, e.g. a partition-refinement graph builder),
//! [`SaturatedView`] lays it out once as a flat CSR with slice access per
//! `(state, action)` column, and [`saturate`] materializes the classical
//! saturated process `P̂` as a second [`Fsp`] (the compatibility path).

use std::collections::VecDeque;

use crate::label::{ActionId, Label};
use crate::process::{Fsp, StateData, Transition};
use crate::state::StateId;
use crate::EPSILON_ACTION;

/// The reflexive–transitive closure of the τ-transition relation.
///
/// `closure.successors(p)` is the sorted set `{q | p ⇒ε q}`; it always
/// contains `p` itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TauClosure {
    succ: Vec<Vec<StateId>>,
}

impl TauClosure {
    /// The sorted ε-successor set of `state` (always contains `state`).
    ///
    /// # Panics
    ///
    /// Panics if `state` does not belong to the process the closure was
    /// computed from.
    #[must_use]
    pub fn successors(&self, state: StateId) -> &[StateId] {
        &self.succ[state.index()]
    }

    /// Returns `true` iff `to` is reachable from `from` via τ-moves only.
    #[must_use]
    pub fn reaches(&self, from: StateId, to: StateId) -> bool {
        self.succ[from.index()].binary_search(&to).is_ok()
    }

    /// Number of states the closure was computed over.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.succ.len()
    }

    /// Total number of `(p, q)` pairs with `p ⇒ε q` (including reflexive
    /// pairs).
    #[must_use]
    pub fn num_pairs(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Heap bytes held by the closure, measured from live container
    /// capacities (allocator slack and per-allocation headers excluded).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.succ.capacity() * std::mem::size_of::<Vec<StateId>>()
            + self
                .succ
                .iter()
                .map(|row| row.capacity() * std::mem::size_of::<StateId>())
                .sum::<usize>()
    }
}

/// Computes the reflexive–transitive τ-closure by one BFS per state.
#[must_use]
pub fn tau_closure(fsp: &Fsp) -> TauClosure {
    let n = fsp.num_states();
    let mut succ = Vec::with_capacity(n);
    let mut seen = vec![usize::MAX; n];
    for s in 0..n {
        let mut out = Vec::new();
        let mut queue = VecDeque::new();
        seen[s] = s;
        queue.push_back(StateId::from_index(s));
        while let Some(p) = queue.pop_front() {
            out.push(p);
            for t in fsp.transitions(p) {
                if t.label.is_tau() && seen[t.target.index()] != s {
                    seen[t.target.index()] = s;
                    queue.push_back(t.target);
                }
            }
        }
        out.sort_unstable();
        succ.push(out);
    }
    TauClosure { succ }
}

/// Computes the reflexive–transitive τ-closure as a boolean reachability
/// matrix using the Floyd–Warshall scheme, mirroring the paper's
/// matrix-product formulation.  Intended for cross-checking [`tau_closure`];
/// costs `O(n³)` time and `O(n²)` space.
#[must_use]
pub fn tau_closure_matrix(fsp: &Fsp) -> Vec<Vec<bool>> {
    let n = fsp.num_states();
    let mut reach = vec![vec![false; n]; n];
    for (i, row) in reach.iter_mut().enumerate() {
        row[i] = true;
    }
    for (from, label, to) in fsp.all_transitions() {
        if label.is_tau() {
            reach[from.index()][to.index()] = true;
        }
    }
    for k in 0..n {
        let via_k = reach[k].clone();
        for row in &mut reach {
            if row[k] {
                row.iter_mut().zip(&via_k).for_each(|(r, &v)| *r |= v);
            }
        }
    }
    reach
}

/// The weak `a`-successor set `{q | p ⇒a q}` for an observable action `a`.
///
/// Returned sorted and duplicate-free.
#[must_use]
pub fn weak_action_successors(
    fsp: &Fsp,
    closure: &TauClosure,
    p: StateId,
    action: ActionId,
) -> Vec<StateId> {
    let mut out = Vec::new();
    for &p1 in closure.successors(p) {
        for p2 in fsp.successors(p1, Label::Act(action)) {
            out.extend_from_slice(closure.successors(p2));
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// The set of observable actions weakly enabled at `p`: actions `a` such that
/// `p ⇒a q` for some `q`.  Used by the failures semantics (Section 5), where
/// `¬(p ⇒a)` contributes `a` to a refusal set.
#[must_use]
pub fn weakly_enabled_actions(fsp: &Fsp, closure: &TauClosure, p: StateId) -> Vec<ActionId> {
    let mut out = Vec::new();
    for a in fsp.action_ids() {
        let enabled = closure
            .successors(p)
            .iter()
            .any(|&p1| fsp.successors(p1, Label::Act(a)).next().is_some());
        if enabled {
            out.push(a);
        }
    }
    out
}

/// One edge of the weak transition relation `⇒` over `Σ ∪ {ε}`.
///
/// Produced by [`weak_edges`]; `action == None` is the ε column
/// (`from ⇒ε to`), `action == Some(a)` the observable column
/// (`from ⇒a to`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WeakEdge {
    /// The source state `p`.
    pub from: StateId,
    /// `None` for `⇒ε`, `Some(a)` for `⇒a`.
    pub action: Option<ActionId>,
    /// The target state `q`.
    pub to: StateId,
}

/// Streams the weak transition relation of Theorem 4.1(a) edge by edge,
/// without materializing a saturated process.
///
/// Edges come out grouped by source state (ascending); within one state the
/// observable columns appear in action order followed by the ε column, and
/// each column's targets are sorted and duplicate-free.  Consumers that lay
/// the edges out (the CSR-backed [`SaturatedView`], or a downstream graph
/// builder) can therefore append in a single pass.
#[must_use]
pub fn weak_edges<'a>(fsp: &'a Fsp, closure: &'a TauClosure) -> WeakEdges<'a> {
    WeakEdges {
        fsp,
        closure,
        next_state: 0,
        buf: Vec::new().into_iter(),
    }
}

/// Iterator over the weak transition relation; see [`weak_edges`].
#[derive(Debug)]
pub struct WeakEdges<'a> {
    fsp: &'a Fsp,
    closure: &'a TauClosure,
    next_state: usize,
    /// Edges of the current source state, drained before the next state's
    /// columns are computed — the only transient storage on this path.
    buf: std::vec::IntoIter<WeakEdge>,
}

impl Iterator for WeakEdges<'_> {
    type Item = WeakEdge;

    fn next(&mut self) -> Option<WeakEdge> {
        loop {
            if let Some(edge) = self.buf.next() {
                return Some(edge);
            }
            if self.next_state >= self.fsp.num_states() {
                return None;
            }
            let p = StateId::from_index(self.next_state);
            self.next_state += 1;
            let mut edges = Vec::new();
            for a in self.fsp.action_ids() {
                for to in weak_action_successors(self.fsp, self.closure, p, a) {
                    edges.push(WeakEdge {
                        from: p,
                        action: Some(a),
                        to,
                    });
                }
            }
            for &to in self.closure.successors(p) {
                edges.push(WeakEdge {
                    from: p,
                    action: None,
                    to,
                });
            }
            self.buf = edges.into_iter();
        }
    }
}

/// A CSR-backed read-only view of the saturated (weak) transition relation:
/// the `P̂` of Theorem 4.1(a) laid out as flat slices instead of a second
/// [`Fsp`].
///
/// For every `(state, column)` pair — the columns are the observable actions
/// of the underlying process plus ε — the sorted, duplicate-free weak
/// successor set is a slice into one contiguous target array.  This is what
/// the equivalence checkers iterate when they repeatedly need
/// `{q | p ⇒σ q}`: one `O(1)` slice lookup replaces the per-query
/// closure-walk of [`weak_action_successors`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SaturatedView {
    num_states: usize,
    num_actions: usize,
    /// `offsets[p·(|Σ|+1) + c] .. offsets[p·(|Σ|+1) + c + 1]` delimits the
    /// targets of column `c` at state `p`; column `|Σ|` is ε.  Stored as
    /// `u32` — the weak relation of any process this crate can hold stays
    /// far below 2³² edges, and the offset table is one of the largest
    /// resident structures of a session.
    offsets: Vec<u32>,
    targets: Vec<StateId>,
}

impl SaturatedView {
    /// Lays out the weak transition relation of `fsp` by a single pass over
    /// [`weak_edges`].
    #[must_use]
    pub fn build(fsp: &Fsp, closure: &TauClosure) -> Self {
        let n = fsp.num_states();
        let k = fsp.num_actions();
        let slots = n * (k + 1);
        let narrow = |len: usize| {
            u32::try_from(len).expect("weak edge count exceeds the 32-bit offset range")
        };
        let mut offsets = vec![0u32; slots + 1];
        let mut targets: Vec<StateId> = Vec::new();
        let mut cur_slot = 0usize;
        for edge in weak_edges(fsp, closure) {
            let slot = edge.from.index() * (k + 1) + edge.action.map_or(k, ActionId::index);
            debug_assert!(slot >= cur_slot, "weak_edges must stream in slot order");
            while cur_slot < slot {
                cur_slot += 1;
                offsets[cur_slot] = narrow(targets.len());
            }
            targets.push(edge.to);
        }
        while cur_slot < slots {
            cur_slot += 1;
            offsets[cur_slot] = narrow(targets.len());
        }
        SaturatedView {
            num_states: n,
            num_actions: k,
            offsets,
            targets,
        }
    }

    /// Number of states (identical to the underlying process).
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of observable actions `|Σ|` (the ε column is extra).
    #[must_use]
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// Total number of weak edges over all columns.
    #[must_use]
    pub fn num_weak_edges(&self) -> usize {
        self.targets.len()
    }

    /// Heap bytes held by the CSR view (offset table plus target array),
    /// measured from live container capacities.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.targets.capacity() * std::mem::size_of::<StateId>()
    }

    #[inline]
    fn column(&self, p: StateId, col: usize) -> &[StateId] {
        let slot = p.index() * (self.num_actions + 1) + col;
        &self.targets[self.offsets[slot] as usize..self.offsets[slot + 1] as usize]
    }

    /// The weak successor set `{q | p ⇒a q}`, sorted and duplicate-free.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `action` is out of range.
    #[must_use]
    pub fn successors(&self, p: StateId, action: ActionId) -> &[StateId] {
        assert!(action.index() < self.num_actions, "action out of range");
        assert!(p.index() < self.num_states, "state out of range");
        self.column(p, action.index())
    }

    /// The ε column `{q | p ⇒ε q}` — the τ-closure of `p`, always containing
    /// `p` itself.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn epsilon_successors(&self, p: StateId) -> &[StateId] {
        assert!(p.index() < self.num_states, "state out of range");
        self.column(p, self.num_actions)
    }

    /// The observable actions weakly enabled at `p` (`∃q: p ⇒a q`), in
    /// action order — the refusal-set complement of the failures semantics,
    /// answered by `|Σ|` slice-emptiness checks.
    pub fn weakly_enabled(&self, p: StateId) -> impl Iterator<Item = ActionId> + '_ {
        (0..self.num_actions)
            .filter(move |&c| !self.column(p, c).is_empty())
            .map(ActionId::from_index)
    }

    /// Re-lays the view with the rows of `dirty` states recomputed from the
    /// (already mutated) process and its (still valid) τ-closure, copying
    /// every clean row's slices verbatim — the mutation-path alternative to
    /// a full [`SaturatedView::build`] when an edge batch only perturbed a
    /// few states' weak successor sets.
    ///
    /// The caller owns the soundness obligation: `dirty` must cover every
    /// state whose weak successors could have changed (for a τ-free batch,
    /// the backward τ-closure of the delta sources).  `fsp` and `closure`
    /// must describe the same state and action alphabet the view was built
    /// over.
    ///
    /// # Panics
    ///
    /// Panics if the process shape diverges from the view or a dirty state
    /// is out of range.
    #[must_use]
    pub fn patched(&self, fsp: &Fsp, closure: &TauClosure, dirty: &[StateId]) -> SaturatedView {
        assert_eq!(fsp.num_states(), self.num_states, "state count diverged");
        assert_eq!(fsp.num_actions(), self.num_actions, "action count diverged");
        let k = self.num_actions;
        let mut is_dirty = vec![false; self.num_states];
        for &p in dirty {
            is_dirty[p.index()] = true;
        }
        let narrow = |len: usize| {
            u32::try_from(len).expect("weak edge count exceeds the 32-bit offset range")
        };
        let mut offsets = Vec::with_capacity(self.offsets.len());
        offsets.push(0u32);
        let mut targets: Vec<StateId> = Vec::with_capacity(self.targets.len());
        for (p, &p_dirty) in is_dirty.iter().enumerate() {
            let sid = StateId::from_index(p);
            if p_dirty {
                for a in 0..k {
                    targets.extend(weak_action_successors(
                        fsp,
                        closure,
                        sid,
                        ActionId::from_index(a),
                    ));
                    offsets.push(narrow(targets.len()));
                }
                targets.extend_from_slice(closure.successors(sid));
                offsets.push(narrow(targets.len()));
            } else {
                for c in 0..=k {
                    targets.extend_from_slice(self.column(sid, c));
                    offsets.push(narrow(targets.len()));
                }
            }
        }
        SaturatedView {
            num_states: self.num_states,
            num_actions: k,
            offsets,
            targets,
        }
    }
}

/// A τ-saturated process: the observable FSP `P̂` over `Σ ∪ {ε}` of
/// Theorem 4.1(a), plus bookkeeping to identify the ε column.
#[derive(Clone, Debug)]
pub struct Saturated {
    /// The saturated process (observable; one extra action named
    /// [`EPSILON_ACTION`]).
    pub fsp: Fsp,
    /// The action identifier of `ε` inside [`Saturated::fsp`].
    pub epsilon: ActionId,
}

/// Saturates a process: computes `P̂` with transitions `p ⇒σ q` for
/// `σ ∈ Σ ∪ {ε}`.
///
/// State identifiers, names and extension sets are preserved, so a state of
/// the original process denotes the same state in the saturated one.
///
/// The size of the saturated transition relation is `O(n²·|Σ|)` in the worst
/// case (the paper bounds it by `O(n²·m)` using per-symbol matrices).
///
/// This materializes a full second [`Fsp`] and is kept as the compatibility
/// path; consumers that only need slice access to the weak successor sets
/// should prefer [`SaturatedView`], and consumers that stream the relation
/// elsewhere (e.g. into a partition-refinement instance) should consume
/// [`weak_edges`] directly.
#[must_use]
pub fn saturate(fsp: &Fsp) -> Saturated {
    let closure = tau_closure(fsp);
    saturate_with_closure(fsp, &closure)
}

/// Like [`saturate`], reusing an already-computed τ-closure.  A thin wrapper
/// that collects [`weak_edges`] into process form.
#[must_use]
pub fn saturate_with_closure(fsp: &Fsp, closure: &TauClosure) -> Saturated {
    let mut actions = fsp_actions_clone(fsp);
    let eps_raw = actions.intern(EPSILON_ACTION);
    let epsilon = ActionId::from_index(eps_raw as usize);
    let mut states: Vec<StateData> = fsp
        .state_ids()
        .map(|p| StateData {
            name: fsp.state_name(p).map(str::to_owned),
            extensions: fsp.extensions(p).clone(),
            transitions: Vec::new(),
        })
        .collect();
    for edge in weak_edges(fsp, closure) {
        states[edge.from.index()].transitions.push(Transition {
            label: Label::Act(edge.action.unwrap_or(epsilon)),
            target: edge.to,
        });
    }
    let sat = Fsp::from_parts(
        format!("{}^sat", fsp.name()),
        fsp.start(),
        states,
        actions,
        fsp_vars_clone(fsp),
    );
    Saturated { fsp: sat, epsilon }
}

fn fsp_actions_clone(fsp: &Fsp) -> crate::interner::Interner {
    fsp.actions.clone()
}

fn fsp_vars_clone(fsp: &Fsp) -> crate::interner::Interner {
    fsp.vars.clone()
}

/// Computes, for every state, its weak `s`-derivative set for a string `s`
/// of observable actions: `{q | p ⇒s q}` (Definition in Section 2.1).
///
/// The empty string yields the ε-closure of `p`.
#[must_use]
pub fn weak_string_derivatives(
    fsp: &Fsp,
    closure: &TauClosure,
    p: StateId,
    s: &[ActionId],
) -> Vec<StateId> {
    let mut current: Vec<StateId> = closure.successors(p).to_vec();
    for &a in s {
        let mut next = Vec::new();
        for &q in &current {
            // q ⇒ε is already folded into `current`; we need q →a r ⇒ε.
            for r in fsp.successors(q, Label::Act(a)) {
                next.extend_from_slice(closure.successors(r));
            }
        }
        next.sort_unstable();
        next.dedup();
        current = next;
        if current.is_empty() {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fsp;

    /// p --tau--> q --a--> r --tau--> s,  p --b--> t
    fn sample() -> Fsp {
        let mut b = Fsp::builder("sat-sample");
        b.transition("p", "tau", "q");
        b.transition("q", "a", "r");
        b.transition("r", "tau", "s");
        b.transition("p", "b", "t");
        b.build().unwrap()
    }

    #[test]
    fn closure_contains_reflexive_pairs() {
        let f = sample();
        let cl = tau_closure(&f);
        for s in f.state_ids() {
            assert!(cl.reaches(s, s));
        }
        assert_eq!(cl.num_states(), f.num_states());
    }

    #[test]
    fn closure_follows_tau_chains() {
        let f = sample();
        let cl = tau_closure(&f);
        let p = f.state_by_name("p").unwrap();
        let q = f.state_by_name("q").unwrap();
        let r = f.state_by_name("r").unwrap();
        assert!(cl.reaches(p, q));
        assert!(!cl.reaches(p, r)); // the a-step is not a τ-step
        assert!(!cl.reaches(q, p)); // τ is not symmetric
        assert_eq!(cl.successors(p).len(), 2);
    }

    #[test]
    fn closure_matches_matrix_formulation() {
        let f = sample();
        let cl = tau_closure(&f);
        let m = tau_closure_matrix(&f);
        for i in f.state_ids() {
            for j in f.state_ids() {
                assert_eq!(cl.reaches(i, j), m[i.index()][j.index()]);
            }
        }
    }

    #[test]
    fn transitive_tau_chain_is_closed() {
        let mut b = Fsp::builder("chain");
        b.transition("a0", "tau", "a1");
        b.transition("a1", "tau", "a2");
        b.transition("a2", "tau", "a3");
        let f = b.build().unwrap();
        let cl = tau_closure(&f);
        let a0 = f.state_by_name("a0").unwrap();
        assert_eq!(cl.successors(a0).len(), 4);
        assert_eq!(cl.num_pairs(), 4 + 3 + 2 + 1);
    }

    #[test]
    fn weak_action_successors_skip_over_tau() {
        let f = sample();
        let cl = tau_closure(&f);
        let p = f.state_by_name("p").unwrap();
        let r = f.state_by_name("r").unwrap();
        let s = f.state_by_name("s").unwrap();
        let a = f.action_id("a").unwrap();
        let succs = weak_action_successors(&f, &cl, p, a);
        assert_eq!(succs, vec![r, s]);
    }

    #[test]
    fn weakly_enabled_sees_through_tau() {
        let f = sample();
        let cl = tau_closure(&f);
        let p = f.state_by_name("p").unwrap();
        let enabled = weakly_enabled_actions(&f, &cl, p);
        let names: Vec<&str> = enabled.iter().map(|&a| f.action_name(a)).collect();
        assert_eq!(names, vec!["a", "b"]);
        let s = f.state_by_name("s").unwrap();
        assert!(weakly_enabled_actions(&f, &cl, s).is_empty());
    }

    #[test]
    fn saturation_produces_observable_process() {
        let f = sample();
        let sat = saturate(&f);
        assert!(!sat.fsp.has_tau_transitions());
        assert_eq!(sat.fsp.num_states(), f.num_states());
        assert_eq!(sat.fsp.action_name(sat.epsilon), crate::EPSILON_ACTION);
        // p ⇒a {r, s}; p ⇒ε {p, q}; p ⇒b {t}.
        let p = f.state_by_name("p").unwrap();
        let a = sat.fsp.action_id("a").unwrap();
        let succs: Vec<_> = sat.fsp.successors(p, Label::Act(a)).collect();
        assert_eq!(succs.len(), 2);
        let eps: Vec<_> = sat.fsp.successors(p, Label::Act(sat.epsilon)).collect();
        assert_eq!(eps.len(), 2);
    }

    #[test]
    fn string_derivatives() {
        let f = sample();
        let cl = tau_closure(&f);
        let p = f.state_by_name("p").unwrap();
        let a = f.action_id("a").unwrap();
        let b = f.action_id("b").unwrap();
        assert_eq!(weak_string_derivatives(&f, &cl, p, &[]).len(), 2);
        assert_eq!(weak_string_derivatives(&f, &cl, p, &[a]).len(), 2);
        assert_eq!(weak_string_derivatives(&f, &cl, p, &[b]).len(), 1);
        assert!(weak_string_derivatives(&f, &cl, p, &[a, a]).is_empty());
        assert!(weak_string_derivatives(&f, &cl, p, &[b, a]).is_empty());
    }

    #[test]
    fn weak_edges_match_the_materialized_saturation() {
        let f = sample();
        let cl = tau_closure(&f);
        let sat = saturate_with_closure(&f, &cl);
        let mut streamed = 0usize;
        for e in weak_edges(&f, &cl) {
            let label = Label::Act(e.action.unwrap_or(sat.epsilon));
            assert!(
                sat.fsp.has_transition(e.from, label, e.to),
                "streamed edge missing from saturated process"
            );
            streamed += 1;
        }
        assert_eq!(streamed, sat.fsp.num_transitions());
    }

    #[test]
    fn saturated_view_slices_agree_with_helpers() {
        let f = sample();
        let cl = tau_closure(&f);
        let view = SaturatedView::build(&f, &cl);
        assert_eq!(view.num_states(), f.num_states());
        assert_eq!(view.num_actions(), f.num_actions());
        let mut total = 0usize;
        for p in f.state_ids() {
            assert_eq!(view.epsilon_successors(p), cl.successors(p));
            total += view.epsilon_successors(p).len();
            for a in f.action_ids() {
                let slice = view.successors(p, a);
                assert_eq!(slice, weak_action_successors(&f, &cl, p, a).as_slice());
                total += slice.len();
            }
            let enabled: Vec<ActionId> = view.weakly_enabled(p).collect();
            assert_eq!(enabled, weakly_enabled_actions(&f, &cl, p));
        }
        assert_eq!(view.num_weak_edges(), total);
    }

    #[test]
    fn saturated_view_handles_trailing_empty_slots() {
        // The last state is dead: its slots must still be laid out.
        let mut b = Fsp::builder("tail");
        b.transition("p", "a", "q");
        let f = b.build().unwrap();
        let cl = tau_closure(&f);
        let view = SaturatedView::build(&f, &cl);
        let q = f.state_by_name("q").unwrap();
        let a = f.action_id("a").unwrap();
        assert!(view.successors(q, a).is_empty());
        assert_eq!(view.epsilon_successors(q), &[q]);
        assert!(view.weakly_enabled(q).next().is_none());
    }

    #[test]
    fn patched_view_matches_a_full_rebuild() {
        let mut f = sample();
        let cl = tau_closure(&f);
        let view = SaturatedView::build(&f, &cl);
        // A τ-free edit: s gains an observable edge back to p.  The weak
        // rows of every state that τ-reaches a source (here: r ⇒ε s and s
        // itself... plus p, q which reach nothing new — dirty must cover
        // the backward τ-closure of the source s: {r, s}).
        let s = f.state_by_name("s").unwrap();
        let p = f.state_by_name("p").unwrap();
        let r = f.state_by_name("r").unwrap();
        let b = f.action_id("b").unwrap();
        f.apply_edge_delta(&[(s, Label::Act(b), p)], &[]);
        let patched = view.patched(&f, &cl, &[r, s]);
        assert_eq!(patched, SaturatedView::build(&f, &cl));
    }

    #[test]
    fn patched_view_with_no_dirty_states_is_identical() {
        let f = sample();
        let cl = tau_closure(&f);
        let view = SaturatedView::build(&f, &cl);
        assert_eq!(view.patched(&f, &cl, &[]), view);
    }

    #[test]
    fn saturation_preserves_extensions_and_names() {
        let mut b = Fsp::builder("ext");
        b.transition("p", "tau", "q");
        let q = b.state("q");
        b.mark_accepting(q);
        let f = b.build().unwrap();
        let sat = saturate(&f);
        assert!(sat.fsp.is_accepting(q));
        assert_eq!(sat.fsp.state_name(q), Some("q"));
        assert!(!sat.fsp.is_accepting(f.state_by_name("p").unwrap()));
    }
}
