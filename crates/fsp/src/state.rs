use std::fmt;

/// Identifier of a state inside a single [`Fsp`](crate::Fsp).
///
/// State identifiers are dense indices `0..n` assigned in creation order by
/// the [`FspBuilder`](crate::FspBuilder).  They are only meaningful relative
/// to the process that created them; combinators such as
/// [`ops::disjoint_union`](crate::ops::disjoint_union) return explicit maps
/// from old to new identifiers.
///
/// ```
/// use ccs_fsp::StateId;
/// let s = StateId::from_index(3);
/// assert_eq!(s.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(u32);

impl StateId {
    /// Creates a state identifier from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        Self::try_from_index(index).expect("state index exceeds u32::MAX")
    }

    /// The checked form of [`StateId::from_index`]: the single ingestion
    /// gate through which untrusted state counts (parsed text, wire
    /// requests, generator parameters) enter the packed 32-bit id space.
    ///
    /// # Errors
    ///
    /// Returns [`crate::FspError::TooManyStates`] if `index` exceeds `u32::MAX` —
    /// ids are never silently truncated.
    pub fn try_from_index(index: usize) -> Result<Self, crate::FspError> {
        u32::try_from(index)
            .map(StateId)
            .map_err(|_| crate::FspError::TooManyStates { requested: index })
    }

    /// Returns the dense index of this state.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<StateId> for usize {
    fn from(value: StateId) -> Self {
        value.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for i in [0usize, 1, 7, 4096] {
            assert_eq!(StateId::from_index(i).index(), i);
        }
    }

    #[test]
    fn oversize_index_is_a_clean_error_not_a_truncation() {
        assert_eq!(
            StateId::try_from_index(u32::MAX as usize).unwrap().index(),
            u32::MAX as usize
        );
        let err = StateId::try_from_index(u32::MAX as usize + 1).unwrap_err();
        assert!(matches!(
            err,
            crate::FspError::TooManyStates {
                requested
            } if requested == u32::MAX as usize + 1
        ));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(StateId::from_index(1) < StateId::from_index(2));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(StateId::from_index(5).to_string(), "s5");
        assert_eq!(format!("{:?}", StateId::from_index(5)), "s5");
    }
}
