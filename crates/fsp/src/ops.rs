//! Combinators on processes: disjoint union, CCS-style choice and prefixing,
//! relabelling, restriction to the reachable part, and synchronous product.
//!
//! Equivalence checkers work on *states of a single process* (as in
//! Lemma 3.1), so comparing two separate processes starts with
//! [`disjoint_union`], which merges alphabets by action name and returns the
//! images of both start states.

use std::collections::BTreeSet;
use std::collections::HashMap;

use crate::interner::Interner;
use crate::label::{Label, VarId};
use crate::process::{Fsp, StateData, Transition};
use crate::state::StateId;
use crate::{FspError, ACCEPT_VAR};

/// Result of [`disjoint_union`]: the combined process plus the mapping of the
/// original state identifiers into it.
#[derive(Clone, Debug)]
pub struct UnionMap {
    /// The combined process.
    pub fsp: Fsp,
    /// `left[i]` is the image in the union of state `i` of the left operand.
    pub left: Vec<StateId>,
    /// `right[i]` is the image in the union of state `i` of the right operand.
    pub right: Vec<StateId>,
}

fn remap_labels(fsp: &Fsp, actions: &mut Interner) -> Vec<Label> {
    // Map each action index of `fsp` to a label in the combined alphabet.
    fsp.action_ids()
        .map(|a| {
            let id = actions.intern(fsp.action_name(a));
            Label::Act(crate::ActionId::from_index(id as usize))
        })
        .collect()
}

fn remap_vars(fsp: &Fsp, vars: &mut Interner) -> Vec<VarId> {
    fsp.var_ids()
        .map(|v| VarId::from_index(vars.intern(fsp.var_name(v)) as usize))
        .collect()
}

fn copy_states(
    fsp: &Fsp,
    offset: usize,
    action_map: &[Label],
    var_map: &[VarId],
    name_prefix: &str,
    out: &mut Vec<StateData>,
) -> Vec<StateId> {
    let mut images = Vec::with_capacity(fsp.num_states());
    for p in fsp.state_ids() {
        let new_id = StateId::from_index(offset + p.index());
        images.push(new_id);
        let transitions = fsp
            .transitions(p)
            .iter()
            .map(|t| Transition {
                label: match t.label {
                    Label::Tau => Label::Tau,
                    Label::Act(a) => action_map[a.index()],
                },
                target: StateId::from_index(offset + t.target.index()),
            })
            .collect();
        let extensions: BTreeSet<VarId> = fsp
            .extensions(p)
            .iter()
            .map(|v| var_map[v.index()])
            .collect();
        let name = fsp
            .state_name(p)
            .map(|n| format!("{name_prefix}{n}"))
            .or_else(|| Some(format!("{name_prefix}{p}")));
        out.push(StateData {
            name,
            extensions,
            transitions,
        });
    }
    images
}

/// Forms the disjoint union of two processes, merging their alphabets and
/// variable sets by name.
///
/// State names are prefixed with `L:` / `R:` to keep them unique; the
/// returned [`UnionMap`] records where each original state ended up.
///
/// ```
/// use ccs_fsp::{Fsp, ops};
/// let mut a = Fsp::builder("a"); a.transition("p", "x", "q");
/// let mut b = Fsp::builder("b"); b.transition("u", "x", "v");
/// let u = ops::disjoint_union(&a.build()?, &b.build()?);
/// assert_eq!(u.fsp.num_states(), 4);
/// assert_eq!(u.fsp.num_actions(), 1); // the shared action `x`
/// # Ok::<(), ccs_fsp::FspError>(())
/// ```
#[must_use]
pub fn disjoint_union(left: &Fsp, right: &Fsp) -> UnionMap {
    let mut actions = Interner::new();
    let mut vars = Interner::new();
    let left_actions = remap_labels(left, &mut actions);
    let right_actions = remap_labels(right, &mut actions);
    let left_vars = remap_vars(left, &mut vars);
    let right_vars = remap_vars(right, &mut vars);

    let mut states = Vec::with_capacity(left.num_states() + right.num_states());
    let left_images = copy_states(left, 0, &left_actions, &left_vars, "L:", &mut states);
    let right_images = copy_states(
        right,
        left.num_states(),
        &right_actions,
        &right_vars,
        "R:",
        &mut states,
    );

    let start = left_images[left.start().index()];
    let fsp = Fsp::from_parts(
        format!("{}+{}", left.name(), right.name()),
        start,
        states,
        actions,
        vars,
    );
    UnionMap {
        fsp,
        left: left_images,
        right: right_images,
    }
}

/// Images of the two start states after [`disjoint_union`].
#[must_use]
pub fn union_starts(map: &UnionMap, left: &Fsp, right: &Fsp) -> (StateId, StateId) {
    (
        map.left[left.start().index()],
        map.right[right.start().index()],
    )
}

/// CCS-style action prefix `a · P`: a new start state with a single
/// `a`-transition into (a copy of) the start state of `P`.
///
/// This is the process the star expression `a.P` denotes when `P` is given by
/// its representative FSP (Definition 2.3.1); it is the building block of the
/// Theorem 4.1(b) gadget.
#[must_use]
pub fn prefix(action: &str, p: &Fsp) -> Fsp {
    let mut actions = Interner::new();
    let mut vars = Interner::new();
    let p_actions = remap_labels(p, &mut actions);
    let p_vars = remap_vars(p, &mut vars);
    let prefix_label = Label::Act(crate::ActionId::from_index(actions.intern(action) as usize));

    let mut states = Vec::with_capacity(p.num_states() + 1);
    let images = copy_states(p, 0, &p_actions, &p_vars, "", &mut states);
    let new_start = StateId::from_index(states.len());
    states.push(StateData {
        name: Some("start".to_owned()),
        extensions: BTreeSet::new(),
        transitions: vec![Transition {
            label: prefix_label,
            target: images[p.start().index()],
        }],
    });
    Fsp::from_parts(
        format!("{action}.{}", p.name()),
        new_start,
        states,
        actions,
        vars,
    )
}

/// CCS-style binary choice `P ∪ Q` following the union construction of
/// Definition 2.3.1: a fresh start state whose transitions and extensions are
/// those of both original start states.
///
/// Note that, unlike the disjoint union, the new start state *simulates* both
/// starts; this is the semantics of the star-expression operator `∪`.
#[must_use]
pub fn choice(left: &Fsp, right: &Fsp) -> Fsp {
    let mut actions = Interner::new();
    let mut vars = Interner::new();
    let left_actions = remap_labels(left, &mut actions);
    let right_actions = remap_labels(right, &mut actions);
    let left_vars = remap_vars(left, &mut vars);
    let right_vars = remap_vars(right, &mut vars);

    let mut states = Vec::with_capacity(left.num_states() + right.num_states() + 1);
    let left_images = copy_states(left, 0, &left_actions, &left_vars, "L:", &mut states);
    let right_images = copy_states(
        right,
        left.num_states(),
        &right_actions,
        &right_vars,
        "R:",
        &mut states,
    );

    let new_start = StateId::from_index(states.len());
    let mut transitions = Vec::new();
    let mut extensions = BTreeSet::new();
    for (images, fsp) in [(&left_images, left), (&right_images, right)] {
        let start_img = images[fsp.start().index()];
        transitions.extend(states[start_img.index()].transitions.iter().copied());
        extensions.extend(states[start_img.index()].extensions.iter().copied());
    }
    states.push(StateData {
        name: Some("choice".to_owned()),
        extensions,
        transitions,
    });
    Fsp::from_parts(
        format!("({})u({})", left.name(), right.name()),
        new_start,
        states,
        actions,
        vars,
    )
}

/// Makes every state accepting, producing a process of the *restricted* model
/// (all extension sets become exactly `{x}`).
#[must_use]
pub fn make_restricted(fsp: &Fsp) -> Fsp {
    let mut vars = Interner::new();
    let x = VarId::from_index(vars.intern(ACCEPT_VAR) as usize);
    let states = fsp
        .state_ids()
        .map(|p| StateData {
            name: fsp.state_name(p).map(str::to_owned),
            extensions: BTreeSet::from([x]),
            transitions: fsp.transitions(p).to_vec(),
        })
        .collect();
    Fsp::from_parts(
        format!("{}|restricted", fsp.name()),
        fsp.start(),
        states,
        fsp.actions.clone(),
        vars,
    )
}

/// Renames observable actions according to `mapping` (actions not mentioned
/// keep their names).  Renaming two actions to the same name merges them.
#[must_use]
pub fn relabel(fsp: &Fsp, mapping: &HashMap<String, String>) -> Fsp {
    let mut actions = Interner::new();
    let action_map: Vec<Label> = fsp
        .action_ids()
        .map(|a| {
            let old = fsp.action_name(a);
            let new = mapping.get(old).map_or(old, String::as_str);
            Label::Act(crate::ActionId::from_index(actions.intern(new) as usize))
        })
        .collect();
    let states = fsp
        .state_ids()
        .map(|p| StateData {
            name: fsp.state_name(p).map(str::to_owned),
            extensions: fsp.extensions(p).clone(),
            transitions: fsp
                .transitions(p)
                .iter()
                .map(|t| Transition {
                    label: match t.label {
                        Label::Tau => Label::Tau,
                        Label::Act(a) => action_map[a.index()],
                    },
                    target: t.target,
                })
                .collect(),
        })
        .collect();
    Fsp::from_parts(
        format!("{}|relabel", fsp.name()),
        fsp.start(),
        states,
        actions,
        fsp.vars.clone(),
    )
}

/// Restricts a process to the states reachable from its start state.
///
/// Returns the restricted process and, for each original state, its new
/// identifier (or `None` if it was unreachable).
#[must_use]
pub fn restrict_to_reachable(fsp: &Fsp) -> (Fsp, Vec<Option<StateId>>) {
    let reachable = crate::reach::reachable_states(fsp, fsp.start());
    let mut mapping: Vec<Option<StateId>> = vec![None; fsp.num_states()];
    let mut sorted = reachable;
    sorted.sort_unstable();
    for (new_idx, &old) in sorted.iter().enumerate() {
        mapping[old.index()] = Some(StateId::from_index(new_idx));
    }
    let states = sorted
        .iter()
        .map(|&p| StateData {
            name: fsp.state_name(p).map(str::to_owned),
            extensions: fsp.extensions(p).clone(),
            transitions: fsp
                .transitions(p)
                .iter()
                .filter_map(|t| {
                    mapping[t.target.index()].map(|target| Transition {
                        label: t.label,
                        target,
                    })
                })
                .collect(),
        })
        .collect();
    let start = mapping[fsp.start().index()].expect("start state is always reachable");
    let restricted = Fsp::from_parts(
        format!("{}|reach", fsp.name()),
        start,
        states,
        fsp.actions.clone(),
        fsp.vars.clone(),
    );
    (restricted, mapping)
}

/// Synchronous product of two *observable* processes over their shared
/// alphabet: the product moves on action `a` exactly when both components do.
///
/// A product state carries a variable iff both components do; in the standard
/// model this is the usual "accepting iff both accepting" product used for
/// language-intersection arguments.  Only the reachable part is constructed.
///
/// # Errors
///
/// Returns [`FspError::ModelMismatch`] if either process has τ-transitions.
pub fn synchronous_product(left: &Fsp, right: &Fsp) -> Result<Fsp, FspError> {
    if left.has_tau_transitions() || right.has_tau_transitions() {
        return Err(FspError::ModelMismatch {
            expected: "observable (no tau transitions) operands for synchronous product".into(),
        });
    }
    let mut actions = Interner::new();
    let left_actions = remap_labels(left, &mut actions);
    let mut vars = Interner::new();
    let left_vars = remap_vars(left, &mut vars);
    // Right action/var images resolved on demand by name.
    let mut states: Vec<StateData> = Vec::new();
    let mut index: HashMap<(StateId, StateId), StateId> = HashMap::new();
    let mut queue: Vec<(StateId, StateId)> = Vec::new();
    let start_pair = (left.start(), right.start());

    let get_or_create = |pair: (StateId, StateId),
                         states: &mut Vec<StateData>,
                         queue: &mut Vec<(StateId, StateId)>,
                         index: &mut HashMap<(StateId, StateId), StateId>| {
        if let Some(&id) = index.get(&pair) {
            return id;
        }
        let id = StateId::from_index(states.len());
        states.push(StateData {
            name: Some(format!(
                "({},{})",
                left.state_label(pair.0),
                right.state_label(pair.1)
            )),
            extensions: BTreeSet::new(),
            transitions: Vec::new(),
        });
        index.insert(pair, id);
        queue.push(pair);
        id
    };

    let start = get_or_create(start_pair, &mut states, &mut queue, &mut index);
    let _ = start;
    let mut head = 0;
    while head < queue.len() {
        let (lp, rp) = queue[head];
        head += 1;
        let id = index[&(lp, rp)];
        // Extensions: variables present on both sides (matched by name).
        let mut exts = BTreeSet::new();
        for v in left.extensions(lp) {
            let name = left.var_name(*v);
            if right
                .extensions(rp)
                .iter()
                .any(|rv| right.var_name(*rv) == name)
            {
                exts.insert(left_vars[v.index()]);
            }
        }
        let mut transitions = Vec::new();
        for lt in left.transitions(lp) {
            let la = lt.label.action().expect("observable process");
            let a_name = left.action_name(la);
            if let Some(ra) = right.action_id(a_name) {
                for rt in right.transitions(rp) {
                    if rt.label == Label::Act(ra) {
                        let target = get_or_create(
                            (lt.target, rt.target),
                            &mut states,
                            &mut queue,
                            &mut index,
                        );
                        transitions.push(Transition {
                            label: left_actions[la.index()],
                            target,
                        });
                    }
                }
            }
        }
        states[id.index()].extensions = exts;
        states[id.index()].transitions = transitions;
    }
    Ok(Fsp::from_parts(
        format!("{}x{}", left.name(), right.name()),
        StateId::from_index(0),
        states,
        actions,
        vars,
    ))
}

/// Parallel composition `P | Q` over the shared alphabet: actions named in
/// **both** alphabets are handshakes (the composite moves on `a` exactly when
/// both components do), while τ-moves and actions private to one component
/// interleave freely.
///
/// This is the CSP-style composition used by the distributed-protocol corpus
/// (`ccs_workloads::protocols`): a channel process shares its `put`/`get`
/// actions with exactly one producer and one consumer, so a chain
/// `sender | channel | receiver` rendezvouses pairwise.  A composite state
/// carries a variable iff both components do ("accepting iff both
/// accepting"), matching [`synchronous_product`]; only the reachable part is
/// constructed.
///
/// Unlike [`synchronous_product`] the operands may have τ-transitions — the
/// whole point is to feed the result to the *weak* checkers after [`hide`].
#[must_use]
pub fn parallel(left: &Fsp, right: &Fsp) -> Fsp {
    let mut actions = Interner::new();
    let left_actions = remap_labels(left, &mut actions);
    let right_actions = remap_labels(right, &mut actions);
    let mut vars = Interner::new();
    let left_vars = remap_vars(left, &mut vars);

    let mut states: Vec<StateData> = Vec::new();
    let mut index: HashMap<(StateId, StateId), StateId> = HashMap::new();
    let mut queue: Vec<(StateId, StateId)> = Vec::new();

    let get_or_create = |pair: (StateId, StateId),
                         states: &mut Vec<StateData>,
                         queue: &mut Vec<(StateId, StateId)>,
                         index: &mut HashMap<(StateId, StateId), StateId>| {
        if let Some(&id) = index.get(&pair) {
            return id;
        }
        let id = StateId::from_index(states.len());
        states.push(StateData {
            name: Some(format!(
                "({},{})",
                left.state_label(pair.0),
                right.state_label(pair.1)
            )),
            extensions: BTreeSet::new(),
            transitions: Vec::new(),
        });
        index.insert(pair, id);
        queue.push(pair);
        id
    };

    get_or_create(
        (left.start(), right.start()),
        &mut states,
        &mut queue,
        &mut index,
    );
    let mut head = 0;
    while head < queue.len() {
        let (lp, rp) = queue[head];
        head += 1;
        let id = index[&(lp, rp)];
        let mut exts = BTreeSet::new();
        for v in left.extensions(lp) {
            let name = left.var_name(*v);
            if right
                .extensions(rp)
                .iter()
                .any(|rv| right.var_name(*rv) == name)
            {
                exts.insert(left_vars[v.index()]);
            }
        }
        let mut transitions = Vec::new();
        for lt in left.transitions(lp) {
            match lt.label {
                Label::Tau => {
                    let target =
                        get_or_create((lt.target, rp), &mut states, &mut queue, &mut index);
                    transitions.push(Transition {
                        label: Label::Tau,
                        target,
                    });
                }
                Label::Act(la) => {
                    let name = left.action_name(la);
                    if let Some(ra) = right.action_id(name) {
                        // Shared action: handshake with every matching right
                        // move (none ⇒ the composite blocks on it here).
                        for rt in right.transitions(rp) {
                            if rt.label == Label::Act(ra) {
                                let target = get_or_create(
                                    (lt.target, rt.target),
                                    &mut states,
                                    &mut queue,
                                    &mut index,
                                );
                                transitions.push(Transition {
                                    label: left_actions[la.index()],
                                    target,
                                });
                            }
                        }
                    } else {
                        let target =
                            get_or_create((lt.target, rp), &mut states, &mut queue, &mut index);
                        transitions.push(Transition {
                            label: left_actions[la.index()],
                            target,
                        });
                    }
                }
            }
        }
        for rt in right.transitions(rp) {
            match rt.label {
                Label::Tau => {
                    let target =
                        get_or_create((lp, rt.target), &mut states, &mut queue, &mut index);
                    transitions.push(Transition {
                        label: Label::Tau,
                        target,
                    });
                }
                Label::Act(ra) => {
                    // Shared actions were already paired from the left side.
                    if left.action_id(right.action_name(ra)).is_none() {
                        let target =
                            get_or_create((lp, rt.target), &mut states, &mut queue, &mut index);
                        transitions.push(Transition {
                            label: right_actions[ra.index()],
                            target,
                        });
                    }
                }
            }
        }
        states[id.index()].extensions = exts;
        states[id.index()].transitions = transitions;
    }
    Fsp::from_parts(
        format!("{}|{}", left.name(), right.name()),
        StateId::from_index(0),
        states,
        actions,
        vars,
    )
}

/// Quotients a process by a block assignment (`assignment[s]` is the block
/// of state `s`, blocks numbered `0..num_blocks`): one state per block,
/// transitions the union of the members' transitions mapped blockwise (and
/// deduplicated), extensions taken from the first member of each block.
///
/// The caller is responsible for the assignment being a *bisimulation*
/// equivalence for the notion it cares about — for blocks computed by the
/// observational-equivalence checker the quotient is weakly bisimilar to
/// the original (each state is ≈ its block), which is what compositional
/// minimization (`ccs_expr::compose`) relies on.  Blocks of such partitions
/// always agree on extension sets, so taking the first member's is exact.
///
/// # Panics
///
/// Panics if `assignment` does not cover every state or names a block
/// `≥ num_blocks`.
#[must_use]
pub fn quotient(fsp: &Fsp, assignment: &[usize], num_blocks: usize) -> Fsp {
    assert_eq!(
        assignment.len(),
        fsp.num_states(),
        "assignment covers all states"
    );
    let mut representative: Vec<Option<StateId>> = vec![None; num_blocks];
    for p in fsp.state_ids() {
        let b = assignment[p.index()];
        assert!(b < num_blocks, "block id out of range");
        representative[b].get_or_insert(p);
    }
    let states: Vec<StateData> = representative
        .iter()
        .enumerate()
        .map(|(b, rep)| {
            let rep = rep.unwrap_or_else(|| panic!("block {b} has no members"));
            let mut transitions: Vec<Transition> = fsp
                .state_ids()
                .filter(|p| assignment[p.index()] == b)
                .flat_map(|p| fsp.transitions(p).iter())
                .map(|t| Transition {
                    label: t.label,
                    target: StateId::from_index(assignment[t.target.index()]),
                })
                .collect();
            transitions.sort_unstable_by_key(|t| (t.label, t.target));
            transitions.dedup();
            StateData {
                name: fsp.state_name(rep).map(|n| format!("[{n}]")),
                extensions: fsp.extensions(rep).clone(),
                transitions,
            }
        })
        .collect();
    Fsp::from_parts(
        format!("{}/~", fsp.name()),
        StateId::from_index(assignment[fsp.start().index()]),
        states,
        fsp.actions.clone(),
        fsp.vars.clone(),
    )
}

/// Hides the named actions: every transition on one of them becomes a
/// τ-transition and the actions leave the alphabet.  Actions not in the
/// alphabet are ignored.
///
/// `hide(parallel(p, q), internals)` is the standard way to close a protocol
/// composition before comparing it to its specification under the weak
/// notions (≈, trace, failure).
#[must_use]
pub fn hide(fsp: &Fsp, hidden: &[&str]) -> Fsp {
    let mut actions = Interner::new();
    let action_map: Vec<Label> = fsp
        .action_ids()
        .map(|a| {
            let name = fsp.action_name(a);
            if hidden.contains(&name) {
                Label::Tau
            } else {
                Label::Act(crate::ActionId::from_index(actions.intern(name) as usize))
            }
        })
        .collect();
    let states = fsp
        .state_ids()
        .map(|p| StateData {
            name: fsp.state_name(p).map(str::to_owned),
            extensions: fsp.extensions(p).clone(),
            transitions: fsp
                .transitions(p)
                .iter()
                .map(|t| Transition {
                    label: match t.label {
                        Label::Tau => Label::Tau,
                        Label::Act(a) => action_map[a.index()],
                    },
                    target: t.target,
                })
                .collect(),
        })
        .collect();
    Fsp::from_parts(
        format!("{}\\H", fsp.name()),
        fsp.start(),
        states,
        actions,
        fsp.vars.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fsp;

    fn ab_process() -> Fsp {
        let mut b = Fsp::builder("ab");
        b.transition("p", "a", "q");
        b.transition("q", "b", "p");
        let q = b.state("q");
        b.mark_accepting(q);
        b.build().unwrap()
    }

    fn ac_process() -> Fsp {
        let mut b = Fsp::builder("ac");
        b.transition("u", "a", "v");
        b.transition("v", "c", "u");
        let v = b.state("v");
        b.mark_accepting(v);
        b.build().unwrap()
    }

    #[test]
    fn disjoint_union_merges_alphabets_by_name() {
        let u = disjoint_union(&ab_process(), &ac_process());
        assert_eq!(u.fsp.num_states(), 4);
        assert_eq!(u.fsp.num_actions(), 3); // a, b, c
        assert_eq!(u.fsp.num_transitions(), 4);
        let (ls, rs) = union_starts(&u, &ab_process(), &ac_process());
        assert_ne!(ls, rs);
        assert_eq!(u.fsp.start(), ls);
        // Shared action `a` exists exactly once.
        assert!(u.fsp.action_id("a").is_some());
    }

    #[test]
    fn disjoint_union_preserves_acceptance() {
        let left = ab_process();
        let right = ac_process();
        let u = disjoint_union(&left, &right);
        let lq = u.left[left.state_by_name("q").unwrap().index()];
        let rv = u.right[right.state_by_name("v").unwrap().index()];
        assert!(u.fsp.is_accepting(lq));
        assert!(u.fsp.is_accepting(rv));
        assert_eq!(u.fsp.accepting_states().len(), 2);
    }

    #[test]
    fn prefix_adds_one_state_and_transition() {
        let p = ab_process();
        let f = prefix("go", &p);
        assert_eq!(f.num_states(), p.num_states() + 1);
        assert_eq!(f.num_transitions(), p.num_transitions() + 1);
        let start = f.start();
        assert_eq!(f.out_degree(start), 1);
        assert_eq!(f.label_name(f.transitions(start)[0].label), "go");
    }

    #[test]
    fn choice_start_has_both_branches() {
        let f = choice(&ab_process(), &ac_process());
        let start = f.start();
        // Both components start with an `a` move, so the choice start has two
        // outgoing `a` transitions.
        let a = f.action_id("a").unwrap();
        assert_eq!(f.successors(start, Label::Act(a)).count(), 2);
        assert_eq!(f.num_states(), 4 + 1);
    }

    #[test]
    fn make_restricted_marks_everything() {
        let f = make_restricted(&ab_process());
        assert!(f.profile().restricted);
        assert_eq!(f.accepting_states().len(), f.num_states());
        assert_eq!(f.num_transitions(), ab_process().num_transitions());
    }

    #[test]
    fn relabel_renames_and_merges() {
        let mut mapping = HashMap::new();
        mapping.insert("b".to_owned(), "a".to_owned());
        let f = relabel(&ab_process(), &mapping);
        assert_eq!(f.num_actions(), 1);
        assert!(f.action_id("a").is_some());
        assert!(f.action_id("b").is_none());
    }

    #[test]
    fn restrict_to_reachable_drops_islands() {
        let mut b = Fsp::builder("t");
        b.transition("p", "a", "q");
        b.transition("island", "a", "island2");
        let p = b.state("p");
        b.set_start(p);
        let f = b.build().unwrap();
        let (r, mapping) = restrict_to_reachable(&f);
        assert_eq!(r.num_states(), 2);
        assert!(mapping[f.state_by_name("island").unwrap().index()].is_none());
        assert!(mapping[f.state_by_name("q").unwrap().index()].is_some());
        assert!(crate::reach::is_connected(&r));
    }

    #[test]
    fn synchronous_product_requires_observable() {
        let mut b = Fsp::builder("tau");
        b.transition("p", "tau", "q");
        let f = b.build().unwrap();
        assert!(synchronous_product(&f, &ab_process()).is_err());
    }

    #[test]
    fn synchronous_product_intersects_behaviour() {
        // ab loop × ac loop: both can do `a`, then left wants `b`, right wants
        // `c` — the product deadlocks after one step.
        let prod = synchronous_product(&ab_process(), &ac_process()).unwrap();
        assert_eq!(prod.num_states(), 2);
        assert_eq!(prod.num_transitions(), 1);
        // The second state is accepting on both sides.
        let accepting = prod.accepting_states();
        assert_eq!(accepting.len(), 1);
    }

    #[test]
    fn synchronous_product_of_identical_loops_is_a_loop() {
        let prod = synchronous_product(&ab_process(), &ab_process()).unwrap();
        assert_eq!(prod.num_states(), 2);
        assert_eq!(prod.num_transitions(), 2);
    }

    #[test]
    fn parallel_synchronizes_shared_and_interleaves_private_actions() {
        // left: a.b loop, right: a.c loop — `a` is shared (handshake), `b`
        // and `c` are private (interleave).  After the joint `a`, both
        // private continuations are possible in either order.
        let prod = parallel(&ab_process(), &ac_process());
        assert_eq!(prod.num_actions(), 3);
        let start = prod.start();
        // Only the handshake on `a` is enabled at the start.
        assert_eq!(prod.out_degree(start), 1);
        let a = prod.action_id("a").unwrap();
        let after_a = prod.successors(start, Label::Act(a)).next().unwrap();
        // Both `b` and `c` are now enabled independently.
        assert_eq!(prod.out_degree(after_a), 2);
        // b then c and c then b both lead back to the start pair: 4 states.
        assert_eq!(prod.num_states(), 4);
    }

    #[test]
    fn parallel_interleaves_tau_moves() {
        let mut b = Fsp::builder("tau-then-a");
        b.transition("p", "tau", "q");
        b.transition("q", "a", "p");
        b.mark_all_accepting();
        let left = b.build().unwrap();
        let prod = parallel(&left, &ab_process());
        // The τ interleaves: the start state has the τ move (and no `a`,
        // which is shared and not yet enabled on the left).
        assert!(prod.has_tau_transitions());
        assert_eq!(prod.out_degree(prod.start()), 1);
    }

    #[test]
    fn parallel_acceptance_requires_both_sides() {
        let left = make_restricted(&ab_process());
        let right = ac_process(); // only `v` accepting
        let prod = parallel(&left, &right);
        for p in prod.state_ids() {
            let name = prod.state_name(p).unwrap().to_owned();
            if prod.is_accepting(p) {
                assert!(name.contains('v'), "accepting product state {name}");
            }
        }
    }

    #[test]
    fn hide_turns_actions_into_tau_and_shrinks_the_alphabet() {
        let f = ab_process();
        let h = hide(&f, &["b"]);
        assert_eq!(h.num_actions(), 1);
        assert!(h.action_id("b").is_none());
        assert!(h.has_tau_transitions());
        assert_eq!(h.num_transitions(), f.num_transitions());
        // Hiding an action not in the alphabet is a no-op.
        let same = hide(&f, &["zzz"]);
        assert_eq!(same.num_actions(), f.num_actions());
    }
}
