//! A plain-text interchange format for finite state processes.
//!
//! The format is line-oriented; `#` starts a comment and blank lines are
//! ignored.  Directives:
//!
//! ```text
//! process NAME          # optional, at most once
//! state S1 S2 ...       # declare states (optional; transitions declare too)
//! start S               # designate the start state (default: first state)
//! trans P LABEL Q       # transition P --LABEL--> Q; LABEL `tau` is the
//!                       # unobservable action
//! ext S V1 V2 ...       # add variables V1.. to the extension set E(S)
//! accept S1 S2 ...      # shorthand for `ext Si x`
//! ```
//!
//! ```
//! use ccs_fsp::format;
//! let fsp = format::parse(r"
//!     process coffee
//!     trans idle coin paid
//!     trans paid coffee idle
//!     accept idle
//! ")?;
//! assert_eq!(fsp.num_states(), 2);
//! let round_trip = format::parse(&format::to_text(&fsp))?;
//! assert_eq!(round_trip.num_states(), fsp.num_states());
//! # Ok::<(), ccs_fsp::FspError>(())
//! ```

use crate::builder::FspBuilder;
use crate::process::Fsp;
use crate::{FspError, Label};

/// Parses a process from its textual description.
///
/// # Errors
///
/// Returns [`FspError::Parse`] for malformed directives and
/// [`FspError::EmptyProcess`] if the text declares no state.
pub fn parse(text: &str) -> Result<Fsp, FspError> {
    let mut name = "process".to_owned();
    let mut builder: Option<FspBuilder> = None;
    let mut pending_start: Option<String> = None;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let directive = parts.next().expect("non-empty line has a first token");
        let args: Vec<&str> = parts.collect();
        let err = |message: &str| FspError::Parse {
            line: lineno + 1,
            message: message.to_owned(),
        };
        match directive {
            "process" => {
                if args.len() != 1 {
                    return Err(err("'process' takes exactly one name"));
                }
                if builder.is_some() {
                    return Err(err("'process' must appear before other directives"));
                }
                name = args[0].to_owned();
            }
            "state" => {
                if args.is_empty() {
                    return Err(err("'state' needs at least one state name"));
                }
                let b = builder.get_or_insert_with(|| FspBuilder::new(&name));
                for s in &args {
                    b.state(s);
                }
            }
            "start" => {
                if args.len() != 1 {
                    return Err(err("'start' takes exactly one state name"));
                }
                pending_start = Some(args[0].to_owned());
            }
            "trans" => {
                if args.len() != 3 {
                    return Err(err("'trans' takes: source label target"));
                }
                let b = builder.get_or_insert_with(|| FspBuilder::new(&name));
                b.transition(args[0], args[1], args[2]);
            }
            "ext" => {
                if args.len() < 2 {
                    return Err(err("'ext' takes: state var..."));
                }
                let b = builder.get_or_insert_with(|| FspBuilder::new(&name));
                let s = b.state(args[0]);
                for v in &args[1..] {
                    b.add_extension(s, v);
                }
            }
            "accept" => {
                if args.is_empty() {
                    return Err(err("'accept' needs at least one state name"));
                }
                let b = builder.get_or_insert_with(|| FspBuilder::new(&name));
                for s in &args {
                    let id = b.state(s);
                    b.mark_accepting(id);
                }
            }
            other => {
                return Err(err(&format!("unknown directive '{other}'")));
            }
        }
    }

    let mut builder = builder.ok_or(FspError::EmptyProcess)?;
    if let Some(start_name) = pending_start {
        let s = builder.state(&start_name);
        builder.set_start(s);
    }
    builder.build()
}

/// Renders a process in the textual format accepted by [`parse`].
///
/// The output lists every state explicitly, so processes with isolated or
/// extension-only states round-trip exactly.
#[must_use]
pub fn to_text(fsp: &Fsp) -> String {
    let mut out = String::new();
    out.push_str(&format!("process {}\n", sanitize(fsp.name())));
    let labels: Vec<String> = fsp
        .state_ids()
        .map(|s| sanitize(&fsp.state_label(s)))
        .collect();
    out.push_str(&format!("state {}\n", labels.join(" ")));
    out.push_str(&format!("start {}\n", labels[fsp.start().index()]));
    for s in fsp.state_ids() {
        let exts = fsp.extensions(s);
        if !exts.is_empty() {
            let vars: Vec<&str> = exts.iter().map(|&v| fsp.var_name(v)).collect();
            out.push_str(&format!("ext {} {}\n", labels[s.index()], vars.join(" ")));
        }
    }
    for (from, label, to) in fsp.all_transitions() {
        let lname = match label {
            Label::Tau => "tau",
            Label::Act(a) => fsp.action_name(a),
        };
        out.push_str(&format!(
            "trans {} {} {}\n",
            labels[from.index()],
            lname,
            labels[to.index()]
        ));
    }
    out
}

/// Replaces whitespace in names so they survive the whitespace-separated
/// format.
fn sanitize(name: &str) -> String {
    name.split_whitespace().collect::<Vec<_>>().join("_")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_process() {
        let f = parse(
            "# a two state loop\nprocess loop\ntrans p a q\ntrans q b p\naccept p q\nstart p\n",
        )
        .unwrap();
        assert_eq!(f.name(), "loop");
        assert_eq!(f.num_states(), 2);
        assert_eq!(f.num_transitions(), 2);
        assert_eq!(f.accepting_states().len(), 2);
        assert_eq!(f.state_label(f.start()), "p");
    }

    #[test]
    fn parse_handles_tau_and_extensions() {
        let f = parse("trans p tau q\next q x y\n").unwrap();
        assert!(f.has_tau_transitions());
        let q = f.state_by_name("q").unwrap();
        assert_eq!(f.extensions(q).len(), 2);
        assert_eq!(f.num_vars(), 2);
    }

    #[test]
    fn parse_rejects_malformed_directives() {
        assert!(matches!(parse("trans p a\n"), Err(FspError::Parse { .. })));
        assert!(matches!(parse("start\n"), Err(FspError::Parse { .. })));
        assert!(matches!(parse("bogus x\n"), Err(FspError::Parse { .. })));
        assert!(matches!(parse("accept\n"), Err(FspError::Parse { .. })));
        assert!(matches!(parse("ext s\n"), Err(FspError::Parse { .. })));
        assert!(matches!(
            parse("process a b\n"),
            Err(FspError::Parse { .. })
        ));
        assert!(matches!(
            parse("trans p a q\nprocess late\n"),
            Err(FspError::Parse { .. })
        ));
    }

    #[test]
    fn parse_rejects_empty_input() {
        assert_eq!(parse("# only a comment\n"), Err(FspError::EmptyProcess));
        assert_eq!(parse(""), Err(FspError::EmptyProcess));
    }

    #[test]
    fn parse_error_reports_line_number() {
        let err = parse("trans p a q\ntrans broken\n").unwrap_err();
        match err {
            FspError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn round_trip_preserves_structure() {
        let original = parse(
            "process rt\nstate lonely\ntrans p a q\ntrans p tau q\ntrans q b p\naccept q\nstart p\n",
        )
        .unwrap();
        let text = to_text(&original);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.num_states(), original.num_states());
        assert_eq!(parsed.num_transitions(), original.num_transitions());
        assert_eq!(parsed.accepting_states().len(), 1);
        assert_eq!(
            parsed.state_label(parsed.start()),
            original.state_label(original.start())
        );
        assert!(parsed.state_by_name("lonely").is_some());
    }

    #[test]
    fn state_directive_declares_isolated_states() {
        let f = parse("state a b c\nstart b\n").unwrap();
        assert_eq!(f.num_states(), 3);
        assert_eq!(f.num_transitions(), 0);
        assert_eq!(f.state_label(f.start()), "b");
    }

    #[test]
    fn display_uses_text_format() {
        let f = parse("trans p a q\n").unwrap();
        let shown = f.to_string();
        assert!(shown.contains("trans p a q"));
        assert!(shown.starts_with("process"));
    }
}
