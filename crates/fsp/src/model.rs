//! Classification of processes into the FSP hierarchy of Table I / Fig. 1a.
//!
//! The paper distinguishes ten model classes:
//!
//! * **general** — any FSP (Definition 2.1.1);
//! * **observable** — no τ-transitions;
//! * **standard** — `V = {x}`: every state is either accepting (`E(q) =
//!   {x}`) or non-accepting (`E(q) = ∅`), i.e. a classical NFA with ε-moves;
//! * **deterministic** — observable, with *exactly one* transition per state
//!   per action of `Σ`;
//! * **restricted** — standard with *all* states accepting;
//! * **restricted observable** — restricted and observable;
//! * **r.o.u.** — restricted, observable and unary (`|Σ| = 1`);
//! * **standard observable** and **s.o.u.** — analogous;
//! * **finite tree** — restricted, and the underlying directed graph is a
//!   tree rooted at `p0`.

use std::fmt;

use crate::process::Fsp;
use crate::state::StateId;
use crate::{Label, ACCEPT_VAR};

/// The model classes of Table I, ordered roughly from most general to most
/// specific.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum ModelClass {
    /// Any FSP (Definition 2.1.1).
    General,
    /// No τ-transitions.
    Observable,
    /// `V ⊆ {x}`: a classical NFA with ε-moves.
    Standard,
    /// Standard and observable: a classical NFA without ε-moves.
    StandardObservable,
    /// Standard, observable and unary (`|Σ| = 1`).
    StandardObservableUnary,
    /// Observable with exactly one transition per state per action.
    Deterministic,
    /// Standard with every state accepting.
    Restricted,
    /// Restricted and observable.
    RestrictedObservable,
    /// Restricted, observable and unary (`|Σ| = 1`).
    RestrictedObservableUnary,
    /// Restricted and the underlying graph is a tree rooted at `p0`.
    FiniteTree,
}

impl fmt::Display for ModelClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ModelClass::General => "general",
            ModelClass::Observable => "observable",
            ModelClass::Standard => "standard",
            ModelClass::StandardObservable => "standard observable",
            ModelClass::StandardObservableUnary => "standard observable unary (s.o.u.)",
            ModelClass::Deterministic => "deterministic",
            ModelClass::Restricted => "restricted",
            ModelClass::RestrictedObservable => "restricted observable",
            ModelClass::RestrictedObservableUnary => "restricted observable unary (r.o.u.)",
            ModelClass::FiniteTree => "finite tree",
        };
        f.write_str(name)
    }
}

/// Structural profile of a process: which defining properties of the FSP
/// hierarchy it satisfies.
///
/// Obtained with [`profile`] or [`Fsp::profile`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ModelProfile {
    /// No τ-transitions.
    pub observable: bool,
    /// `V ⊆ {x}` (every extension set is `∅` or `{x}`).
    pub standard: bool,
    /// Standard with every state accepting.
    pub restricted: bool,
    /// Observable with exactly one transition per state per action.
    pub deterministic: bool,
    /// `|Σ| = 1`.
    pub unary: bool,
    /// Restricted and the underlying directed graph is a tree rooted at `p0`
    /// covering all states.
    pub finite_tree: bool,
}

impl ModelProfile {
    /// All model classes of Table I that the process belongs to, from most
    /// general to most specific.
    #[must_use]
    pub fn classes(&self) -> Vec<ModelClass> {
        let mut out = vec![ModelClass::General];
        if self.observable {
            out.push(ModelClass::Observable);
        }
        if self.standard {
            out.push(ModelClass::Standard);
        }
        if self.standard && self.observable {
            out.push(ModelClass::StandardObservable);
        }
        if self.standard && self.observable && self.unary {
            out.push(ModelClass::StandardObservableUnary);
        }
        if self.deterministic {
            out.push(ModelClass::Deterministic);
        }
        if self.restricted {
            out.push(ModelClass::Restricted);
        }
        if self.restricted && self.observable {
            out.push(ModelClass::RestrictedObservable);
        }
        if self.restricted && self.observable && self.unary {
            out.push(ModelClass::RestrictedObservableUnary);
        }
        if self.finite_tree {
            out.push(ModelClass::FiniteTree);
        }
        out
    }

    /// Returns `true` iff the process belongs to `class`.
    #[must_use]
    pub fn is(&self, class: ModelClass) -> bool {
        self.classes().contains(&class)
    }
}

/// Returns `true` iff the process has no τ-transitions (the *observable*
/// model of Milner 1984).
#[must_use]
pub fn is_observable(fsp: &Fsp) -> bool {
    !fsp.has_tau_transitions()
}

/// Returns `true` iff the process is *standard*: `V ⊆ {x}`, i.e. it can be
/// viewed as a classical NFA with ε-moves where `E(q) = {x}` means accepting
/// and `E(q) = ∅` means non-accepting.
#[must_use]
pub fn is_standard(fsp: &Fsp) -> bool {
    match fsp.num_vars() {
        0 => true,
        1 => fsp.var_names() == vec![ACCEPT_VAR],
        _ => false,
    }
}

/// Returns `true` iff the process is *restricted*: standard with every state
/// accepting (so the only feature distinguishing states is the absence of
/// certain transitions).
#[must_use]
pub fn is_restricted(fsp: &Fsp) -> bool {
    is_standard(fsp) && fsp.state_ids().all(|s| fsp.is_accepting(s))
}

/// Returns `true` iff the process is *deterministic*: observable and with
/// exactly one transition per state for each action of `Σ`.
#[must_use]
pub fn is_deterministic(fsp: &Fsp) -> bool {
    if !is_observable(fsp) {
        return false;
    }
    let k = fsp.num_actions();
    for s in fsp.state_ids() {
        if fsp.out_degree(s) != k {
            return false;
        }
        // Transitions are sorted; exactly one per action means k distinct labels.
        let mut labels: Vec<Label> = fsp.transitions(s).iter().map(|t| t.label).collect();
        labels.dedup();
        if labels.len() != k {
            return false;
        }
    }
    true
}

/// Returns `true` iff the action alphabet is unary (`|Σ| = 1`).
#[must_use]
pub fn is_unary(fsp: &Fsp) -> bool {
    fsp.num_actions() == 1
}

/// Returns `true` iff the process is *deterministic modulo missing
/// transitions*: observable and with **at most** one transition per state per
/// action.  This is the usual notion of a partial DFA; useful for the
/// language-equivalence fast paths.
#[must_use]
pub fn is_action_deterministic(fsp: &Fsp) -> bool {
    if !is_observable(fsp) {
        return false;
    }
    for s in fsp.state_ids() {
        let mut labels: Vec<Label> = fsp.transitions(s).iter().map(|t| t.label).collect();
        let before = labels.len();
        labels.dedup();
        if labels.len() != before {
            return false;
        }
    }
    true
}

/// Returns `true` iff the process is a *finite tree*: restricted and its
/// underlying directed graph is a tree rooted at the start state covering
/// every state (each non-root state has exactly one incoming transition, the
/// root has none, and there are no cycles).
#[must_use]
pub fn is_finite_tree(fsp: &Fsp) -> bool {
    if !is_restricted(fsp) {
        return false;
    }
    let n = fsp.num_states();
    let mut indegree = vec![0usize; n];
    for (_, _, to) in fsp.all_transitions() {
        indegree[to.index()] += 1;
    }
    if indegree[fsp.start().index()] != 0 {
        return false;
    }
    if fsp.num_transitions() != n.saturating_sub(1) {
        return false;
    }
    for (i, &d) in indegree.iter().enumerate() {
        let is_root = i == fsp.start().index();
        if !is_root && d != 1 {
            return false;
        }
    }
    // In-degrees are correct and |Δ| = n-1: the graph is a forest of
    // functional parents; check every state is reachable from the root.
    let reachable = crate::reach::reachable_states(fsp, fsp.start());
    reachable.len() == n
}

/// Computes the full structural profile of a process.
#[must_use]
pub fn profile(fsp: &Fsp) -> ModelProfile {
    ModelProfile {
        observable: is_observable(fsp),
        standard: is_standard(fsp),
        restricted: is_restricted(fsp),
        deterministic: is_deterministic(fsp),
        unary: is_unary(fsp),
        finite_tree: is_finite_tree(fsp),
    }
}

/// Returns `true` iff `state` is a dead state (no outgoing transitions), the
/// notion used in Theorem 4.1(c).
#[must_use]
pub fn is_dead_state(fsp: &Fsp, state: StateId) -> bool {
    fsp.is_dead(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fsp;

    fn build(edges: &[(&str, &str, &str)], accepting: &[&str], all_accept: bool) -> Fsp {
        let mut b = Fsp::builder("t");
        for (f, l, t) in edges {
            b.transition(f, l, t);
        }
        for name in accepting {
            let s = b.state(name);
            b.mark_accepting(s);
        }
        if all_accept {
            b.mark_all_accepting();
        }
        b.build().unwrap()
    }

    #[test]
    fn observable_iff_no_tau() {
        let with_tau = build(&[("p", "tau", "q")], &[], false);
        let without = build(&[("p", "a", "q")], &[], false);
        assert!(!is_observable(&with_tau));
        assert!(is_observable(&without));
    }

    #[test]
    fn standard_requires_only_x() {
        let std = build(&[("p", "a", "q")], &["q"], false);
        assert!(is_standard(&std));
        let mut b = Fsp::builder("t");
        let p = b.state("p");
        b.add_extension(p, "y");
        let nonstd = b.build().unwrap();
        assert!(!is_standard(&nonstd));
    }

    #[test]
    fn restricted_requires_all_accepting() {
        let restricted = build(&[("p", "a", "q")], &[], true);
        assert!(is_restricted(&restricted));
        let partial = build(&[("p", "a", "q")], &["q"], false);
        assert!(!is_restricted(&partial));
    }

    #[test]
    fn deterministic_requires_exactly_one_per_action() {
        // Complete one-action loop: deterministic.
        let det = build(&[("p", "a", "q"), ("q", "a", "p")], &[], true);
        assert!(is_deterministic(&det));
        // Missing transition for q: not deterministic (but action-deterministic).
        let partial = build(&[("p", "a", "q")], &[], true);
        assert!(!is_deterministic(&partial));
        assert!(is_action_deterministic(&partial));
        // Nondeterministic on a.
        let nondet = build(&[("p", "a", "q"), ("p", "a", "p")], &[], true);
        assert!(!is_deterministic(&nondet));
        assert!(!is_action_deterministic(&nondet));
    }

    #[test]
    fn unary_counts_alphabet() {
        let unary = build(&[("p", "a", "q")], &[], false);
        assert!(is_unary(&unary));
        let binary = build(&[("p", "a", "q"), ("q", "b", "p")], &[], false);
        assert!(!is_unary(&binary));
    }

    #[test]
    fn finite_tree_detection() {
        let tree = build(
            &[("r", "a", "u"), ("r", "b", "v"), ("u", "c", "w")],
            &[],
            true,
        );
        assert!(is_finite_tree(&tree));
        // A cycle is not a tree.
        let cyc = build(&[("p", "a", "q"), ("q", "a", "p")], &[], true);
        assert!(!is_finite_tree(&cyc));
        // A DAG with two parents is not a tree.
        let dag = build(
            &[("r", "a", "u"), ("r", "b", "v"), ("u", "c", "v")],
            &[],
            true,
        );
        assert!(!is_finite_tree(&dag));
        // Not restricted => not a finite tree in the paper's sense.
        let not_restricted = build(&[("r", "a", "u")], &[], false);
        assert!(!is_finite_tree(&not_restricted));
    }

    #[test]
    fn profile_and_classes() {
        let rou = build(&[("p", "a", "q"), ("q", "a", "q")], &[], true);
        let prof = profile(&rou);
        assert!(prof.observable && prof.restricted && prof.unary);
        assert!(prof.is(ModelClass::RestrictedObservableUnary));
        assert!(prof.is(ModelClass::General));
        assert!(!prof.is(ModelClass::FiniteTree));
        let classes = prof.classes();
        assert_eq!(classes[0], ModelClass::General);
        assert!(classes.contains(&ModelClass::RestrictedObservable));
    }

    #[test]
    fn display_names() {
        assert_eq!(
            ModelClass::RestrictedObservableUnary.to_string(),
            "restricted observable unary (r.o.u.)"
        );
        assert_eq!(ModelClass::General.to_string(), "general");
    }

    #[test]
    fn dead_state_helper() {
        let f = build(&[("p", "a", "q")], &[], false);
        let q = f.state_by_name("q").unwrap();
        let p = f.state_by_name("p").unwrap();
        assert!(is_dead_state(&f, q));
        assert!(!is_dead_state(&f, p));
    }
}
