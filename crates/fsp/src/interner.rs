use std::collections::HashMap;

/// A small string interner mapping symbol names to dense `u32` indices.
///
/// Used for both the action alphabet `Σ` and the variable set `V` of an FSP.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct Interner {
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

impl Interner {
    pub(crate) fn new() -> Self {
        Interner::default()
    }

    /// Interns `name`, returning its dense index.  Idempotent.
    pub(crate) fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("interner overflow");
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned name.
    pub(crate) fn get(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Resolves an index back to its name.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub(crate) fn resolve(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    pub(crate) fn len(&self) -> usize {
        self.names.len()
    }

    #[allow(dead_code)] // exercised by unit tests; kept for API symmetry with len()
    pub(crate) fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }

    /// Heap bytes held by the interner, measured from live container
    /// capacities (string storage is counted once per table).
    pub(crate) fn resident_bytes(&self) -> usize {
        let strings: usize = self.names.iter().map(String::capacity).sum();
        let keys: usize = self.by_name.keys().map(String::capacity).sum();
        self.names.capacity() * std::mem::size_of::<String>()
            + strings
            + keys
            + self.by_name.capacity() * (std::mem::size_of::<(String, u32)>() + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_ne!(a, b);
        assert_eq!(i.intern("a"), a);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let a = i.intern("coin");
        assert_eq!(i.resolve(a), "coin");
        assert_eq!(i.get("coin"), Some(a));
        assert_eq!(i.get("tea"), None);
    }

    #[test]
    fn iteration_preserves_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        i.intern("c");
        let names: Vec<&str> = i.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert!(!i.is_empty());
    }
}
