//! Graphviz (DOT) export for visual inspection of processes.

use crate::process::Fsp;
use crate::Label;

/// Renders a process as a Graphviz `digraph`.
///
/// * the start state is drawn with a double border,
/// * accepting states (extension `x`) are filled,
/// * non-empty extension sets are appended to the state label,
/// * τ-transitions are drawn dashed.
///
/// ```
/// use ccs_fsp::{dot, format};
/// let fsp = format::parse("trans p a q\ntrans q tau p\naccept q\n")?;
/// let rendered = dot::to_dot(&fsp);
/// assert!(rendered.starts_with("digraph"));
/// assert!(rendered.contains("style=dashed"));
/// # Ok::<(), ccs_fsp::FspError>(())
/// ```
#[must_use]
pub fn to_dot(fsp: &Fsp) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}\" {{\n", escape(fsp.name())));
    out.push_str("  rankdir=LR;\n  node [shape=circle];\n");
    for s in fsp.state_ids() {
        let mut label = fsp.state_label(s);
        let exts = fsp.extensions(s);
        if !exts.is_empty() {
            let vars: Vec<&str> = exts.iter().map(|&v| fsp.var_name(v)).collect();
            label.push_str(&format!("\\n{{{}}}", vars.join(",")));
        }
        let mut attrs = vec![format!("label=\"{}\"", escape(&label))];
        if s == fsp.start() {
            attrs.push("peripheries=2".to_owned());
        }
        if fsp.is_accepting(s) {
            attrs.push("style=filled".to_owned());
            attrs.push("fillcolor=lightgrey".to_owned());
        }
        out.push_str(&format!("  n{} [{}];\n", s.index(), attrs.join(", ")));
    }
    for (from, label, to) in fsp.all_transitions() {
        match label {
            Label::Tau => out.push_str(&format!(
                "  n{} -> n{} [label=\"τ\", style=dashed];\n",
                from.index(),
                to.index()
            )),
            Label::Act(a) => out.push_str(&format!(
                "  n{} -> n{} [label=\"{}\"];\n",
                from.index(),
                to.index(),
                escape(fsp.action_name(a))
            )),
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format;

    #[test]
    fn dot_output_mentions_every_state_and_edge() {
        let f = format::parse("trans p a q\ntrans q b r\ntrans r tau p\naccept r\n").unwrap();
        let d = to_dot(&f);
        assert!(d.contains("digraph"));
        assert_eq!(d.matches(" -> ").count(), 3);
        assert!(d.contains("label=\"p\""));
        assert!(d.contains("peripheries=2"));
        assert!(d.contains("fillcolor=lightgrey"));
        assert!(d.contains("style=dashed"));
        assert!(d.ends_with("}\n"));
    }

    #[test]
    fn dot_escapes_quotes() {
        let mut b = crate::Fsp::builder("quo\"te");
        let s = b.state("st\"ate");
        b.set_start(s);
        let f = b.build().unwrap();
        let d = to_dot(&f);
        assert!(d.contains("quo\\\"te"));
        assert!(d.contains("st\\\"ate"));
    }

    #[test]
    fn extensions_appear_in_labels() {
        let f = format::parse("ext p x y\n").unwrap();
        let d = to_dot(&f);
        assert!(d.contains("{x,y}"));
    }
}
