use std::collections::BTreeSet;
use std::fmt;

use crate::builder::FspBuilder;
use crate::interner::Interner;
use crate::label::{ActionId, Label, VarId};
use crate::model::ModelProfile;
use crate::state::StateId;
use crate::ACCEPT_VAR;

/// A list of transitions as `(from, label, to)` triples — the currency of
/// [`Fsp::apply_edge_delta`] and the session-level mutation path.
pub type EdgeBatch = Vec<(StateId, Label, StateId)>;

/// A single transition `(label, target)` out of some source state.
///
/// The source state is implicit: transitions are stored per state and
/// retrieved with [`Fsp::transitions`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Transition {
    /// The action labelling the transition (`τ` or an observable action).
    pub label: Label,
    /// The destination state.
    pub target: StateId,
}

#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub(crate) struct StateData {
    pub(crate) name: Option<String>,
    pub(crate) extensions: BTreeSet<VarId>,
    pub(crate) transitions: Vec<Transition>,
}

/// A finite state process `(K, p0, Σ, Δ, V, E)` (Definition 2.1.1).
///
/// Construct processes with [`Fsp::builder`] / [`FspBuilder`], by parsing the
/// [`format`](crate::format) text format, or with the combinators in
/// [`ops`](crate::ops).
///
/// States are dense indices `0..num_states()`; per-state transition lists are
/// kept sorted and duplicate-free, so the process is a faithful representation
/// of the transition *relation* `Δ`.
#[derive(Clone, PartialEq, Eq)]
pub struct Fsp {
    pub(crate) name: String,
    pub(crate) start: StateId,
    pub(crate) states: Vec<StateData>,
    pub(crate) actions: Interner,
    pub(crate) vars: Interner,
    pub(crate) num_transitions: usize,
}

impl Fsp {
    /// Starts building a new process with the given name.
    ///
    /// ```
    /// use ccs_fsp::Fsp;
    /// let mut b = Fsp::builder("example");
    /// let s = b.state("s0");
    /// b.set_start(s);
    /// let fsp = b.build()?;
    /// assert_eq!(fsp.name(), "example");
    /// # Ok::<(), ccs_fsp::FspError>(())
    /// ```
    #[must_use]
    pub fn builder(name: &str) -> FspBuilder {
        FspBuilder::new(name)
    }

    pub(crate) fn from_parts(
        name: String,
        start: StateId,
        mut states: Vec<StateData>,
        actions: Interner,
        vars: Interner,
    ) -> Self {
        let mut num_transitions = 0;
        for st in &mut states {
            st.transitions.sort_unstable();
            st.transitions.dedup();
            num_transitions += st.transitions.len();
        }
        Fsp {
            name,
            start,
            states,
            actions,
            vars,
            num_transitions,
        }
    }

    /// The name given to the process at construction time.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of states `|K|`.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// The number of transitions `|Δ|`.
    #[must_use]
    pub fn num_transitions(&self) -> usize {
        self.num_transitions
    }

    /// The number of observable actions `|Σ|` (never counts `τ`).
    #[must_use]
    pub fn num_actions(&self) -> usize {
        self.actions.len()
    }

    /// The number of variables `|V|`.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Heap bytes held by the process, measured from live container
    /// capacities: per-state transition lists, names and extension sets,
    /// plus the two interners.  Allocator slack and per-node overheads are
    /// excluded, so this is a measured lower bound, not allocator truth.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        let per_state: usize = self
            .states
            .iter()
            .map(|st| {
                st.name.as_ref().map_or(0, String::capacity)
                    + st.extensions.len() * std::mem::size_of::<VarId>()
                    + st.transitions.capacity() * std::mem::size_of::<Transition>()
            })
            .sum();
        self.name.capacity()
            + self.states.capacity() * std::mem::size_of::<StateData>()
            + per_state
            + self.actions.resident_bytes()
            + self.vars.resident_bytes()
    }

    /// The start state `p0`.
    #[must_use]
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Iterates over all state identifiers in index order.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> + '_ {
        (0..self.states.len()).map(StateId::from_index)
    }

    /// Iterates over the observable action alphabet in index order.
    pub fn action_ids(&self) -> impl Iterator<Item = ActionId> + '_ {
        (0..self.actions.len()).map(ActionId::from_index)
    }

    /// Iterates over the variable set `V` in index order.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.vars.len()).map(VarId::from_index)
    }

    /// Returns `true` iff `state` is a state of this process.
    #[must_use]
    pub fn contains_state(&self, state: StateId) -> bool {
        state.index() < self.states.len()
    }

    /// The optional human-readable name of a state.
    ///
    /// # Panics
    ///
    /// Panics if `state` does not belong to this process.
    #[must_use]
    pub fn state_name(&self, state: StateId) -> Option<&str> {
        self.states[state.index()].name.as_deref()
    }

    /// A printable label for a state: its name if it has one, otherwise its
    /// index rendered as `s<i>`.
    #[must_use]
    pub fn state_label(&self, state: StateId) -> String {
        match self.state_name(state) {
            Some(n) => n.to_owned(),
            None => format!("{state}"),
        }
    }

    /// Looks up a state by its human-readable name.
    #[must_use]
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.states
            .iter()
            .position(|s| s.name.as_deref() == Some(name))
            .map(StateId::from_index)
    }

    /// The transitions out of `state`, sorted by `(label, target)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` does not belong to this process.
    #[must_use]
    pub fn transitions(&self, state: StateId) -> &[Transition] {
        &self.states[state.index()].transitions
    }

    /// The out-degree of `state` (number of outgoing transitions).
    #[must_use]
    pub fn out_degree(&self, state: StateId) -> usize {
        self.transitions(state).len()
    }

    /// Iterates over the `Δ(q, a)` successor set: states reachable from
    /// `state` by one transition labelled `label`.
    pub fn successors(&self, state: StateId, label: Label) -> impl Iterator<Item = StateId> + '_ {
        self.transitions(state)
            .iter()
            .filter(move |t| t.label == label)
            .map(|t| t.target)
    }

    /// Returns `true` iff the transition `(from, label, to)` is in `Δ`.
    #[must_use]
    pub fn has_transition(&self, from: StateId, label: Label, to: StateId) -> bool {
        self.transitions(from)
            .binary_search(&Transition { label, target: to })
            .is_ok()
    }

    /// The set of labels enabled at `state` (labels with at least one
    /// outgoing transition), sorted and duplicate-free.
    #[must_use]
    pub fn enabled_labels(&self, state: StateId) -> Vec<Label> {
        let mut labels: Vec<Label> = self.transitions(state).iter().map(|t| t.label).collect();
        labels.dedup();
        labels
    }

    /// The set of *observable* actions enabled at `state` by a single
    /// transition (not considering τ-moves), sorted and duplicate-free.
    #[must_use]
    pub fn enabled_actions(&self, state: StateId) -> Vec<ActionId> {
        let mut acts: Vec<ActionId> = self
            .transitions(state)
            .iter()
            .filter_map(|t| t.label.action())
            .collect();
        acts.dedup();
        acts
    }

    /// Returns `true` iff `state` has no outgoing transitions (a *dead*
    /// state in the terminology of Theorem 4.1(c)).
    #[must_use]
    pub fn is_dead(&self, state: StateId) -> bool {
        self.transitions(state).is_empty()
    }

    /// The extension set `E(q)` of a state, as a sorted set of variables.
    ///
    /// # Panics
    ///
    /// Panics if `state` does not belong to this process.
    #[must_use]
    pub fn extensions(&self, state: StateId) -> &BTreeSet<VarId> {
        &self.states[state.index()].extensions
    }

    /// Returns `true` iff two states have identical extension sets
    /// (`E(p) = E(q)`), the base case of every equivalence in the paper.
    #[must_use]
    pub fn same_extensions(&self, p: StateId, q: StateId) -> bool {
        self.extensions(p) == self.extensions(q)
    }

    /// Returns `true` iff `state` carries the conventional acceptance
    /// variable [`ACCEPT_VAR`](crate::ACCEPT_VAR) (`x`).
    ///
    /// In the standard model this is exactly "the state is an accept state of
    /// the underlying NFA".
    #[must_use]
    pub fn is_accepting(&self, state: StateId) -> bool {
        match self.vars.get(ACCEPT_VAR) {
            Some(id) => self
                .extensions(state)
                .contains(&VarId::from_index(id as usize)),
            None => false,
        }
    }

    /// All accepting states (states whose extensions contain `x`).
    #[must_use]
    pub fn accepting_states(&self) -> Vec<StateId> {
        self.state_ids().filter(|&s| self.is_accepting(s)).collect()
    }

    /// The name of an observable action.
    ///
    /// # Panics
    ///
    /// Panics if `action` does not belong to this process.
    #[must_use]
    pub fn action_name(&self, action: ActionId) -> &str {
        self.actions.resolve(action.index() as u32)
    }

    /// Looks up an observable action by name.
    #[must_use]
    pub fn action_id(&self, name: &str) -> Option<ActionId> {
        self.actions
            .get(name)
            .map(|id| ActionId::from_index(id as usize))
    }

    /// A printable label name: the action name, or `"tau"` for `τ`.
    #[must_use]
    pub fn label_name(&self, label: Label) -> &str {
        match label {
            Label::Tau => "tau",
            Label::Act(a) => self.action_name(a),
        }
    }

    /// The name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this process.
    #[must_use]
    pub fn var_name(&self, var: VarId) -> &str {
        self.vars.resolve(var.index() as u32)
    }

    /// Looks up a variable by name.
    #[must_use]
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.vars.get(name).map(|id| VarId::from_index(id as usize))
    }

    /// Names of all observable actions, in index order.
    #[must_use]
    pub fn action_names(&self) -> Vec<&str> {
        self.actions.iter().map(|(_, n)| n).collect()
    }

    /// Names of all variables, in index order.
    #[must_use]
    pub fn var_names(&self) -> Vec<&str> {
        self.vars.iter().map(|(_, n)| n).collect()
    }

    /// Returns `true` iff the process has at least one τ-transition.
    #[must_use]
    pub fn has_tau_transitions(&self) -> bool {
        self.states
            .iter()
            .any(|s| s.transitions.iter().any(|t| t.label.is_tau()))
    }

    /// Iterates over every transition of the process as `(source, label,
    /// target)` triples.
    pub fn all_transitions(&self) -> impl Iterator<Item = (StateId, Label, StateId)> + '_ {
        self.state_ids().flat_map(move |s| {
            self.transitions(s)
                .iter()
                .map(move |t| (s, t.label, t.target))
        })
    }

    /// Classifies the process into the FSP hierarchy of Table I / Fig. 1a.
    ///
    /// Convenience wrapper for [`model::profile`](crate::model::profile).
    #[must_use]
    pub fn profile(&self) -> ModelProfile {
        crate::model::profile(self)
    }

    /// Applies an edge batch in place — `removals` first, then `additions`,
    /// so a transition named on both sides ends up present — and returns
    /// the *effective* edits: the transitions genuinely inserted and
    /// genuinely deleted (duplicates, already-present additions and absent
    /// removals are silent no-ops).
    ///
    /// The per-state sorted/duplicate-free invariant and the transition
    /// count are maintained; states, actions and variables are fixed — a
    /// mutation can only rewire `Δ` over the existing alphabet, which is
    /// what keeps downstream caches (τ-closures, saturated views) patchable
    /// instead of disposable.
    ///
    /// # Panics
    ///
    /// Panics if any edge names an out-of-range state or action (the
    /// process is untouched in that case).
    pub fn apply_edge_delta(
        &mut self,
        additions: &[(StateId, Label, StateId)],
        removals: &[(StateId, Label, StateId)],
    ) -> (EdgeBatch, EdgeBatch) {
        for &(from, label, to) in additions.iter().chain(removals) {
            assert!(self.contains_state(from), "source state out of range");
            assert!(self.contains_state(to), "target state out of range");
            if let Label::Act(a) = label {
                assert!(a.index() < self.actions.len(), "action out of range");
            }
        }
        let mut removed = Vec::new();
        for &(from, label, to) in removals {
            if additions.contains(&(from, label, to)) {
                // Re-added by the same batch: net no-op under removals-first.
                continue;
            }
            let list = &mut self.states[from.index()].transitions;
            if let Ok(pos) = list.binary_search(&Transition { label, target: to }) {
                list.remove(pos);
                self.num_transitions -= 1;
                removed.push((from, label, to));
            }
        }
        let mut added = Vec::new();
        for &(from, label, to) in additions {
            let list = &mut self.states[from.index()].transitions;
            if let Err(pos) = list.binary_search(&Transition { label, target: to }) {
                list.insert(pos, Transition { label, target: to });
                self.num_transitions += 1;
                added.push((from, label, to));
            }
        }
        (added, removed)
    }
}

impl fmt::Debug for Fsp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fsp")
            .field("name", &self.name)
            .field("states", &self.num_states())
            .field("transitions", &self.num_transitions())
            .field("actions", &self.action_names())
            .field("vars", &self.var_names())
            .field("start", &self.start)
            .finish()
    }
}

impl fmt::Display for Fsp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::format::to_text(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Label;

    fn sample() -> Fsp {
        let mut b = Fsp::builder("sample");
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        let s2 = b.state("s2");
        let a = b.action("a");
        let c = b.action("b");
        b.set_start(s0);
        b.add_transition(s0, Label::Act(a), s1);
        b.add_transition(s0, Label::Act(a), s2);
        b.add_transition(s1, Label::Tau, s2);
        b.add_transition(s1, Label::Act(c), s1);
        b.mark_accepting(s2);
        b.build().unwrap()
    }

    #[test]
    fn counts_and_lookup() {
        let f = sample();
        assert_eq!(f.num_states(), 3);
        assert_eq!(f.num_transitions(), 4);
        assert_eq!(f.num_actions(), 2);
        assert_eq!(f.num_vars(), 1);
        assert_eq!(f.name(), "sample");
        assert_eq!(f.state_by_name("s1"), Some(StateId::from_index(1)));
        assert_eq!(f.state_by_name("zzz"), None);
        assert_eq!(f.action_id("a"), Some(ActionId::from_index(0)));
        assert_eq!(f.action_id("zzz"), None);
        assert_eq!(f.action_names(), vec!["a", "b"]);
        assert_eq!(f.var_names(), vec![ACCEPT_VAR]);
    }

    #[test]
    fn transitions_are_sorted_and_deduped() {
        let mut b = Fsp::builder("dup");
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        let a = b.action("a");
        b.set_start(s0);
        b.add_transition(s0, Label::Act(a), s1);
        b.add_transition(s0, Label::Act(a), s1);
        b.add_transition(s0, Label::Tau, s1);
        let f = b.build().unwrap();
        assert_eq!(f.num_transitions(), 2);
        assert_eq!(f.transitions(s0)[0].label, Label::Tau);
    }

    #[test]
    fn successor_queries() {
        let f = sample();
        let s0 = f.state_by_name("s0").unwrap();
        let s1 = f.state_by_name("s1").unwrap();
        let s2 = f.state_by_name("s2").unwrap();
        let a = f.action_id("a").unwrap();
        let succs: Vec<StateId> = f.successors(s0, Label::Act(a)).collect();
        assert_eq!(succs, vec![s1, s2]);
        assert!(f.has_transition(s1, Label::Tau, s2));
        assert!(!f.has_transition(s2, Label::Tau, s1));
        assert!(f.is_dead(s2));
        assert!(!f.is_dead(s0));
        assert_eq!(f.out_degree(s0), 2);
    }

    #[test]
    fn enabled_sets() {
        let f = sample();
        let s1 = f.state_by_name("s1").unwrap();
        let b = f.action_id("b").unwrap();
        assert_eq!(f.enabled_actions(s1), vec![b]);
        assert_eq!(f.enabled_labels(s1).len(), 2);
        assert!(f.enabled_labels(s1).contains(&Label::Tau));
    }

    #[test]
    fn extensions_and_acceptance() {
        let f = sample();
        let s0 = f.state_by_name("s0").unwrap();
        let s2 = f.state_by_name("s2").unwrap();
        assert!(f.is_accepting(s2));
        assert!(!f.is_accepting(s0));
        assert_eq!(f.accepting_states(), vec![s2]);
        assert!(!f.same_extensions(s0, s2));
        assert!(f.same_extensions(s0, f.state_by_name("s1").unwrap()));
    }

    #[test]
    fn acceptance_without_accept_var_is_false() {
        let mut b = Fsp::builder("no-x");
        let s = b.state("s");
        b.set_start(s);
        let f = b.build().unwrap();
        assert!(!f.is_accepting(s));
        assert!(f.accepting_states().is_empty());
    }

    #[test]
    fn all_transitions_enumerates_every_edge() {
        let f = sample();
        assert_eq!(f.all_transitions().count(), f.num_transitions());
    }

    #[test]
    fn tau_detection() {
        let f = sample();
        assert!(f.has_tau_transitions());
        let mut b = Fsp::builder("obs");
        let s = b.state("s");
        let a = b.action("a");
        b.set_start(s);
        b.add_transition(s, Label::Act(a), s);
        assert!(!b.build().unwrap().has_tau_transitions());
    }

    #[test]
    fn debug_output_is_nonempty() {
        let f = sample();
        let dbg = format!("{f:?}");
        assert!(dbg.contains("sample"));
        assert!(dbg.contains("states"));
    }

    #[test]
    fn apply_edge_delta_reports_effective_edits() {
        let mut f = sample();
        let s0 = f.state_by_name("s0").unwrap();
        let s1 = f.state_by_name("s1").unwrap();
        let s2 = f.state_by_name("s2").unwrap();
        let a = f.action_id("a").unwrap();
        let before = f.num_transitions();
        let (added, removed) = f.apply_edge_delta(
            &[
                (s2, Label::Act(a), s0), // genuinely new
                (s0, Label::Act(a), s1), // already present
            ],
            &[
                (s1, Label::Tau, s2), // genuinely gone
                (s2, Label::Tau, s0), // was never there
            ],
        );
        assert_eq!(added, vec![(s2, Label::Act(a), s0)]);
        assert_eq!(removed, vec![(s1, Label::Tau, s2)]);
        assert_eq!(f.num_transitions(), before);
        assert!(f.has_transition(s2, Label::Act(a), s0));
        assert!(!f.has_transition(s1, Label::Tau, s2));
        // Sorted/dedup invariant survives the in-place splices.
        for s in f.state_ids() {
            let ts = f.transitions(s);
            assert!(ts.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn apply_edge_delta_lets_additions_win_over_removals() {
        let mut f = sample();
        let s0 = f.state_by_name("s0").unwrap();
        let s1 = f.state_by_name("s1").unwrap();
        let a = f.action_id("a").unwrap();
        let edge = (s0, Label::Act(a), s1);
        let (added, removed) = f.apply_edge_delta(&[edge], &[edge]);
        assert!(added.is_empty());
        assert!(removed.is_empty());
        assert!(f.has_transition(s0, Label::Act(a), s1));
    }

    #[test]
    #[should_panic(expected = "target state out of range")]
    fn apply_edge_delta_checks_state_ranges() {
        let mut f = sample();
        let s0 = f.state_by_name("s0").unwrap();
        f.apply_edge_delta(&[(s0, Label::Tau, StateId::from_index(99))], &[]);
    }

    #[test]
    fn state_labels() {
        let f = sample();
        assert_eq!(f.state_label(StateId::from_index(0)), "s0");
        let mut b = Fsp::builder("anon");
        let s = b.fresh_state();
        b.set_start(s);
        let f = b.build().unwrap();
        assert_eq!(f.state_label(s), "s0");
        assert_eq!(f.state_name(s), None);
    }
}
