//! Finite State Processes (FSPs) — the process model of Kanellakis & Smolka,
//! *"CCS Expressions, Finite State Processes, and Three Problems of
//! Equivalence"* (Definition 2.1.1).
//!
//! An FSP is a sextuple `(K, p0, Σ, Δ, V, E)`:
//!
//! * `K` — a finite set of states,
//! * `p0 ∈ K` — the start state,
//! * `Σ` — a finite set of observable *actions*, plus the distinguished
//!   unobservable action `τ`,
//! * `Δ ⊆ K × (Σ ∪ {τ}) × K` — the transition relation,
//! * `V` — a finite set of *variables* (acceptance flavours),
//! * `E ⊆ K × V` — the extension relation labelling states with variables.
//!
//! An FSP is exactly a nondeterministic finite automaton with ε-moves (here
//! written `τ`) whose states carry sets of variables instead of a single
//! accept bit.  The special variable `x` recovers the classical notion of
//! acceptance: a *standard* FSP uses `V = {x}` and a state is accepting iff
//! its extension set is `{x}` (see [`Fsp::is_accepting`]).
//!
//! # Quick example
//!
//! ```
//! use ccs_fsp::{Fsp, Label};
//!
//! // A tiny vending machine: insert a coin, then choose tea or coffee.
//! let mut b = Fsp::builder("vending");
//! let idle = b.state("idle");
//! let paid = b.state("paid");
//! let done = b.state("done");
//! let coin = b.action("coin");
//! let tea = b.action("tea");
//! let coffee = b.action("coffee");
//! b.set_start(idle);
//! b.add_transition(idle, Label::Act(coin), paid);
//! b.add_transition(paid, Label::Act(tea), done);
//! b.add_transition(paid, Label::Act(coffee), done);
//! b.mark_accepting(done);
//! let fsp = b.build()?;
//!
//! assert_eq!(fsp.num_states(), 3);
//! assert_eq!(fsp.num_transitions(), 3);
//! assert!(fsp.profile().observable);
//! # Ok::<(), ccs_fsp::FspError>(())
//! ```
//!
//! # Modules
//!
//! * [`builder`] — incremental construction of processes.
//! * [`model`] — classification into the FSP hierarchy of the paper's
//!   Table I / Fig. 1a (general, observable, standard, restricted, r.o.u.,
//!   deterministic, finite tree, ...).
//! * [`ops`] — combinators: disjoint union, CCS-style choice and prefixing,
//!   relabelling, synchronous product, restriction to the reachable part.
//! * [`reach`] — reachability and structural queries.
//! * [`saturate`] — the weak (double-arrow) transition relation `⇒` used to
//!   reduce observational equivalence to strong equivalence (Theorem 4.1(a)).
//! * [`mod@format`] — a plain-text interchange format with parser and printer.
//! * [`dot`] — Graphviz export for visual inspection.
//!
//! Where this crate sits in the workspace — the crate map, the
//! end-to-end data flow, and the notion-to-procedure table — is laid out
//! in `ARCHITECTURE.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod dot;
mod error;
pub mod format;
mod interner;
mod label;
pub mod model;
pub mod ops;
mod process;
pub mod reach;
pub mod saturate;
mod state;

pub use builder::FspBuilder;
pub use error::FspError;
pub use label::{ActionId, Label, VarId};
pub use model::{ModelClass, ModelProfile};
pub use process::{EdgeBatch, Fsp, Transition};
pub use state::StateId;

/// Name of the conventional acceptance variable of the *standard* model.
///
/// A standard FSP uses `V = {x}`; a state `q` is accepting iff `E(q) = {x}`
/// (Section 2.1 of the paper).
pub const ACCEPT_VAR: &str = "x";

/// Reserved action name used by [`saturate::saturate`] for the ε column of
/// the weak transition relation (`p ⇒ε q` iff `q` is reachable from `p` via
/// zero or more `τ`-moves).
pub const EPSILON_ACTION: &str = "__eps";
