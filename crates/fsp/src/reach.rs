//! Reachability and structural queries on processes.

use std::collections::VecDeque;

use crate::process::Fsp;
use crate::state::StateId;

/// Returns the states reachable from `from` (including `from` itself), in
/// breadth-first order.
#[must_use]
pub fn reachable_states(fsp: &Fsp, from: StateId) -> Vec<StateId> {
    let mut seen = vec![false; fsp.num_states()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[from.index()] = true;
    queue.push_back(from);
    while let Some(s) = queue.pop_front() {
        order.push(s);
        for t in fsp.transitions(s) {
            if !seen[t.target.index()] {
                seen[t.target.index()] = true;
                queue.push_back(t.target);
            }
        }
    }
    order
}

/// Returns a boolean mask over all states: `true` iff the state is reachable
/// from the start state.
#[must_use]
pub fn reachable_mask(fsp: &Fsp) -> Vec<bool> {
    let mut mask = vec![false; fsp.num_states()];
    for s in reachable_states(fsp, fsp.start()) {
        mask[s.index()] = true;
    }
    mask
}

/// Returns all dead states (states with no outgoing transitions).
#[must_use]
pub fn dead_states(fsp: &Fsp) -> Vec<StateId> {
    fsp.state_ids().filter(|&s| fsp.is_dead(s)).collect()
}

/// Returns `true` iff every state of the process is reachable from the start
/// state.
#[must_use]
pub fn is_connected(fsp: &Fsp) -> bool {
    reachable_states(fsp, fsp.start()).len() == fsp.num_states()
}

/// Returns `true` iff the process contains a directed cycle (τ-moves
/// included).
#[must_use]
pub fn has_cycle(fsp: &Fsp) -> bool {
    // Iterative three-colour DFS.
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let n = fsp.num_states();
    let mut colour = vec![Colour::White; n];
    for root in 0..n {
        if colour[root] != Colour::White {
            continue;
        }
        // Stack of (state, next transition index to explore).
        let mut stack = vec![(root, 0usize)];
        colour[root] = Colour::Grey;
        while let Some(&(s, next)) = stack.last() {
            let trans = fsp.transitions(StateId::from_index(s));
            if next < trans.len() {
                stack.last_mut().expect("stack is non-empty").1 += 1;
                let target = trans[next].target.index();
                match colour[target] {
                    Colour::White => {
                        colour[target] = Colour::Grey;
                        stack.push((target, 0));
                    }
                    Colour::Grey => return true,
                    Colour::Black => {}
                }
            } else {
                colour[s] = Colour::Black;
                stack.pop();
            }
        }
    }
    false
}

/// The length of the longest simple path from the start state when the
/// process is acyclic, or `None` if it contains a cycle.
///
/// Useful as the depth bound for finite trees and DAG-shaped processes.
#[must_use]
pub fn acyclic_depth(fsp: &Fsp) -> Option<usize> {
    if has_cycle(fsp) {
        return None;
    }
    // Longest path via memoised DFS (the graph is a DAG).
    let n = fsp.num_states();
    let mut memo: Vec<Option<usize>> = vec![None; n];
    fn depth(fsp: &Fsp, s: usize, memo: &mut Vec<Option<usize>>) -> usize {
        if let Some(d) = memo[s] {
            return d;
        }
        let mut best = 0;
        for t in fsp.transitions(StateId::from_index(s)) {
            best = best.max(1 + depth(fsp, t.target.index(), memo));
        }
        memo[s] = Some(best);
        best
    }
    Some(depth(fsp, fsp.start().index(), &mut memo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fsp;

    fn chain(n: usize) -> Fsp {
        let mut b = Fsp::builder("chain");
        for i in 0..n.saturating_sub(1) {
            b.transition(&format!("s{i}"), "a", &format!("s{}", i + 1));
        }
        if n == 1 {
            b.state("s0");
        }
        b.build().unwrap()
    }

    #[test]
    fn reachability_in_a_chain() {
        let f = chain(5);
        assert_eq!(reachable_states(&f, f.start()).len(), 5);
        assert!(is_connected(&f));
        let mid = f.state_by_name("s2").unwrap();
        assert_eq!(reachable_states(&f, mid).len(), 3);
    }

    #[test]
    fn unreachable_states_are_detected() {
        let mut b = Fsp::builder("t");
        b.transition("p", "a", "q");
        b.state("island");
        let f = b.build().unwrap();
        assert!(!is_connected(&f));
        let mask = reachable_mask(&f);
        assert_eq!(mask.iter().filter(|&&x| x).count(), 2);
    }

    #[test]
    fn dead_state_listing() {
        let f = chain(3);
        let dead = dead_states(&f);
        assert_eq!(dead.len(), 1);
        assert_eq!(f.state_label(dead[0]), "s2");
    }

    #[test]
    fn cycle_detection() {
        let f = chain(4);
        assert!(!has_cycle(&f));
        let mut b = Fsp::builder("c");
        b.transition("p", "a", "q");
        b.transition("q", "a", "p");
        let g = b.build().unwrap();
        assert!(has_cycle(&g));
        let mut b = Fsp::builder("self");
        b.transition("p", "a", "p");
        assert!(has_cycle(&b.build().unwrap()));
    }

    #[test]
    fn depth_of_acyclic_processes() {
        assert_eq!(acyclic_depth(&chain(1)), Some(0));
        assert_eq!(acyclic_depth(&chain(4)), Some(3));
        let mut b = Fsp::builder("c");
        b.transition("p", "a", "q");
        b.transition("q", "a", "p");
        assert_eq!(acyclic_depth(&b.build().unwrap()), None);
    }

    #[test]
    fn reachable_from_single_state() {
        let f = chain(1);
        assert_eq!(reachable_states(&f, f.start()), vec![f.start()]);
        assert!(is_connected(&f));
    }
}
