//! Incremental construction of finite state processes.

use std::collections::HashMap;

use crate::interner::Interner;
use crate::label::{ActionId, Label, VarId};
use crate::process::{Fsp, StateData, Transition};
use crate::state::StateId;
use crate::{FspError, ACCEPT_VAR};

/// Builder for [`Fsp`] values.
///
/// States, actions and variables are created on demand; transitions and
/// extensions may reference them in any order.  [`FspBuilder::build`]
/// validates the result and normalises the transition relation (sorted,
/// duplicate-free per state).
///
/// ```
/// use ccs_fsp::{Fsp, Label};
/// let mut b = Fsp::builder("ab-loop");
/// let p = b.state("p");
/// let q = b.state("q");
/// let a = b.action("a");
/// let bb = b.action("b");
/// b.set_start(p);
/// b.add_transition(p, Label::Act(a), q);
/// b.add_transition(q, Label::Act(bb), p);
/// b.mark_accepting(p);
/// let fsp = b.build()?;
/// assert_eq!(fsp.num_transitions(), 2);
/// # Ok::<(), ccs_fsp::FspError>(())
/// ```
#[derive(Clone, Debug)]
pub struct FspBuilder {
    name: String,
    states: Vec<StateData>,
    states_by_name: HashMap<String, StateId>,
    actions: Interner,
    vars: Interner,
    start: Option<StateId>,
}

impl FspBuilder {
    /// Creates an empty builder for a process with the given name.
    #[must_use]
    pub fn new(name: &str) -> Self {
        FspBuilder {
            name: name.to_owned(),
            states: Vec::new(),
            states_by_name: HashMap::new(),
            actions: Interner::new(),
            vars: Interner::new(),
            start: None,
        }
    }

    /// Number of states created so far.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Gets or creates the state with the given name.
    ///
    /// Calling `state` twice with the same name returns the same identifier.
    pub fn state(&mut self, name: &str) -> StateId {
        if let Some(&id) = self.states_by_name.get(name) {
            return id;
        }
        let id = StateId::from_index(self.states.len());
        self.states.push(StateData {
            name: Some(name.to_owned()),
            ..StateData::default()
        });
        self.states_by_name.insert(name.to_owned(), id);
        id
    }

    /// Creates a fresh anonymous state.
    pub fn fresh_state(&mut self) -> StateId {
        let id = StateId::from_index(self.states.len());
        self.states.push(StateData::default());
        id
    }

    /// Gets or creates the observable action with the given name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is `"tau"`, which is reserved for the unobservable
    /// action — use [`Label::Tau`] instead.
    pub fn action(&mut self, name: &str) -> ActionId {
        assert_ne!(name, "tau", "'tau' is reserved for the unobservable action");
        ActionId::from_index(self.actions.intern(name) as usize)
    }

    /// Gets or creates the variable with the given name.
    pub fn var(&mut self, name: &str) -> VarId {
        VarId::from_index(self.vars.intern(name) as usize)
    }

    /// Parses a label name: `"tau"` yields [`Label::Tau`], anything else an
    /// observable action.
    pub fn label(&mut self, name: &str) -> Label {
        if name == "tau" {
            Label::Tau
        } else {
            Label::Act(self.action(name))
        }
    }

    /// Designates the start state `p0`.
    pub fn set_start(&mut self, state: StateId) -> &mut Self {
        self.start = Some(state);
        self
    }

    /// Adds the transition `(from, label, to)` to `Δ`.
    pub fn add_transition(&mut self, from: StateId, label: Label, to: StateId) -> &mut Self {
        // Bounds are validated in `build`, so out-of-range ids are reported as
        // errors rather than panics.
        if from.index() < self.states.len() {
            self.states[from.index()]
                .transitions
                .push(Transition { label, target: to });
        } else {
            // Record it on a synthetic overflow entry so `build` can report it.
            self.states.resize(from.index() + 1, StateData::default());
            self.states[from.index()]
                .transitions
                .push(Transition { label, target: to });
        }
        self
    }

    /// Convenience: adds a transition between named states with a named
    /// label (`"tau"` for `τ`), creating states and actions as needed.
    pub fn transition(&mut self, from: &str, label: &str, to: &str) -> &mut Self {
        let f = self.state(from);
        let t = self.state(to);
        let l = self.label(label);
        self.add_transition(f, l, t)
    }

    /// Adds variable `var` to the extension set `E(state)`.
    pub fn add_extension(&mut self, state: StateId, var: &str) -> &mut Self {
        let v = self.var(var);
        if state.index() >= self.states.len() {
            self.states.resize(state.index() + 1, StateData::default());
        }
        self.states[state.index()].extensions.insert(v);
        self
    }

    /// Marks a state as accepting by adding the conventional variable `x`
    /// ([`ACCEPT_VAR`]) to its extension set.
    pub fn mark_accepting(&mut self, state: StateId) -> &mut Self {
        self.add_extension(state, ACCEPT_VAR)
    }

    /// Marks every state created so far as accepting, producing a process in
    /// the *restricted* model (all states accepting).
    pub fn mark_all_accepting(&mut self) -> &mut Self {
        let n = self.states.len();
        for i in 0..n {
            self.mark_accepting(StateId::from_index(i));
        }
        self
    }

    /// Finalises the process.
    ///
    /// If no start state was designated, the first created state is used.
    ///
    /// # Errors
    ///
    /// * [`FspError::EmptyProcess`] if no states were created.
    /// * [`FspError::UnknownState`] if a transition targets a state index
    ///   that was never created.
    /// * [`FspError::TooManyStates`] if the ground set outgrew the packed
    ///   32-bit id space (reachable via the id-resizing transition path;
    ///   named-state creation fails fast inside [`StateId::from_index`]).
    pub fn build(self) -> Result<Fsp, FspError> {
        if self.states.is_empty() {
            return Err(FspError::EmptyProcess);
        }
        StateId::try_from_index(self.states.len() - 1)?;
        let start = match self.start {
            Some(s) => s,
            None => StateId::from_index(0),
        };
        let num_states = self.states.len();
        if start.index() >= num_states {
            return Err(FspError::UnknownState {
                state: start,
                num_states,
            });
        }
        for st in &self.states {
            for t in &st.transitions {
                if t.target.index() >= num_states {
                    return Err(FspError::UnknownState {
                        state: t.target,
                        num_states,
                    });
                }
            }
        }
        Ok(Fsp::from_parts(
            self.name,
            start,
            self.states,
            self.actions,
            self.vars,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_states_are_deduplicated() {
        let mut b = FspBuilder::new("t");
        let p1 = b.state("p");
        let p2 = b.state("p");
        assert_eq!(p1, p2);
        assert_eq!(b.num_states(), 1);
    }

    #[test]
    fn fresh_states_are_distinct() {
        let mut b = FspBuilder::new("t");
        let a = b.fresh_state();
        let c = b.fresh_state();
        assert_ne!(a, c);
    }

    #[test]
    fn empty_process_is_rejected() {
        let b = FspBuilder::new("empty");
        assert_eq!(b.build().unwrap_err(), FspError::EmptyProcess);
    }

    #[test]
    fn default_start_is_first_state() {
        let mut b = FspBuilder::new("t");
        let p = b.state("p");
        b.state("q");
        let f = b.build().unwrap();
        assert_eq!(f.start(), p);
    }

    #[test]
    fn invalid_transition_target_is_rejected() {
        let mut b = FspBuilder::new("t");
        let p = b.state("p");
        b.set_start(p);
        b.add_transition(p, Label::Tau, StateId::from_index(42));
        assert!(matches!(
            b.build().unwrap_err(),
            FspError::UnknownState { .. }
        ));
    }

    #[test]
    fn invalid_start_is_rejected() {
        let mut b = FspBuilder::new("t");
        b.state("p");
        b.set_start(StateId::from_index(9));
        assert!(matches!(
            b.build().unwrap_err(),
            FspError::UnknownState { .. }
        ));
    }

    #[test]
    fn transition_by_name_creates_everything() {
        let mut b = FspBuilder::new("t");
        b.transition("p", "a", "q");
        b.transition("q", "tau", "p");
        let f = b.build().unwrap();
        assert_eq!(f.num_states(), 2);
        assert_eq!(f.num_transitions(), 2);
        assert!(f.has_tau_transitions());
        assert_eq!(f.num_actions(), 1);
    }

    #[test]
    fn mark_all_accepting_gives_restricted_model() {
        let mut b = FspBuilder::new("t");
        b.transition("p", "a", "q");
        b.mark_all_accepting();
        let f = b.build().unwrap();
        assert_eq!(f.accepting_states().len(), 2);
        assert!(f.profile().restricted);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn tau_action_name_is_reserved() {
        let mut b = FspBuilder::new("t");
        b.action("tau");
    }

    #[test]
    fn label_helper_maps_tau() {
        let mut b = FspBuilder::new("t");
        assert_eq!(b.label("tau"), Label::Tau);
        assert!(matches!(b.label("a"), Label::Act(_)));
    }
}
