use std::fmt;

/// Identifier of an observable action (an element of `Σ`).
///
/// Action identifiers are dense indices into the action alphabet of a single
/// process, assigned in interning order by the builder.  The unobservable
/// action `τ` is *not* an `ActionId`; it is represented by
/// [`Label::Tau`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActionId(u32);

impl ActionId {
    /// Creates an action identifier from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        ActionId(u32::try_from(index).expect("action index exceeds u32::MAX"))
    }

    /// Returns the dense index of this action.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Identifier of a variable (an element of `V`, used by the extension
/// relation `E ⊆ K × V`).
///
/// The standard model uses the single variable `x`
/// ([`ACCEPT_VAR`](crate::ACCEPT_VAR)), recovering classical NFA acceptance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(u32);

impl VarId {
    /// Creates a variable identifier from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        VarId(u32::try_from(index).expect("variable index exceeds u32::MAX"))
    }

    /// Returns the dense index of this variable.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A transition label: either the unobservable action `τ` or an observable
/// action from `Σ`.
///
/// ```
/// use ccs_fsp::{ActionId, Label};
/// let a = Label::Act(ActionId::from_index(0));
/// assert!(!a.is_tau());
/// assert!(Label::Tau.is_tau());
/// assert_eq!(a.action(), Some(ActionId::from_index(0)));
/// assert_eq!(Label::Tau.action(), None);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Label {
    /// The unobservable action `τ` (the CCS analogue of an ε-move).
    Tau,
    /// An observable action from the alphabet `Σ`.
    Act(ActionId),
}

impl Label {
    /// Returns `true` iff this label is the unobservable action `τ`.
    #[must_use]
    pub fn is_tau(self) -> bool {
        matches!(self, Label::Tau)
    }

    /// Returns the observable action, or `None` for `τ`.
    #[must_use]
    pub fn action(self) -> Option<ActionId> {
        match self {
            Label::Tau => None,
            Label::Act(a) => Some(a),
        }
    }
}

impl From<ActionId> for Label {
    fn from(value: ActionId) -> Self {
        Label::Act(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_round_trip() {
        assert_eq!(ActionId::from_index(9).index(), 9);
        assert_eq!(VarId::from_index(2).index(), 2);
    }

    #[test]
    fn label_predicates() {
        let a = ActionId::from_index(1);
        assert!(Label::Tau.is_tau());
        assert!(!Label::Act(a).is_tau());
        assert_eq!(Label::Act(a).action(), Some(a));
        assert_eq!(Label::Tau.action(), None);
    }

    #[test]
    fn label_from_action() {
        let a = ActionId::from_index(4);
        assert_eq!(Label::from(a), Label::Act(a));
    }

    #[test]
    fn label_ordering_puts_tau_first() {
        assert!(Label::Tau < Label::Act(ActionId::from_index(0)));
    }
}
