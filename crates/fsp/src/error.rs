use std::error::Error;
use std::fmt;

use crate::StateId;

/// Errors produced while constructing, parsing, or combining finite state
/// processes.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FspError {
    /// The process has no states; an FSP must have a start state `p0 ∈ K`.
    EmptyProcess,
    /// A state identifier does not belong to the process being built.
    UnknownState {
        /// The offending state.
        state: StateId,
        /// Number of states in the process.
        num_states: usize,
    },
    /// No start state was designated and none could be inferred.
    MissingStart,
    /// A textual process description could not be parsed.
    Parse {
        /// 1-based line number of the offending line (0 if not applicable).
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An operation required a specific model class which the argument does
    /// not belong to (e.g. a deterministic-only fast path applied to a
    /// nondeterministic process).
    ModelMismatch {
        /// The requirement that was violated.
        expected: String,
    },
    /// Two processes that must share an alphabet/variable set do not.
    AlphabetMismatch {
        /// Description of the mismatch.
        message: String,
    },
    /// The process needs more states than the packed 32-bit identifier
    /// space can address.  Raised by the checked ingestion conversion
    /// ([`StateId::try_from_index`](crate::StateId::try_from_index)) instead
    /// of silently truncating ids.
    TooManyStates {
        /// The state index (or count) that did not fit.
        requested: usize,
    },
}

impl fmt::Display for FspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FspError::EmptyProcess => write!(f, "process has no states"),
            FspError::UnknownState { state, num_states } => write!(
                f,
                "state {state} does not belong to this process ({num_states} states)"
            ),
            FspError::MissingStart => write!(f, "no start state designated"),
            FspError::Parse { line, message } => {
                if *line == 0 {
                    write!(f, "parse error: {message}")
                } else {
                    write!(f, "parse error at line {line}: {message}")
                }
            }
            FspError::ModelMismatch { expected } => {
                write!(f, "process does not satisfy model requirement: {expected}")
            }
            FspError::AlphabetMismatch { message } => {
                write!(f, "alphabet mismatch: {message}")
            }
            FspError::TooManyStates { requested } => write!(
                f,
                "process needs state index {requested}, beyond the 32-bit id space"
            ),
        }
    }
}

impl Error for FspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_nonempty_and_lowercase() {
        let errors = vec![
            FspError::EmptyProcess,
            FspError::UnknownState {
                state: StateId::from_index(7),
                num_states: 3,
            },
            FspError::MissingStart,
            FspError::Parse {
                line: 4,
                message: "expected action name".into(),
            },
            FspError::Parse {
                line: 0,
                message: "empty input".into(),
            },
            FspError::ModelMismatch {
                expected: "observable (no tau transitions)".into(),
            },
            FspError::AlphabetMismatch {
                message: "left has action 'a' missing on the right".into(),
            },
            FspError::TooManyStates {
                requested: usize::MAX,
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<FspError>();
    }
}
