//! Concurrent-serving integration test: a live TCP server, many client
//! threads issuing interleaved `pair` and `classify` queries, responses
//! byte-deterministic and identical to a direct [`EquivSession`] oracle —
//! and the coalescing evidence: one wave of concurrent pair queries on one
//! `(session, notion)` runs exactly one refinement.

use std::collections::BTreeMap;
use std::sync::Barrier;

use ccs_equiv::{EquivSession, Equivalence, Query};
use ccs_fsp::format;
use ccs_server::{Client, Server, Service};

/// The process every test serves: τ-absorption plus a dead tail, small
/// enough to enumerate all pairs, rich enough that notions disagree.
const PROCESS: &str = "trans p tau q\n\
                       trans q a r\n\
                       trans s a t\n\
                       trans u a v\n\
                       trans u b w\n\
                       accept r t\n";

const NOTIONS: [(&str, Equivalence); 4] = [
    ("strong", Equivalence::Strong),
    ("observational", Equivalence::Observational),
    ("language", Equivalence::Language),
    ("failure", Equivalence::Failure),
];

const STATES: [&str; 8] = ["p", "q", "r", "s", "t", "u", "v", "w"];

/// One verdict as a thread observed it: `((notion, left, right), answer)`.
type SeenVerdict = ((&'static str, &'static str, &'static str), bool);

fn spawn_server() -> ccs_server::ServerHandle {
    Server::bind("127.0.0.1:0", Service::default())
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn accept loop")
}

#[test]
fn eight_threads_agree_with_the_single_threaded_oracle() {
    let handle = spawn_server();

    // The oracle: the same process, queried directly through the library.
    let oracle_session = EquivSession::new(format::parse(PROCESS).unwrap());
    let fsp = oracle_session.fsp().clone();
    let mut oracle: BTreeMap<(&str, &str, &str), bool> = BTreeMap::new();
    for (name, notion) in NOTIONS {
        for l in STATES {
            for r in STATES {
                let p = fsp.state_by_name(l).unwrap();
                let q = fsp.state_by_name(r).unwrap();
                let verdict = Query::new(notion).pair(&oracle_session, p, q).unwrap();
                oracle.insert((name, l, r), verdict);
            }
        }
    }

    let session = {
        let mut client = Client::connect(handle.addr()).unwrap();
        client.open_fsp(PROCESS).unwrap().session
    };

    let threads = 8;
    let barrier = Barrier::new(threads);
    let results: Vec<Vec<SeenVerdict>> = std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..threads {
            let (barrier, session) = (&barrier, session.as_str());
            let addr = handle.addr();
            workers.push(scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                let mut seen = Vec::new();
                // Each thread walks the full battery in a different order so
                // queries interleave across notions and pairs.
                for step in 0..NOTIONS.len() {
                    let (name, _) = NOTIONS[(t + step) % NOTIONS.len()];
                    for (i, &l) in STATES.iter().enumerate() {
                        for (j, &r) in STATES.iter().enumerate() {
                            let (l, r) = if t % 2 == 0 { (l, r) } else { (r, l) };
                            let verdict = client.pair(session, name, l, r).unwrap();
                            seen.push(((name, l, r), verdict));
                            // Interleave whole-space classifications too.
                            if (i + j + t) % 13 == 0 {
                                let classes = client.classify(session, name).unwrap();
                                assert!(!classes.is_empty());
                            }
                        }
                    }
                }
                seen
            }));
        }
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    for thread_results in &results {
        for &((name, l, r), verdict) in thread_results {
            assert_eq!(
                verdict,
                oracle[&(name, l, r)],
                "{name} {l}~{r} must match the direct session oracle"
            );
        }
    }

    // Refinement accounting: Strong, Observational, Language and Failure
    // each cost exactly one refinement no matter how many threads asked.
    let mut client = Client::connect(handle.addr()).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.refinements,
        NOTIONS.len(),
        "every notion must be classified exactly once across all threads"
    );
    assert_eq!(
        stats.pair_queries,
        threads * NOTIONS.len() * STATES.len() * STATES.len()
    );
}

#[test]
fn one_wave_of_concurrent_pairs_runs_one_refinement() {
    let handle = spawn_server();
    let session = {
        let mut client = Client::connect(handle.addr()).unwrap();
        client.open_fsp(PROCESS).unwrap().session
    };

    let threads = 8;
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let (barrier, session) = (&barrier, session.as_str());
            let addr = handle.addr();
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                for _ in 0..25 {
                    assert!(client.pair(session, "observational", "p", "s").unwrap());
                    assert!(!client.pair(session, "observational", "p", "r").unwrap());
                }
            });
        }
    });

    let mut client = Client::connect(handle.addr()).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.pair_queries, threads * 50);
    assert_eq!(
        stats.refinements, 1,
        "m concurrent pair queries on one (session, notion) must coalesce \
         into exactly one refinement"
    );
    assert!(stats.batches >= 1);
    assert!(stats.peak_batch >= 1);
}

/// The `≈ₖ` hierarchy through the coalescer: a wave of concurrent
/// `k-observational-2` queries shares one subset arena and runs exactly
/// one refinement per level (0, 1, 2) — the level memo is single-flight
/// just like the flat notions.
#[test]
fn concurrent_kobs_queries_coalesce_per_level() {
    // a.(b + c) vs a.b + a.c, all accepting: ≈₁-equivalent (same traces)
    // but ≈₂ tells the merged branch from the split one.
    let process = "trans p a q\ntrans q b r\ntrans q c s\n\
                   trans u a v\ntrans u a w\ntrans v b x\ntrans w c y\n\
                   accept p q r s u v w x y\n";
    let handle = spawn_server();
    let session = {
        let mut client = Client::connect(handle.addr()).unwrap();
        client.open_fsp(process).unwrap().session
    };

    let threads = 8;
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let (barrier, session) = (&barrier, session.as_str());
            let addr = handle.addr();
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                for _ in 0..10 {
                    assert!(client.pair(session, "k-observational-1", "p", "u").unwrap());
                    assert!(!client.pair(session, "k-observational-2", "p", "u").unwrap());
                }
                let classes = client.classify(session, "k-observational-2").unwrap();
                assert!(!classes.is_empty());
            });
        }
    });

    let mut client = Client::connect(handle.addr()).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.pair_queries, threads * 20);
    assert_eq!(
        stats.refinements, 3,
        "a k = 2 wave must run exactly one refinement per level 0..=2, \
         sharing the subset arena across threads and levels"
    );
}

#[test]
fn responses_are_byte_identical_across_connections() {
    let handle = spawn_server();
    let session = {
        let mut client = Client::connect(handle.addr()).unwrap();
        client.open_fsp(PROCESS).unwrap().session
    };
    // Raw request line, compared as raw response bytes across threads.
    let request = ccs_server::Json::obj([
        ("op", ccs_server::Json::str("classify")),
        ("session", ccs_server::Json::str(session)),
        ("notion", ccs_server::Json::str("observational")),
    ]);
    let responses: Vec<String> = std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for _ in 0..8 {
            let (addr, request) = (handle.addr(), &request);
            workers.push(scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.call(request).unwrap().to_string()
            }));
        }
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    for response in &responses {
        assert_eq!(response, &responses[0]);
    }
}
