//! A small blocking client for the wire protocol — the counterpart the
//! examples, the smoke binary and the integration tests drive.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::json::{self, Json};

/// A client-side failure: transport, a malformed response, or a structured
/// error the server returned.
#[derive(Debug)]
pub enum ClientError {
    /// The TCP transport failed.
    Io(io::Error),
    /// The server's response line was not the JSON shape the client expects.
    Protocol(String),
    /// The server answered `"ok": false`.
    Server {
        /// The stable error code (`EquivError::code` on the server side).
        code: String,
        /// The human-readable message.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(m) => write!(f, "malformed response: {m}"),
            ClientError::Server { code, message } => {
                write!(f, "server error [{code}]: {message}")
            }
        }
    }
}

impl Error for ClientError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(value: io::Error) -> Self {
        ClientError::Io(value)
    }
}

/// The response to a successful `open`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpenedSession {
    /// The server-assigned handle to use in subsequent requests.
    pub session: String,
    /// Number of states in the opened process.
    pub states: usize,
    /// Number of transitions in the opened process.
    pub transitions: usize,
}

/// The response to a `stats` request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerStats {
    /// Live sessions in the registry.
    pub sessions: usize,
    /// Approximate resident bytes across sessions.
    pub resident_bytes: usize,
    /// Sessions evicted under pressure so far.
    pub evictions: usize,
    /// Partition refinements that actually executed across live sessions.
    pub refinements: usize,
    /// Pair queries served by the batching layer.
    pub pair_queries: usize,
    /// Coalesced classification batches that executed.
    pub batches: usize,
    /// Largest number of concurrent queries sharing one batch.
    pub peak_batch: usize,
}

/// A blocking connection to a `ccs-server`.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// One request/response round trip; returns the `"ok": true` response
    /// object.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for structured errors, [`ClientError::Io`] /
    /// [`ClientError::Protocol`] for transport problems.
    pub fn call(&mut self, request: &Json) -> Result<Json, ClientError> {
        self.writer.write_all(request.to_string().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        let read = self.reader.read_line(&mut line)?;
        if read == 0 {
            return Err(ClientError::Protocol(
                "server closed the connection".to_owned(),
            ));
        }
        let response = json::parse(line.trim_end()).map_err(ClientError::Protocol)?;
        match response.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(response),
            Some(false) => Err(ClientError::Server {
                code: field_str(&response, "code").unwrap_or_else(|_| "unknown".to_owned()),
                message: field_str(&response, "message").unwrap_or_default(),
            }),
            None => Err(ClientError::Protocol(format!(
                "response has no \"ok\" field: {response}"
            ))),
        }
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn ping(&mut self) -> Result<bool, ClientError> {
        let response = self.call(&Json::obj([("op", Json::str("ping"))]))?;
        Ok(response.get("pong").and_then(Json::as_bool) == Some(true))
    }

    fn open(&mut self, format: &str, text: &str) -> Result<OpenedSession, ClientError> {
        let response = self.call(&Json::obj([
            ("op", Json::str("open")),
            ("format", Json::str(format)),
            ("text", Json::str(text)),
        ]))?;
        Ok(OpenedSession {
            session: field_str(&response, "session")?,
            states: field_usize(&response, "states")?,
            transitions: field_usize(&response, "transitions")?,
        })
    }

    /// Opens a session over a process in the `trans`/`accept` text format.
    ///
    /// # Errors
    ///
    /// See [`Client::call`]; parse failures arrive as code `process`.
    pub fn open_fsp(&mut self, text: &str) -> Result<OpenedSession, ClientError> {
        self.open("fsp", text)
    }

    /// Opens a session over a CCS star expression (via the paper's
    /// representative-process construction).
    ///
    /// # Errors
    ///
    /// See [`Client::call`]; parse failures arrive as code `expression`.
    pub fn open_ccs(&mut self, text: &str) -> Result<OpenedSession, ClientError> {
        self.open("ccs", text)
    }

    /// Whether states `left` and `right` are related under `notion`
    /// (`"strong"`, `"observational"`, `"limited-2"`, `"language"`, …).
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn pair(
        &mut self,
        session: &str,
        notion: &str,
        left: &str,
        right: &str,
    ) -> Result<bool, ClientError> {
        let response = self.call(&Json::obj([
            ("op", Json::str("pair")),
            ("session", Json::str(session)),
            ("notion", Json::str(notion)),
            ("left", Json::str(left)),
            ("right", Json::str(right)),
        ]))?;
        response
            .get("equivalent")
            .and_then(Json::as_bool)
            .ok_or_else(|| ClientError::Protocol("pair response lacks a verdict".to_owned()))
    }

    /// The equivalence classes of the whole state space under `notion`,
    /// as lists of state names.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn classify(
        &mut self,
        session: &str,
        notion: &str,
    ) -> Result<Vec<Vec<String>>, ClientError> {
        let response = self.call(&Json::obj([
            ("op", Json::str("classify")),
            ("session", Json::str(session)),
            ("notion", Json::str(notion)),
        ]))?;
        let blocks = response
            .get("blocks")
            .and_then(Json::as_arr)
            .ok_or_else(|| ClientError::Protocol("classify response lacks blocks".to_owned()))?;
        blocks
            .iter()
            .map(|block| {
                block
                    .as_arr()
                    .ok_or_else(|| ClientError::Protocol("block is not an array".to_owned()))?
                    .iter()
                    .map(|name| {
                        name.as_str().map(str::to_owned).ok_or_else(|| {
                            ClientError::Protocol("state name is not a string".to_owned())
                        })
                    })
                    .collect()
            })
            .collect()
    }

    /// The `state name → class index` assignment under `notion`.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn partition(
        &mut self,
        session: &str,
        notion: &str,
    ) -> Result<BTreeMap<String, usize>, ClientError> {
        let response = self.call(&Json::obj([
            ("op", Json::str("partition")),
            ("session", Json::str(session)),
            ("notion", Json::str(notion)),
        ]))?;
        let assignment = response
            .get("assignment")
            .and_then(Json::as_obj)
            .ok_or_else(|| {
                ClientError::Protocol("partition response lacks an assignment".to_owned())
            })?;
        assignment
            .iter()
            .map(|(name, block)| {
                let block = block
                    .as_i64()
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or_else(|| {
                        ClientError::Protocol("class index is not a natural number".to_owned())
                    })?;
                Ok((name.clone(), block))
            })
            .collect()
    }

    /// Applies an edge delta to a live session in place: each entry is a
    /// `(from, label, to)` name triple, with `"tau"` naming the silent
    /// action.  Returns `(added, removed)` — the edits that actually took
    /// effect.  The handle and every cache the delta does not invalidate
    /// survive on the server.
    ///
    /// # Errors
    ///
    /// See [`Client::call`]; unknown state or action names arrive as code
    /// `bad-request`.
    pub fn mutate(
        &mut self,
        session: &str,
        add: &[(&str, &str, &str)],
        remove: &[(&str, &str, &str)],
    ) -> Result<(usize, usize), ClientError> {
        let edges = |list: &[(&str, &str, &str)]| {
            Json::Arr(
                list.iter()
                    .map(|&(f, l, t)| Json::Arr(vec![Json::str(f), Json::str(l), Json::str(t)]))
                    .collect(),
            )
        };
        let response = self.call(&Json::obj([
            ("op", Json::str("mutate")),
            ("session", Json::str(session)),
            ("add", edges(add)),
            ("remove", edges(remove)),
        ]))?;
        Ok((
            field_usize(&response, "added")?,
            field_usize(&response, "removed")?,
        ))
    }

    /// Closes a session; `true` if the server still held it.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn close_session(&mut self, session: &str) -> Result<bool, ClientError> {
        let response = self.call(&Json::obj([
            ("op", Json::str("close")),
            ("session", Json::str(session)),
        ]))?;
        Ok(response.get("closed").and_then(Json::as_bool) == Some(true))
    }

    /// The server's registry and coalescing counters.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        let response = self.call(&Json::obj([("op", Json::str("stats"))]))?;
        Ok(ServerStats {
            sessions: field_usize(&response, "sessions")?,
            resident_bytes: field_usize(&response, "resident_bytes")?,
            evictions: field_usize(&response, "evictions")?,
            refinements: field_usize(&response, "refinements")?,
            pair_queries: field_usize(&response, "pair_queries")?,
            batches: field_usize(&response, "batches")?,
            peak_batch: field_usize(&response, "peak_batch")?,
        })
    }
}

fn field_str(response: &Json, key: &str) -> Result<String, ClientError> {
    response
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| ClientError::Protocol(format!("response lacks string field {key:?}")))
}

fn field_usize(response: &Json, key: &str) -> Result<usize, ClientError> {
    response
        .get(key)
        .and_then(Json::as_i64)
        .and_then(|n| usize::try_from(n).ok())
        .ok_or_else(|| ClientError::Protocol(format!("response lacks numeric field {key:?}")))
}
