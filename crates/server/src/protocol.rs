//! Request dispatch: one JSON object in, one JSON object out.
//!
//! Every request is a single-line JSON object with an `"op"` field; every
//! response is a single-line JSON object with `"ok": true` plus op-specific
//! fields, or `"ok": false` plus the stable error `"code"` (see
//! [`EquivError::code`]) and a human-readable `"message"`.  The full
//! request/response vocabulary is documented in `docs/PROTOCOL.md` at the
//! repository root.
//!
//! `pair` queries on determinizable notions (`language`, `trace`,
//! `failure`) against models at or above the on-the-fly threshold
//! (`CCS_OTF_THRESHOLD` states, default 512) bypass the coalescer and run
//! [`EquivSession::on_the_fly`] instead: the engine stops at the first
//! distinguishing pair instead of materializing the full determinized
//! partition, and refutations come back with a replayable witness.  The
//! response's `"engine"` field says which path answered.

use std::str::FromStr;
use std::sync::Arc;

use ccs_equiv::{EquivError, EquivSession, Equivalence};
use ccs_fsp::{format, Fsp, Label, StateId};

use crate::batch::Coalescer;
use crate::json::{self, Json};
use crate::registry::{Registry, RegistryConfig};

/// The shared, thread-safe request handler: a [`Registry`] of sessions plus
/// the [`Coalescer`] batching layer.  One `Service` serves every connection
/// of a server; it is also usable directly (no socket) for in-process
/// embedding and tests.
#[derive(Debug)]
pub struct Service {
    registry: Registry,
    coalescer: Coalescer,
    otf_threshold: usize,
}

impl Default for Service {
    fn default() -> Self {
        Service::new(RegistryConfig::default())
    }
}

impl Service {
    /// A service with the given registry limits.  The on-the-fly threshold
    /// comes from `CCS_OTF_THRESHOLD` (states; default 512, `0` routes every
    /// eligible query on-the-fly).
    #[must_use]
    pub fn new(config: RegistryConfig) -> Self {
        let threshold = std::env::var("CCS_OTF_THRESHOLD")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(512);
        Service::with_otf_threshold(config, threshold)
    }

    /// A service with an explicit on-the-fly threshold (exposed so tests
    /// and embedders can force either `pair` path deterministically).
    #[must_use]
    pub fn with_otf_threshold(config: RegistryConfig, otf_threshold: usize) -> Self {
        Service {
            registry: Registry::new(config),
            coalescer: Coalescer::new(),
            otf_threshold,
        }
    }

    /// The session registry (exposed for embedding and tests).
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The batching layer (exposed for embedding and tests).
    #[must_use]
    pub fn coalescer(&self) -> &Coalescer {
        &self.coalescer
    }

    /// Handles one request line, returning exactly one response line
    /// (without the trailing newline).  Never panics on malformed input —
    /// every failure becomes an `"ok": false` response.
    #[must_use]
    pub fn handle_line(&self, line: &str) -> String {
        let response = self
            .parse_request(line)
            .and_then(|request| self.dispatch(&request))
            .unwrap_or_else(|error| {
                Json::obj([
                    ("ok", Json::Bool(false)),
                    ("code", Json::str(error.code())),
                    ("message", Json::str(error.to_string())),
                ])
            });
        response.to_string()
    }

    fn parse_request(&self, line: &str) -> Result<Json, EquivError> {
        let value = json::parse(line).map_err(EquivError::bad_request)?;
        if value.as_obj().is_none() {
            return Err(EquivError::bad_request("request must be a JSON object"));
        }
        Ok(value)
    }

    fn dispatch(&self, request: &Json) -> Result<Json, EquivError> {
        let op = str_field(request, "op")?;
        match op {
            "ping" => Ok(Json::obj([
                ("ok", Json::Bool(true)),
                ("pong", Json::Bool(true)),
            ])),
            "open" => self.op_open(request),
            "pair" => self.op_pair(request),
            "classify" => self.op_classify(request),
            "partition" => self.op_partition(request),
            "mutate" => self.op_mutate(request),
            "close" => self.op_close(request),
            "stats" => Ok(self.op_stats()),
            other => Err(EquivError::bad_request(format!(
                "unknown op {other:?} (expected one of: ping, open, pair, classify, \
                 partition, mutate, close, stats)"
            ))),
        }
    }

    fn op_open(&self, request: &Json) -> Result<Json, EquivError> {
        let text = str_field(request, "text")?;
        let fsp = match request.get("format").and_then(Json::as_str) {
            None | Some("fsp") => format::parse(text)?,
            Some("ccs") => {
                let expr = ccs_expr::parse(text).map_err(|e| EquivError::Expression {
                    message: e.to_string(),
                })?;
                ccs_expr::construct::representative(&expr)
            }
            Some(other) => {
                return Err(EquivError::bad_request(format!(
                    "unknown format {other:?} (expected \"fsp\" or \"ccs\")"
                )))
            }
        };
        let states = fsp.num_states();
        let transitions = fsp.num_transitions();
        let (id, _) = self.registry.open(fsp);
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("session", Json::Str(id)),
            ("states", as_num(states)),
            ("transitions", as_num(transitions)),
        ]))
    }

    fn op_pair(&self, request: &Json) -> Result<Json, EquivError> {
        let (handle, session) = self.session_of(request)?;
        let notion = notion_field(request)?;
        let p = state_field(&session, request, "left")?;
        let q = state_field(&session, request, "right")?;
        // Oversize models on determinizable notions skip the coalescer: the
        // on-the-fly engine stops at the first distinguishing pair instead
        // of forcing the whole determinized partition, and everything it
        // learns still lands in the shared session caches.
        let determinizable = matches!(
            notion,
            Equivalence::Language | Equivalence::Trace | Equivalence::Failure
        );
        if determinizable && session.fsp().num_states() >= self.otf_threshold {
            let outcome = session.on_the_fly(notion, p, q)?;
            let mut fields = vec![
                ("ok", Json::Bool(true)),
                ("equivalent", Json::Bool(outcome.equivalent)),
                ("notion", Json::str(notion.to_string())),
                ("engine", Json::str("on-the-fly")),
                ("explored", as_num(outcome.stats.arena_subsets)),
            ];
            if let Some(witness) = outcome.witness {
                let trace = Json::Arr(witness.trace.iter().map(Json::str).collect());
                let refusal = witness.refusal.map_or(Json::Null, |set| {
                    Json::Arr(set.iter().map(Json::str).collect())
                });
                fields.push((
                    "witness",
                    Json::obj([("trace", trace), ("refusal", refusal)]),
                ));
            }
            return Ok(Json::obj(fields));
        }
        let equivalent = self.coalescer.pair(&handle, &session, notion, p, q);
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("equivalent", Json::Bool(equivalent)),
            ("notion", Json::str(notion.to_string())),
            ("engine", Json::str("coalesced")),
        ]))
    }

    fn op_classify(&self, request: &Json) -> Result<Json, EquivError> {
        let (handle, session) = self.session_of(request)?;
        let notion = notion_field(request)?;
        let partition = self.coalescer.classify(&handle, &session, notion);
        let fsp = session.fsp();
        let blocks: Vec<Json> = partition
            .blocks()
            .iter()
            .map(|block| {
                Json::Arr(
                    block
                        .iter()
                        .map(|&i| Json::str(state_label(fsp, i.index())))
                        .collect(),
                )
            })
            .collect();
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("classes", as_num(partition.num_blocks())),
            ("blocks", Json::Arr(blocks)),
            ("notion", Json::str(notion.to_string())),
        ]))
    }

    fn op_partition(&self, request: &Json) -> Result<Json, EquivError> {
        let (handle, session) = self.session_of(request)?;
        let notion = notion_field(request)?;
        let partition = self.coalescer.classify(&handle, &session, notion);
        let fsp = session.fsp();
        let assignment = partition
            .assignment()
            .enumerate()
            .map(|(i, block)| (state_label(fsp, i), as_num(block)))
            .collect();
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("classes", as_num(partition.num_blocks())),
            ("assignment", Json::Obj(assignment)),
            ("notion", Json::str(notion.to_string())),
        ]))
    }

    fn op_mutate(&self, request: &Json) -> Result<Json, EquivError> {
        let id = str_field(request, "session")?.to_owned();
        let session = self.registry.get(&id)?;
        let additions = edge_list(&session, request, "add")?;
        let removals = edge_list(&session, request, "remove")?;
        // Unshare before mutating so the registry can apply the delta in
        // place instead of swapping in a rebuilt session.
        drop(session);
        let outcome = self.registry.mutate(&id, &additions, &removals)?;
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("added", as_num(outcome.effective_additions)),
            ("removed", as_num(outcome.effective_removals)),
            ("tau_touched", Json::Bool(outcome.tau_touched)),
            ("weak_rows_changed", as_num(outcome.weak_rows_changed)),
            ("view_patched", Json::Bool(outcome.view_patched)),
            ("arena_dropped", Json::Bool(outcome.arena_dropped)),
            (
                "partitions_delta_refined",
                as_num(outcome.partitions_delta_refined),
            ),
        ]))
    }

    fn op_close(&self, request: &Json) -> Result<Json, EquivError> {
        let id = str_field(request, "session")?;
        let closed = self.registry.close(id);
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("closed", Json::Bool(closed)),
        ]))
    }

    fn op_stats(&self) -> Json {
        let registry = self.registry.stats();
        let coalescer = self.coalescer.stats();
        Json::obj([
            ("ok", Json::Bool(true)),
            ("sessions", as_num(registry.sessions)),
            ("resident_bytes", as_num(registry.resident_bytes)),
            ("evictions", as_num(registry.evictions)),
            ("refinements", as_num(registry.refinements)),
            ("pair_queries", as_num(coalescer.pair_queries)),
            ("batches", as_num(coalescer.batches)),
            ("peak_batch", as_num(coalescer.peak_group)),
        ])
    }

    fn session_of(&self, request: &Json) -> Result<(String, Arc<EquivSession>), EquivError> {
        let id = str_field(request, "session")?;
        let session = self.registry.get(id)?;
        Ok((id.to_owned(), session))
    }
}

fn as_num(n: usize) -> Json {
    Json::Num(i64::try_from(n).unwrap_or(i64::MAX))
}

fn state_label(fsp: &Fsp, index: usize) -> String {
    let id = StateId::from_index(index);
    fsp.state_name(id)
        .map_or_else(|| fsp.state_label(id), str::to_owned)
}

fn str_field<'a>(request: &'a Json, key: &str) -> Result<&'a str, EquivError> {
    request
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| EquivError::bad_request(format!("missing string field {key:?}")))
}

fn notion_field(request: &Json) -> Result<Equivalence, EquivError> {
    Equivalence::from_str(str_field(request, "notion")?)
}

fn state_field(session: &EquivSession, request: &Json, key: &str) -> Result<StateId, EquivError> {
    resolve_state(session.fsp(), str_field(request, key)?)
}

fn resolve_state(fsp: &Fsp, name: &str) -> Result<StateId, EquivError> {
    if let Some(id) = fsp.state_by_name(name) {
        return Ok(id);
    }
    // Anonymous states (e.g. from the CCS representative construction) are
    // addressed by the same `s<i>` label that `classify` reports for them.
    if let Some(index) = name.strip_prefix('s').and_then(|d| d.parse().ok()) {
        let id = StateId::from_index(index);
        if fsp.contains_state(id) && fsp.state_name(id).is_none() {
            return Ok(id);
        }
    }
    Err(EquivError::bad_request(format!(
        "process has no state named {name:?}"
    )))
}

/// Parses a `mutate` edge list: an array of `[from, label, to]` name
/// triples, where the label is an action name or `"tau"`.  A missing field
/// is an empty list; a mutation rewires the existing state space and
/// alphabet, so unknown names are rejected rather than interned.
fn edge_list(
    session: &EquivSession,
    request: &Json,
    key: &str,
) -> Result<Vec<(StateId, Label, StateId)>, EquivError> {
    let Some(value) = request.get(key) else {
        return Ok(Vec::new());
    };
    let shape = || {
        EquivError::bad_request(format!(
            "field {key:?} must be an array of [from, label, to] name triples"
        ))
    };
    let fsp = session.fsp();
    value
        .as_arr()
        .ok_or_else(shape)?
        .iter()
        .map(|item| {
            let triple = item.as_arr().filter(|t| t.len() == 3).ok_or_else(shape)?;
            let part = |i: usize| triple[i].as_str().ok_or_else(shape);
            let from = resolve_state(fsp, part(0)?)?;
            let to = resolve_state(fsp, part(2)?)?;
            let label = match part(1)? {
                "tau" => Label::Tau,
                name => Label::Act(fsp.action_id(name).ok_or_else(|| {
                    EquivError::bad_request(format!("process has no action named {name:?}"))
                })?),
            };
            Ok((from, label, to))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open(service: &Service, text: &str) -> String {
        let escaped = Json::str(text).to_string();
        let response = service.handle_line(&format!(r#"{{"op":"open","text":{escaped}}}"#));
        let value = json::parse(&response).unwrap();
        assert_eq!(value.get("ok"), Some(&Json::Bool(true)), "{response}");
        value.get("session").unwrap().as_str().unwrap().to_owned()
    }

    #[test]
    fn open_pair_classify_close_round_trip() {
        let service = Service::default();
        let id = open(&service, "trans p tau q\ntrans q a r\ntrans s a t");

        let response = service.handle_line(&format!(
            r#"{{"op":"pair","session":"{id}","notion":"observational","left":"p","right":"s"}}"#
        ));
        let value = json::parse(&response).unwrap();
        assert_eq!(value.get("equivalent"), Some(&Json::Bool(true)));

        let response = service.handle_line(&format!(
            r#"{{"op":"classify","session":"{id}","notion":"observational"}}"#
        ));
        let value = json::parse(&response).unwrap();
        assert_eq!(value.get("classes").and_then(Json::as_i64), Some(2));

        let response = service.handle_line(&format!(
            r#"{{"op":"partition","session":"{id}","notion":"strong"}}"#
        ));
        let value = json::parse(&response).unwrap();
        let assignment = value.get("assignment").unwrap().as_obj().unwrap();
        assert_eq!(assignment.len(), 5);

        let response = service.handle_line(&format!(r#"{{"op":"close","session":"{id}"}}"#));
        let value = json::parse(&response).unwrap();
        assert_eq!(value.get("closed"), Some(&Json::Bool(true)));

        // The handle is now dead.
        let response = service.handle_line(&format!(
            r#"{{"op":"pair","session":"{id}","notion":"strong","left":"p","right":"q"}}"#
        ));
        let value = json::parse(&response).unwrap();
        assert_eq!(value.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            value.get("code").and_then(Json::as_str),
            Some("unknown-session")
        );
    }

    #[test]
    fn mutate_rewires_a_live_session() {
        let service = Service::default();
        let id = open(
            &service,
            "trans p tau q\ntrans q a r\ntrans s a t\ntrans u a v",
        );
        // Before the edit, s and u are observationally equivalent to p.
        let pair = |left: &str, right: &str| {
            let value = json::parse(&service.handle_line(&format!(
                r#"{{"op":"pair","session":"{id}","notion":"observational","left":"{left}","right":"{right}"}}"#
            )))
            .unwrap();
            value.get("equivalent").and_then(Json::as_bool).unwrap()
        };
        assert!(pair("p", "s"));
        // Rewire: s loses its a-edge to t and instead τ-steps to u.
        let value = json::parse(&service.handle_line(&format!(
            r#"{{"op":"mutate","session":"{id}","add":[["s","tau","u"]],"remove":[["s","a","t"]]}}"#
        )))
        .unwrap();
        assert_eq!(value.get("ok"), Some(&Json::Bool(true)), "{value:?}");
        assert_eq!(value.get("added").and_then(Json::as_i64), Some(1));
        assert_eq!(value.get("removed").and_then(Json::as_i64), Some(1));
        assert_eq!(value.get("tau_touched"), Some(&Json::Bool(true)));
        // Same handle, new answers: s still weakly does `a`, via u.
        assert!(pair("p", "s"));
        assert!(pair("s", "u"));

        // Unknown names are rejected without touching the session.
        for bad in [
            format!(r#"{{"op":"mutate","session":"{id}","add":[["zz","a","p"]]}}"#),
            format!(r#"{{"op":"mutate","session":"{id}","add":[["p","zap","q"]]}}"#),
            format!(r#"{{"op":"mutate","session":"{id}","add":["p a q"]}}"#),
        ] {
            let value = json::parse(&service.handle_line(&bad)).unwrap();
            assert_eq!(value.get("ok"), Some(&Json::Bool(false)), "{bad}");
            assert_eq!(
                value.get("code").and_then(Json::as_str),
                Some("bad-request"),
                "{bad}"
            );
        }
        let value = json::parse(
            &service.handle_line(r#"{"op":"mutate","session":"s999","add":[["p","a","q"]]}"#),
        )
        .unwrap();
        assert_eq!(
            value.get("code").and_then(Json::as_str),
            Some("unknown-session")
        );
    }

    #[test]
    fn ccs_expressions_open_via_the_representative_construction() {
        let service = Service::default();
        let response = service.handle_line(r#"{"op":"open","format":"ccs","text":"(a+b).c"}"#);
        let value = json::parse(&response).unwrap();
        assert_eq!(value.get("ok"), Some(&Json::Bool(true)), "{response}");
        assert!(value.get("states").and_then(Json::as_i64).unwrap() > 0);
    }

    #[test]
    fn every_failure_mode_has_its_stable_code() {
        let service = Service::default();
        let cases = [
            ("not json at all", "bad-request"),
            (r#"{"op":"warp"}"#, "bad-request"),
            (r#"{"op":"open","text":"trans"}"#, "process"),
            (r#"{"op":"open","format":"ccs","text":"((("}"#, "expression"),
            (
                r#"{"op":"pair","session":"s999","notion":"strong","left":"p","right":"q"}"#,
                "unknown-session",
            ),
        ];
        for (line, code) in cases {
            let value = json::parse(&service.handle_line(line)).unwrap();
            assert_eq!(value.get("ok"), Some(&Json::Bool(false)), "{line}");
            assert_eq!(
                value.get("code").and_then(Json::as_str),
                Some(code),
                "{line}"
            );
        }
        // Unknown notion and unknown state need a live session.
        let id = open(&service, "trans p a q");
        let value = json::parse(&service.handle_line(&format!(
            r#"{{"op":"pair","session":"{id}","notion":"telepathy","left":"p","right":"q"}}"#
        )))
        .unwrap();
        assert_eq!(
            value.get("code").and_then(Json::as_str),
            Some("unknown-notion")
        );
        let value = json::parse(&service.handle_line(&format!(
            r#"{{"op":"pair","session":"{id}","notion":"strong","left":"p","right":"zz"}}"#
        )))
        .unwrap();
        assert_eq!(
            value.get("code").and_then(Json::as_str),
            Some("bad-request")
        );
    }

    #[test]
    fn oversize_determinizable_pairs_route_on_the_fly() {
        // Threshold 0: every eligible pair query takes the on-the-fly path.
        let service = Service::with_otf_threshold(RegistryConfig::default(), 0);
        let id = open(
            &service,
            "trans p a q\ntrans p a r\ntrans q b s\ntrans r c s\n\
             trans u a v\ntrans v b w\ntrans v c w\naccept p q r s u v w",
        );
        // a.b + a.c vs a.(b + c): trace-equivalent…
        let value = json::parse(&service.handle_line(&format!(
            r#"{{"op":"pair","session":"{id}","notion":"trace","left":"p","right":"u"}}"#
        )))
        .unwrap();
        assert_eq!(value.get("equivalent"), Some(&Json::Bool(true)));
        assert_eq!(
            value.get("engine").and_then(Json::as_str),
            Some("on-the-fly")
        );
        assert!(value.get("witness").is_none());
        // …but failure-inequivalent, with a replayable witness in the
        // response: the trace "a" plus a non-empty refusal set.
        let value = json::parse(&service.handle_line(&format!(
            r#"{{"op":"pair","session":"{id}","notion":"failure","left":"p","right":"u"}}"#
        )))
        .unwrap();
        assert_eq!(value.get("equivalent"), Some(&Json::Bool(false)));
        let witness = value.get("witness").expect("refutation carries a witness");
        let trace = witness.get("trace").unwrap();
        assert_eq!(trace, &Json::Arr(vec![Json::str("a")]));
        assert!(matches!(witness.get("refusal"), Some(Json::Arr(set)) if !set.is_empty()));
        // Branching-time notions still use the coalescer regardless of size.
        let value = json::parse(&service.handle_line(&format!(
            r#"{{"op":"pair","session":"{id}","notion":"observational","left":"p","right":"u"}}"#
        )))
        .unwrap();
        assert_eq!(
            value.get("engine").and_then(Json::as_str),
            Some("coalesced")
        );
    }

    #[test]
    fn undersize_models_stay_on_the_coalesced_path() {
        let service = Service::with_otf_threshold(RegistryConfig::default(), 1_000_000);
        let id = open(&service, "trans p a q\ntrans r a q\naccept p q r");
        let value = json::parse(&service.handle_line(&format!(
            r#"{{"op":"pair","session":"{id}","notion":"trace","left":"p","right":"r"}}"#
        )))
        .unwrap();
        assert_eq!(value.get("equivalent"), Some(&Json::Bool(true)));
        assert_eq!(
            value.get("engine").and_then(Json::as_str),
            Some("coalesced")
        );
    }

    #[test]
    fn stats_report_coalescing_counters() {
        let service = Service::default();
        let id = open(&service, "trans p a q\ntrans r a q");
        for _ in 0..3 {
            let _ = service.handle_line(&format!(
                r#"{{"op":"pair","session":"{id}","notion":"strong","left":"p","right":"r"}}"#
            ));
        }
        let value = json::parse(&service.handle_line(r#"{"op":"stats"}"#)).unwrap();
        assert_eq!(value.get("sessions").and_then(Json::as_i64), Some(1));
        assert_eq!(value.get("pair_queries").and_then(Json::as_i64), Some(3));
        // All three sequential queries hit the session cache after the
        // first: exactly one refinement ever ran.
        assert_eq!(value.get("refinements").and_then(Json::as_i64), Some(1));
        assert!(value.get("resident_bytes").and_then(Json::as_i64).unwrap() > 0);
    }
}
