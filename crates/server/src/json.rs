//! A minimal JSON value type with a parser and serializer.
//!
//! The container has no serialization dependency, and the wire protocol
//! needs only a small, fixed vocabulary: objects, arrays, strings, signed
//! integers, booleans and `null`.  Floating-point numbers are deliberately
//! rejected — nothing in the protocol is fractional, and refusing them keeps
//! responses byte-deterministic (no float formatting questions).
//!
//! Objects preserve a canonical order (`BTreeMap`), so serializing a value
//! always produces the same bytes — the concurrency tests rely on
//! byte-identical responses across threads.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value (integers only — see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (the protocol has no fractional numbers).
    Num(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in canonical (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<I>(pairs: I) -> Json
    where
        I: IntoIterator<Item = (&'static str, Json)>,
    {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value under `key`, if this is an object that has it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an integer, if it is a number.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as an array slice, if it is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// This value as an object map, if it is one.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    write!(f, ":{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parses one JSON value from `text`, requiring it to consume the whole
/// input (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a human-readable description of the first syntax problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected character {:?} at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(format!(
                "floating-point numbers are not supported (byte {})",
                self.pos
            ));
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits and minus are ASCII");
        text.parse()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_owned())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate must
                                // follow to form one astral code point.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err("invalid low surrogate".to_owned());
                                }
                                let point = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(point)
                                    .ok_or_else(|| "invalid surrogate pair".to_owned())?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| format!("invalid code point \\u{unit:04x}"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(format!("invalid escape \\{}", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one whole UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_owned())?;
                    let c = rest.chars().next().expect("peek saw a byte");
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control character at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_owned());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "invalid \\u escape".to_owned())?;
        let unit =
            u32::from_str_radix(text, 16).map_err(|_| format!("invalid \\u escape {text:?}"))?;
        self.pos = end;
        Ok(unit)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_protocol_vocabulary() {
        let text = r#"{"op":"pair","session":"s1","left":"p","depth":3,"flags":[true,false,null]}"#;
        let value = parse(text).unwrap();
        assert_eq!(value.get("op").and_then(Json::as_str), Some("pair"));
        assert_eq!(value.get("depth").and_then(Json::as_i64), Some(3));
        assert_eq!(parse(&value.to_string()).unwrap(), value);
    }

    #[test]
    fn serialization_is_canonical() {
        let a = parse(r#"{"b":1,"a":2}"#).unwrap();
        let b = parse(r#"{ "a" : 2 , "b" : 1 }"#).unwrap();
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(a.to_string(), r#"{"a":2,"b":1}"#);
    }

    #[test]
    fn escapes_round_trip() {
        let original = Json::str("line\nbreak \"quoted\" tab\t\\ ünicode \u{1F980}");
        let parsed = parse(&original.to_string()).unwrap();
        assert_eq!(parsed, original);
        // Explicit surrogate-pair escape decodes to the astral character.
        assert_eq!(parse("\"\\uD83E\\uDD80\"").unwrap(), Json::str("\u{1F980}"));
    }

    #[test]
    fn rejects_floats_and_garbage() {
        assert!(parse("1.5").is_err());
        assert!(parse("1e3").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn negative_numbers_and_nesting() {
        let v = parse(r#"{"xs":[[-1],[0,9223372036854775807]]}"#).unwrap();
        let xs = v.get("xs").and_then(Json::as_arr).unwrap();
        assert_eq!(xs[0].as_arr().unwrap()[0].as_i64(), Some(-1));
        assert_eq!(xs[1].as_arr().unwrap()[1].as_i64(), Some(i64::MAX));
    }
}
