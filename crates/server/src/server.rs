//! The TCP front end: line-oriented JSON over `std::net`, one thread per
//! connection, all connections sharing one [`Service`].

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use crate::protocol::Service;

/// A bound (but not yet serving) equivalence server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
}

/// A server running on a background thread (used by tests and in-process
/// embedding; the accept loop never returns, so the handle is detached on
/// drop).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    _thread: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The address clients should connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service (for asserting on stats from outside).
    #[must_use]
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) in front of
    /// `service`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, service: Service) -> io::Result<Self> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service: Arc::new(service),
        })
    }

    /// The bound local address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared service.
    #[must_use]
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Serves forever on the calling thread: accepts connections and spawns
    /// one handler thread each.
    ///
    /// # Errors
    ///
    /// Returns the first accept error (transient per-connection I/O errors
    /// are swallowed by the per-connection threads).
    pub fn run(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            let stream = stream?;
            let service = Arc::clone(&self.service);
            thread::spawn(move || {
                // A torn-down client mid-response is not a server error.
                let _ = serve_connection(&service, stream);
            });
        }
        Ok(())
    }

    /// Moves the accept loop onto a background thread, returning the
    /// resolved address and shared service.
    ///
    /// # Errors
    ///
    /// Propagates the local-address query failure.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let service = Arc::clone(&self.service);
        let thread = thread::spawn(move || self.run());
        Ok(ServerHandle {
            addr,
            service,
            _thread: thread,
        })
    }
}

fn serve_connection(service: &Service, stream: TcpStream) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = service.handle_line(&line);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_a_round_trip_over_tcp() {
        let handle = Server::bind("127.0.0.1:0", Service::default())
            .unwrap()
            .spawn()
            .unwrap();
        let mut client = crate::client::Client::connect(handle.addr()).unwrap();
        assert!(client.ping().unwrap());
        let opened = client.open_fsp("trans p tau q\ntrans q a r").unwrap();
        assert_eq!(opened.states, 3);
        assert!(client
            .pair(&opened.session, "observational", "p", "q")
            .unwrap());
        assert!(client.close_session(&opened.session).unwrap());
    }

    #[test]
    fn blank_lines_are_ignored_and_connections_are_independent() {
        let handle = Server::bind("127.0.0.1:0", Service::default())
            .unwrap()
            .spawn()
            .unwrap();
        let mut a = crate::client::Client::connect(handle.addr()).unwrap();
        let opened = a.open_fsp("trans p a q").unwrap();
        // A second connection sees the same registry.
        let mut b = crate::client::Client::connect(handle.addr()).unwrap();
        assert!(b.pair(&opened.session, "strong", "p", "p").unwrap());
    }
}
