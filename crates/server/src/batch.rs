//! The batching layer: concurrent pair queries on the same
//! `(session, notion)` coalesce into **one** `classify_all` refinement.
//!
//! The session engine already single-flights its partition memo (racing
//! callers of [`EquivSession::partition_with`] block on one `OnceLock`), so
//! correctness never depends on this layer.  What the [`Coalescer`] adds is
//! the *service-level* grouping and its observability: every pair query
//! joins a group keyed by `(session handle, notion)`; the first member of a
//! group runs the classification, everyone else shares the resulting
//! partition; and the server's `stats` op reports how many queries were
//! served, how many batches actually computed, and the largest group —
//! evidence that `m` concurrent queries cost one refinement, not `m`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use ccs_equiv::{EquivSession, Equivalence};
use ccs_fsp::StateId;
use ccs_partition::Partition;

#[derive(Debug, Default)]
struct Group {
    cell: OnceLock<Arc<Partition>>,
    members: AtomicUsize,
}

/// Coalesces concurrent classification demand per `(session, notion)`.
#[derive(Debug, Default)]
pub struct Coalescer {
    groups: Mutex<HashMap<(String, Equivalence), Arc<Group>>>,
    queries: AtomicUsize,
    batches: AtomicUsize,
    peak_group: AtomicUsize,
}

/// Counters reported by the server's `stats` op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoalescerStats {
    /// Pair queries served through the batching layer.
    pub pair_queries: usize,
    /// Classifications that actually executed (group leaders).
    pub batches: usize,
    /// Largest number of queries that shared one group.
    pub peak_group: usize,
}

impl Coalescer {
    /// A fresh coalescer with zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Coalescer::default()
    }

    /// The `notion`-partition of `session`, grouped under the session's
    /// `handle`: concurrent callers with the same key share one
    /// computation.
    pub fn classify(
        &self,
        handle: &str,
        session: &EquivSession,
        notion: Equivalence,
    ) -> Arc<Partition> {
        let key = (handle.to_owned(), notion);
        let group = {
            let mut groups = self.groups.lock().expect("coalescer lock poisoned");
            Arc::clone(groups.entry(key.clone()).or_default())
        };
        let members = group.members.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak_group.fetch_max(members, Ordering::SeqCst);
        let partition = Arc::clone(group.cell.get_or_init(|| {
            self.batches.fetch_add(1, Ordering::SeqCst);
            session.classify_all(notion)
        }));
        // Last member out dissolves the group so a later wave starts fresh
        // (its leader then hits the session's partition cache, costing no
        // second refinement).
        if group.members.fetch_sub(1, Ordering::SeqCst) == 1 {
            let mut groups = self.groups.lock().expect("coalescer lock poisoned");
            if let Some(current) = groups.get(&key) {
                if Arc::ptr_eq(current, &group) {
                    groups.remove(&key);
                }
            }
        }
        partition
    }

    /// Answers one pair query from the coalesced partition.
    pub fn pair(
        &self,
        handle: &str,
        session: &EquivSession,
        notion: Equivalence,
        p: StateId,
        q: StateId,
    ) -> bool {
        self.queries.fetch_add(1, Ordering::SeqCst);
        self.classify(handle, session, notion)
            .same_block(p.index(), q.index())
    }

    /// Point-in-time counters.
    #[must_use]
    pub fn stats(&self) -> CoalescerStats {
        CoalescerStats {
            pair_queries: self.queries.load(Ordering::SeqCst),
            batches: self.batches.load(Ordering::SeqCst),
            peak_group: self.peak_group.load(Ordering::SeqCst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_fsp::format;

    fn session() -> EquivSession {
        EquivSession::new(format::parse("trans p tau q\ntrans q a r\ntrans s a t").unwrap())
    }

    #[test]
    fn concurrent_pairs_coalesce_into_one_refinement() {
        let session = session();
        let coalescer = Coalescer::new();
        let fsp = session.fsp().clone();
        let p = fsp.state_by_name("p").unwrap();
        let s = fsp.state_by_name("s").unwrap();
        let r = fsp.state_by_name("r").unwrap();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let (coalescer, session) = (&coalescer, &session);
                scope.spawn(move || {
                    for _ in 0..50 {
                        assert!(coalescer.pair("s1", session, Equivalence::Observational, p, s));
                        assert!(!coalescer.pair("s1", session, Equivalence::Observational, p, r));
                    }
                });
            }
        });
        let stats = coalescer.stats();
        assert_eq!(stats.pair_queries, 8 * 100);
        // The underlying session ran the refinement exactly once; the
        // coalescer may have formed several short-lived groups (each later
        // leader hits the session cache), but never more batches than
        // queries and at least one.
        assert_eq!(session.refinements_run(), 1);
        assert!(stats.batches >= 1);
    }

    #[test]
    fn distinct_notions_form_distinct_batches() {
        let session = session();
        let coalescer = Coalescer::new();
        let p = session.fsp().state_by_name("p").unwrap();
        let q = session.fsp().state_by_name("q").unwrap();
        let _ = coalescer.pair("s1", &session, Equivalence::Strong, p, q);
        let _ = coalescer.pair("s1", &session, Equivalence::Observational, p, q);
        let stats = coalescer.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.pair_queries, 2);
        assert!(stats.peak_group >= 1);
    }
}
