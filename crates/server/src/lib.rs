//! Equivalence-as-a-service for the Kanellakis–Smolka stack.
//!
//! `ccs-server` puts the [`ccs_equiv`] session engine behind a line-oriented
//! JSON protocol over TCP: clients `open` a process (the `trans`/`accept`
//! text format or a CCS star expression), receive a session handle, and ask
//! `pair` / `classify` / `partition` questions under any equivalence notion
//! the library supports.  The pieces compose as:
//!
//! * [`json`] — a dependency-free JSON value/parser/serializer (integers
//!   only; canonical key order, so responses are byte-deterministic).
//! * [`registry`] — named, shareable sessions (`Arc<EquivSession>`; the
//!   session engine is `Sync`) with LRU eviction under a resident-byte
//!   budget.
//! * [`batch`] — the coalescing layer: concurrent pair queries on one
//!   `(session, notion)` share a single `classify_all` refinement, with
//!   counters proving it.
//! * [`protocol`] — the request/response vocabulary and dispatch
//!   ([`Service::handle_line`]: one JSON line in, one JSON line out).
//! * [`server`] — the `std::net` front end, one thread per connection.
//! * [`client`] — a blocking [`Client`] used by the examples, the smoke
//!   binary, and the concurrency tests.
//!
//! The wire protocol — request/response shapes, the stable error-code
//! table, eviction/coalescing/on-the-fly routing semantics, and a real
//! transcript — is specified in `docs/PROTOCOL.md` at the repository root;
//! `ARCHITECTURE.md` places the server in the workspace data flow.
//!
//! ```
//! use ccs_server::{Server, Service, Client};
//!
//! let server = Server::bind("127.0.0.1:0", Service::default())?;
//! let handle = server.spawn()?;
//! let mut client = Client::connect(handle.addr())?;
//! let opened = client.open_fsp("trans p tau q\ntrans q a r\ntrans s a t")?;
//! assert!(client.pair(&opened.session, "observational", "p", "s")?);
//! assert_eq!(client.classify(&opened.session, "observational")?.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod client;
pub mod json;
pub mod protocol;
pub mod registry;
pub mod server;

pub use batch::{Coalescer, CoalescerStats};
pub use client::{Client, ClientError, OpenedSession, ServerStats};
pub use json::Json;
pub use protocol::Service;
pub use registry::{Registry, RegistryConfig, RegistryStats};
pub use server::{Server, ServerHandle};
