//! The session registry: named, shareable [`EquivSession`]s with LRU
//! eviction under a byte budget.
//!
//! Sessions are handed out as `Arc<EquivSession>` — the session engine is
//! `Sync`, so connection threads query a shared session concurrently while
//! the registry lock is held only for the map lookup, never for the
//! refinement itself.  Resident size is tracked with
//! [`EquivSession::approx_resident_bytes`], which grows as a session
//! materializes its caches; the budget is re-checked on every `open`, so a
//! registry full of warm sessions evicts the least-recently-touched ones
//! first.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use ccs_equiv::{EquivError, EquivSession, SessionDeltaOutcome};
use ccs_fsp::{Fsp, Label, StateId};

/// Capacity limits for a [`Registry`].
#[derive(Clone, Copy, Debug)]
pub struct RegistryConfig {
    /// Maximum number of live sessions; opening one more evicts the LRU.
    pub max_sessions: usize,
    /// Approximate resident-byte budget across all sessions (see
    /// [`EquivSession::approx_resident_bytes`]).
    pub max_bytes: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            max_sessions: 64,
            max_bytes: 256 << 20,
        }
    }
}

#[derive(Debug)]
struct Entry {
    session: Arc<EquivSession>,
    touched: u64,
}

#[derive(Debug, Default)]
struct Inner {
    sessions: HashMap<String, Entry>,
    clock: u64,
    next_id: u64,
}

/// A registry of open sessions, keyed by server-assigned handles (`"s1"`,
/// `"s2"`, …).
#[derive(Debug)]
pub struct Registry {
    config: RegistryConfig,
    inner: Mutex<Inner>,
    evictions: AtomicUsize,
}

/// A point-in-time summary of the registry, reported by the `stats` op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegistryStats {
    /// Number of live sessions.
    pub sessions: usize,
    /// Sum of the sessions' approximate resident bytes.
    pub resident_bytes: usize,
    /// Sessions evicted under pressure since the registry was created.
    pub evictions: usize,
    /// Sum of [`EquivSession::refinements_run`] across live sessions — the
    /// coalescing evidence: it counts partition computations that actually
    /// executed, not queries served.
    pub refinements: usize,
}

impl Registry {
    /// An empty registry with the given limits.
    #[must_use]
    pub fn new(config: RegistryConfig) -> Self {
        Registry {
            config,
            inner: Mutex::new(Inner::default()),
            evictions: AtomicUsize::new(0),
        }
    }

    /// An empty registry with [`RegistryConfig::default`] limits.
    #[must_use]
    pub fn with_defaults() -> Self {
        Registry::new(RegistryConfig::default())
    }

    /// Opens a session over `fsp`, returning its handle and the shared
    /// session.  May evict least-recently-used sessions to respect the
    /// configured limits (the new session itself is never evicted).
    pub fn open(&self, fsp: Fsp) -> (String, Arc<EquivSession>) {
        let session = Arc::new(EquivSession::new(fsp));
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        inner.next_id += 1;
        inner.clock += 1;
        let id = format!("s{}", inner.next_id);
        let touched = inner.clock;
        inner.sessions.insert(
            id.clone(),
            Entry {
                session: Arc::clone(&session),
                touched,
            },
        );
        self.evict_to_fit(&mut inner, &id);
        (id, session)
    }

    /// Evicts LRU entries (sparing `keep`) until both limits hold.
    fn evict_to_fit(&self, inner: &mut Inner, keep: &str) {
        loop {
            let over_count = inner.sessions.len() > self.config.max_sessions;
            let over_bytes = inner
                .sessions
                .values()
                .map(|e| e.session.approx_resident_bytes())
                .sum::<usize>()
                > self.config.max_bytes;
            if !(over_count || over_bytes) {
                return;
            }
            let victim = inner
                .sessions
                .iter()
                .filter(|(id, _)| id.as_str() != keep)
                .min_by_key(|(_, entry)| entry.touched)
                .map(|(id, _)| id.clone());
            match victim {
                Some(id) => {
                    inner.sessions.remove(&id);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                // Only the protected newcomer is left; the budget simply
                // cannot be met for this process — serve it anyway.
                None => return,
            }
        }
    }

    /// Looks up a session and marks it most-recently-used.
    ///
    /// # Errors
    ///
    /// [`EquivError::UnknownSession`] if the handle was never issued, was
    /// closed, or has been evicted.
    pub fn get(&self, id: &str) -> Result<Arc<EquivSession>, EquivError> {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        inner.clock += 1;
        let now = inner.clock;
        match inner.sessions.get_mut(id) {
            Some(entry) => {
                entry.touched = now;
                Ok(Arc::clone(&entry.session))
            }
            None => Err(EquivError::UnknownSession { id: id.to_owned() }),
        }
    }

    /// Applies an edge delta to the named session **in place** — the
    /// `mutate` op.  The session keeps its handle and, via
    /// [`EquivSession::apply_delta`], every cache the delta does not
    /// invalidate (τ-closure, patched saturated view, delta-refined
    /// partitions, untouched subset arena).
    ///
    /// `apply_delta` needs exclusive ownership; if connection threads still
    /// hold clones of the `Arc`, a detached session is rebuilt over the
    /// mutated process and swapped in — in-flight queries finish against
    /// the pre-delta snapshot, later lookups see the new one.  This is the
    /// one registry call that may do session work under the registry lock;
    /// mutations are assumed rare next to queries.
    ///
    /// # Errors
    ///
    /// [`EquivError::UnknownSession`] if the handle was never issued, was
    /// closed, or has been evicted.
    pub fn mutate(
        &self,
        id: &str,
        additions: &[(StateId, Label, StateId)],
        removals: &[(StateId, Label, StateId)],
    ) -> Result<SessionDeltaOutcome, EquivError> {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        inner.clock += 1;
        let now = inner.clock;
        let mut entry = inner
            .sessions
            .remove(id)
            .ok_or_else(|| EquivError::UnknownSession { id: id.to_owned() })?;
        let outcome = match Arc::try_unwrap(entry.session) {
            Ok(mut session) => {
                let outcome = session.apply_delta(additions, removals);
                entry.session = Arc::new(session);
                outcome
            }
            Err(shared) => {
                let mut session =
                    EquivSession::with_algorithm(shared.fsp().clone(), shared.default_algorithm());
                let outcome = session.apply_delta(additions, removals);
                entry.session = Arc::new(session);
                outcome
            }
        };
        entry.touched = now;
        inner.sessions.insert(id.to_owned(), entry);
        Ok(outcome)
    }

    /// Closes a session; `true` if it existed.
    pub fn close(&self, id: &str) -> bool {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        inner.sessions.remove(id).is_some()
    }

    /// Number of live sessions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("registry lock poisoned")
            .sessions
            .len()
    }

    /// Whether the registry holds no sessions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time stats over the live sessions.
    #[must_use]
    pub fn stats(&self) -> RegistryStats {
        let inner = self.inner.lock().expect("registry lock poisoned");
        let (mut bytes, mut refinements) = (0, 0);
        for entry in inner.sessions.values() {
            bytes += entry.session.approx_resident_bytes();
            refinements += entry.session.refinements_run();
        }
        RegistryStats {
            sessions: inner.sessions.len(),
            resident_bytes: bytes,
            evictions: self.evictions.load(Ordering::Relaxed),
            refinements,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_equiv::Equivalence;
    use ccs_fsp::format;

    fn small_fsp(tag: usize) -> Fsp {
        format::parse(&format!("trans p{tag} a q{tag}\ntrans q{tag} b p{tag}")).unwrap()
    }

    #[test]
    fn handles_are_unique_and_resolvable() {
        let registry = Registry::with_defaults();
        let (a, _) = registry.open(small_fsp(0));
        let (b, _) = registry.open(small_fsp(1));
        assert_ne!(a, b);
        assert!(registry.get(&a).is_ok());
        assert!(registry.get(&b).is_ok());
        assert_eq!(registry.len(), 2);
        assert!(registry.close(&a));
        assert!(!registry.close(&a));
        let err = registry.get(&a).unwrap_err();
        assert_eq!(err.code(), "unknown-session");
    }

    #[test]
    fn session_count_limit_evicts_lru() {
        let registry = Registry::new(RegistryConfig {
            max_sessions: 2,
            max_bytes: usize::MAX,
        });
        let (a, _) = registry.open(small_fsp(0));
        let (b, _) = registry.open(small_fsp(1));
        // Touch `a` so `b` becomes the LRU.
        registry.get(&a).unwrap();
        let (c, _) = registry.open(small_fsp(2));
        assert_eq!(registry.len(), 2);
        assert!(registry.get(&a).is_ok());
        assert!(registry.get(&b).is_err(), "LRU session should be evicted");
        assert!(registry.get(&c).is_ok());
        assert_eq!(registry.stats().evictions, 1);
    }

    #[test]
    fn byte_budget_evicts_warm_sessions_but_never_the_newcomer() {
        let registry = Registry::new(RegistryConfig {
            max_sessions: usize::MAX,
            max_bytes: 1, // nothing fits
        });
        let (a, sa) = registry.open(small_fsp(0));
        // Warm `a` so it holds caches (and more resident bytes).
        let _ = sa.classify_all(Equivalence::Observational);
        assert!(
            registry.get(&a).is_ok(),
            "sole session survives over-budget"
        );
        let (b, _) = registry.open(small_fsp(1));
        // Opening `b` must evict `a` (budget broken) but keep `b` itself.
        assert!(registry.get(&a).is_err());
        assert!(registry.get(&b).is_ok());
    }

    #[test]
    fn mutate_rewires_a_session_in_place() {
        let registry = Registry::with_defaults();
        let (id, session) = registry.open(small_fsp(0));
        let f = session.fsp().clone();
        let (p, q) = (
            f.state_by_name("p0").unwrap(),
            f.state_by_name("q0").unwrap(),
        );
        let a = Label::Act(f.action_id("a").unwrap());
        assert!(!session.equivalent_states(p, q, Equivalence::Strong));
        // Unshare so the registry mutates in place, then make the two states
        // symmetric: q0 gains a's and loses b's mirror.
        drop(session);
        let b = Label::Act(f.action_id("b").unwrap());
        let outcome = registry
            .mutate(&id, &[(q, a, p)], &[(q, b, p)])
            .expect("live session");
        assert_eq!(outcome.effective_additions, 1);
        assert_eq!(outcome.effective_removals, 1);
        let session = registry.get(&id).unwrap();
        assert!(session.equivalent_states(p, q, Equivalence::Strong));
        // A still-shared session is swapped, not blocked on.
        let outcome = registry.mutate(&id, &[(q, b, p)], &[]).unwrap();
        assert_eq!(outcome.effective_additions, 1);
        assert!(!registry
            .get(&id)
            .unwrap()
            .equivalent_states(p, q, Equivalence::Strong));
        assert!(registry.mutate("nope", &[], &[]).is_err());
    }

    #[test]
    fn stats_aggregate_refinements() {
        let registry = Registry::with_defaults();
        let (_, s1) = registry.open(small_fsp(0));
        let (_, s2) = registry.open(small_fsp(1));
        let _ = s1.classify_all(Equivalence::Strong);
        let _ = s1.classify_all(Equivalence::Strong); // cached, not re-run
        let _ = s2.classify_all(Equivalence::Strong);
        let stats = registry.stats();
        assert_eq!(stats.sessions, 2);
        assert_eq!(stats.refinements, 2);
        assert!(stats.resident_bytes > 0);
    }
}
