//! The `ccs-client` binary: drive a running `ccs-server`.
//!
//! ```text
//! ccs-client ADDR ping    # liveness check
//! ccs-client ADDR demo    # scripted end-to-end check; exit 1 on any mismatch
//! ccs-client ADDR stats   # print the server's counters
//! ```
//!
//! `demo` is the CI smoke test: it opens the paper's classic
//! `a.(b + c)` vs `a.b + a.c` pair plus a τ-absorption process, asks a fixed
//! battery of questions across notions, and verifies every answer against
//! the known truth — a wrong verdict, an unexpected error, or a transport
//! failure exits non-zero.

use std::process::ExitCode;

use ccs_server::{Client, ClientError};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, command) = match args.as_slice() {
        [addr] => (addr.as_str(), "demo"),
        [addr, command] => (addr.as_str(), command.as_str()),
        _ => {
            eprintln!("usage: ccs-client ADDR [ping|demo|stats]");
            return ExitCode::FAILURE;
        }
    };
    let result = match command {
        "ping" => ping(addr),
        "demo" => demo(addr),
        "stats" => stats(addr),
        other => {
            eprintln!("ccs-client: unknown command {other:?} (expected ping, demo, or stats)");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ccs-client: {e}");
            ExitCode::FAILURE
        }
    }
}

fn ping(addr: &str) -> Result<(), ClientError> {
    let mut client = Client::connect(addr)?;
    if client.ping()? {
        println!("pong");
        Ok(())
    } else {
        Err(ClientError::Protocol("ping did not pong".to_owned()))
    }
}

fn stats(addr: &str) -> Result<(), ClientError> {
    let mut client = Client::connect(addr)?;
    let stats = client.stats()?;
    println!(
        "sessions={} resident_bytes={} evictions={} refinements={} \
         pair_queries={} batches={} peak_batch={}",
        stats.sessions,
        stats.resident_bytes,
        stats.evictions,
        stats.refinements,
        stats.pair_queries,
        stats.batches,
        stats.peak_batch,
    );
    Ok(())
}

/// One expected verdict of the scripted battery.
struct Expectation {
    notion: &'static str,
    left: &'static str,
    right: &'static str,
    equivalent: bool,
}

fn demo(addr: &str) -> Result<(), ClientError> {
    let mut client = Client::connect(addr)?;
    client.ping()?;

    // The classic pair: a.(b + c)  vs  a.b + a.c, as one disjoint process.
    let classic = client.open_fsp(
        "trans p a q\ntrans q b r\ntrans q c s\naccept p q r s\n\
         trans u a v\ntrans u a w\ntrans v b x\ntrans w c y\naccept u v w x y",
    )?;
    println!(
        "opened {} ({} states, {} transitions)",
        classic.session, classic.states, classic.transitions
    );
    let battery = [
        Expectation {
            notion: "language",
            left: "p",
            right: "u",
            equivalent: true,
        },
        Expectation {
            notion: "trace",
            left: "p",
            right: "u",
            equivalent: true,
        },
        Expectation {
            notion: "failure",
            left: "p",
            right: "u",
            equivalent: false,
        },
        Expectation {
            notion: "observational",
            left: "p",
            right: "u",
            equivalent: false,
        },
        Expectation {
            notion: "strong",
            left: "p",
            right: "u",
            equivalent: false,
        },
    ];
    for case in &battery {
        let got = client.pair(&classic.session, case.notion, case.left, case.right)?;
        println!(
            "  {} {} ~ {} -> {}",
            case.notion, case.left, case.right, got
        );
        if got != case.equivalent {
            return Err(ClientError::Protocol(format!(
                "{} verdict for {}/{} should be {}",
                case.notion, case.left, case.right, case.equivalent
            )));
        }
    }

    // τ-absorption: τ.a ≈ a but not ~.
    let tau = client.open_fsp("trans p tau q\ntrans q a r\ntrans s a t")?;
    if !client.pair(&tau.session, "observational", "p", "s")? {
        return Err(ClientError::Protocol(
            "tau prefix should be absorbed under observational equivalence".to_owned(),
        ));
    }
    if client.pair(&tau.session, "strong", "p", "s")? {
        return Err(ClientError::Protocol(
            "tau prefix should be visible under strong equivalence".to_owned(),
        ));
    }
    let classes = client.classify(&tau.session, "observational")?;
    println!("  observational classes of tau process: {classes:?}");
    if classes.len() != 2 {
        return Err(ClientError::Protocol(format!(
            "expected 2 observational classes, got {}",
            classes.len()
        )));
    }

    // Mutate the τ process in place: drop the τ prefix and wire p straight
    // to r by `a`.  Same handle, and the strong verdict flips — p and s now
    // both do exactly one `a` into a dead state.
    let (added, removed) = client.mutate(&tau.session, &[("p", "a", "r")], &[("p", "tau", "q")])?;
    println!("  mutate on {}: +{added} -{removed}", tau.session);
    if (added, removed) != (1, 1) {
        return Err(ClientError::Protocol(format!(
            "mutate should apply 1 addition and 1 removal, got +{added} -{removed}"
        )));
    }
    if !client.pair(&tau.session, "strong", "p", "s")? {
        return Err(ClientError::Protocol(
            "after the mutation p and s should be strongly equivalent".to_owned(),
        ));
    }
    match client.mutate(&tau.session, &[("p", "zap", "q")], &[]) {
        Err(ClientError::Server { code, .. }) if code == "bad-request" => {}
        other => {
            return Err(ClientError::Protocol(format!(
                "mutating an unknown action should be a bad-request, got {other:?}"
            )))
        }
    }

    // A CCS star expression through the representative construction; its
    // anonymous states answer to their reported `s<i>` labels.
    let expr = client.open_ccs("(a+b).c")?;
    if !client.pair(&expr.session, "strong", "s0", "s0")? {
        return Err(ClientError::Protocol(
            "reflexivity failed on the CCS representative".to_owned(),
        ));
    }

    // The error path keeps its stable code.
    match client.pair("s999999", "strong", "p", "q") {
        Err(ClientError::Server { code, .. }) if code == "unknown-session" => {}
        other => {
            return Err(ClientError::Protocol(format!(
                "expected unknown-session error, got {other:?}"
            )))
        }
    }

    let stats = client.stats()?;
    println!(
        "server stats: sessions={} refinements={} pair_queries={} batches={}",
        stats.sessions, stats.refinements, stats.pair_queries, stats.batches
    );
    println!("demo OK");
    Ok(())
}
