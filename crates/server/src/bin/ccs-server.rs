//! The `ccs-server` binary: serve equivalence queries over TCP.
//!
//! ```text
//! ccs-server [ADDR] [--max-sessions N] [--max-bytes N]
//! ```
//!
//! `ADDR` defaults to `127.0.0.1:7878`; use port `0` for an ephemeral port.
//! The resolved address is printed as `listening on ADDR` once the socket is
//! bound, so scripts can scrape it.

use std::process::ExitCode;

use ccs_server::{RegistryConfig, Server, Service};

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut config = RegistryConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("usage: ccs-server [ADDR] [--max-sessions N] [--max-bytes N]");
                return ExitCode::SUCCESS;
            }
            "--max-sessions" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.max_sessions = n,
                None => return usage_error("--max-sessions needs a number"),
            },
            "--max-bytes" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.max_bytes = n,
                None => return usage_error("--max-bytes needs a number"),
            },
            other if !other.starts_with('-') => addr = other.to_owned(),
            other => return usage_error(&format!("unknown flag {other:?}")),
        }
    }
    let server = match Server::bind(&addr, Service::new(config)) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("ccs-server: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(resolved) => println!("listening on {resolved}"),
        Err(e) => {
            eprintln!("ccs-server: cannot resolve local address: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = server.run() {
        eprintln!("ccs-server: accept loop failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("ccs-server: {message}");
    eprintln!("usage: ccs-server [ADDR] [--max-sessions N] [--max-bytes N]");
    ExitCode::FAILURE
}
