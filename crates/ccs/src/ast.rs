use std::fmt;

/// A star expression over an action alphabet (Definition 2.3.1).
///
/// The syntax is that of regular expressions: the empty expression `∅`
/// (written `0`), single actions, union `∪` (written `+`), concatenation `.`
/// and iteration `*`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum StarExpr {
    /// The empty expression `∅` (denotes a single non-accepting, dead state).
    Empty,
    /// A single action.
    Action(String),
    /// Union `r ∪ s`.
    Union(Box<StarExpr>, Box<StarExpr>),
    /// Concatenation `r · s`.
    Concat(Box<StarExpr>, Box<StarExpr>),
    /// Iteration `r*`.
    Star(Box<StarExpr>),
}

impl StarExpr {
    /// Convenience constructor for an action expression.
    #[must_use]
    pub fn action(name: &str) -> Self {
        StarExpr::Action(name.to_owned())
    }

    /// Convenience constructor for `self ∪ other`.
    #[must_use]
    pub fn union(self, other: StarExpr) -> Self {
        StarExpr::Union(Box::new(self), Box::new(other))
    }

    /// Convenience constructor for `self · other`.
    #[must_use]
    pub fn concat(self, other: StarExpr) -> Self {
        StarExpr::Concat(Box::new(self), Box::new(other))
    }

    /// Convenience constructor for `self*`.
    #[must_use]
    pub fn star(self) -> Self {
        StarExpr::Star(Box::new(self))
    }

    /// The *length* of the expression: its number of symbols (actions,
    /// operators and `∅` occurrences), the size measure of Lemma 2.3.1.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            StarExpr::Empty | StarExpr::Action(_) => 1,
            StarExpr::Union(l, r) | StarExpr::Concat(l, r) => 1 + l.len() + r.len(),
            StarExpr::Star(inner) => 1 + inner.len(),
        }
    }

    /// Returns `true` iff the expression is the single symbol `∅`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        matches!(self, StarExpr::Empty)
    }

    /// The set of distinct action names occurring in the expression, sorted.
    #[must_use]
    pub fn actions(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_actions(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_actions(&self, out: &mut Vec<String>) {
        match self {
            StarExpr::Empty => {}
            StarExpr::Action(a) => out.push(a.clone()),
            StarExpr::Union(l, r) | StarExpr::Concat(l, r) => {
                l.collect_actions(out);
                r.collect_actions(out);
            }
            StarExpr::Star(inner) => inner.collect_actions(out),
        }
    }

    /// The star height: maximal nesting depth of `*`, the measure of the
    /// star-height question Milner raises for star expressions (Section 6).
    #[must_use]
    pub fn star_height(&self) -> usize {
        match self {
            StarExpr::Empty | StarExpr::Action(_) => 0,
            StarExpr::Union(l, r) | StarExpr::Concat(l, r) => l.star_height().max(r.star_height()),
            StarExpr::Star(inner) => 1 + inner.star_height(),
        }
    }
}

impl fmt::Display for StarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StarExpr::Empty => write!(f, "0"),
            StarExpr::Action(a) => write!(f, "{a}"),
            StarExpr::Union(l, r) => write!(f, "({l} + {r})"),
            StarExpr::Concat(l, r) => write!(f, "({l}.{r})"),
            StarExpr::Star(inner) => write!(f, "{inner}*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_counts_symbols() {
        assert_eq!(StarExpr::Empty.len(), 1);
        assert_eq!(StarExpr::action("a").len(), 1);
        let e = StarExpr::action("a").concat(StarExpr::action("b").union(StarExpr::action("c")));
        assert_eq!(e.len(), 5);
        assert_eq!(e.clone().star().len(), 6);
        assert!(!e.is_empty());
        assert!(StarExpr::Empty.is_empty());
    }

    #[test]
    fn actions_are_collected_and_deduplicated() {
        let e = StarExpr::action("b")
            .union(StarExpr::action("a"))
            .concat(StarExpr::action("a").star());
        assert_eq!(e.actions(), vec!["a".to_owned(), "b".to_owned()]);
        assert_eq!(StarExpr::Empty.actions(), Vec::<String>::new());
    }

    #[test]
    fn star_height() {
        assert_eq!(StarExpr::action("a").star_height(), 0);
        assert_eq!(StarExpr::action("a").star().star_height(), 1);
        let nested = StarExpr::action("a")
            .star()
            .union(StarExpr::action("b"))
            .star();
        assert_eq!(nested.star_height(), 2);
    }

    #[test]
    fn display_round_trips_through_the_parser() {
        let exprs = [
            StarExpr::Empty,
            StarExpr::action("a"),
            StarExpr::action("a").concat(StarExpr::action("b")).star(),
            StarExpr::action("a")
                .union(StarExpr::Empty)
                .concat(StarExpr::action("c")),
        ];
        for e in exprs {
            let reparsed = crate::parse(&e.to_string()).unwrap();
            assert_eq!(reparsed, e, "{e}");
        }
    }
}
