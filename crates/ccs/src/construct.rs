//! The representative-FSP construction of Definition 2.3.1 / Fig. 3.
//!
//! Every star expression `r` denotes the class of observable standard FSPs
//! strongly equivalent to the *representative FSP* built inductively:
//!
//! * `∅` — a single non-accepting dead state;
//! * `a` — a fresh start with one `a`-transition into an accepting dead state;
//! * `r₁ ∪ r₂` — a fresh start carrying the outgoing transitions (and
//!   acceptance) of both component starts;
//! * `r₁ · r₂` — every accepting state of `r₁` additionally gets the
//!   outgoing transitions of `r₂`'s start, and only `r₂`'s acceptance
//!   survives;
//! * `r₁*` — a fresh accepting start with the transitions of `r₁`'s start,
//!   and every accepting state of `r₁` also gets those transitions.
//!
//! Lemma 2.3.1: for an expression of length `n` the representative FSP is
//! observable and standard, has `O(n)` states and `O(n²)` transitions, and is
//! built in `O(n²)` time — properties checked by this module's tests and
//! measured by the `ccs_construction` bench.

use ccs_fsp::{Fsp, FspBuilder, StateId};

use crate::StarExpr;

/// Intermediate mutable representation used during the induction.
#[derive(Clone, Debug, Default)]
struct Rep {
    start: usize,
    states: Vec<RepState>,
}

#[derive(Clone, Debug, Default)]
struct RepState {
    accepting: bool,
    transitions: Vec<(String, usize)>,
}

impl Rep {
    fn accepting_states(&self) -> Vec<usize> {
        (0..self.states.len())
            .filter(|&i| self.states[i].accepting)
            .collect()
    }

    /// Appends all states of `other`, returning the index offset applied.
    fn absorb(&mut self, other: Rep) -> usize {
        let offset = self.states.len();
        for st in other.states {
            self.states.push(RepState {
                accepting: st.accepting,
                transitions: st
                    .transitions
                    .into_iter()
                    .map(|(a, t)| (a, t + offset))
                    .collect(),
            });
        }
        offset
    }
}

fn build(expr: &StarExpr) -> Rep {
    match expr {
        StarExpr::Empty => Rep {
            start: 0,
            states: vec![RepState::default()],
        },
        StarExpr::Action(a) => Rep {
            start: 0,
            states: vec![
                RepState {
                    accepting: false,
                    transitions: vec![(a.clone(), 1)],
                },
                RepState {
                    accepting: true,
                    transitions: vec![],
                },
            ],
        },
        StarExpr::Union(l, r) => {
            let mut rep = build(l);
            let left_start = rep.start;
            let right = build(r);
            let right_start_old = right.start;
            let offset = rep.absorb(right);
            let right_start = right_start_old + offset;
            let mut transitions = rep.states[left_start].transitions.clone();
            transitions.extend(rep.states[right_start].transitions.clone());
            let accepting = rep.states[left_start].accepting || rep.states[right_start].accepting;
            rep.states.push(RepState {
                accepting,
                transitions,
            });
            rep.start = rep.states.len() - 1;
            rep
        }
        StarExpr::Concat(l, r) => {
            let mut rep = build(l);
            let left_accepting = rep.accepting_states();
            let right = build(r);
            let right_start_old = right.start;
            let offset = rep.absorb(right);
            let right_start = right_start_old + offset;
            let right_start_transitions = rep.states[right_start].transitions.clone();
            let right_start_accepting = rep.states[right_start].accepting;
            for q in left_accepting {
                rep.states[q]
                    .transitions
                    .extend(right_start_transitions.iter().cloned());
                // Only E₂ survives: the old accepting states of r₁ keep
                // acceptance only if r₂ accepts the empty string through its
                // start… no — Definition 2.3.1 sets E = E₂, so they lose it,
                // unless the state also belongs to K₂ (it does not).
                rep.states[q].accepting = false;
                // A state of K₁ that could finish r₁ can now finish r₁·r₂
                // immediately iff r₂'s start is accepting.
                if right_start_accepting {
                    rep.states[q].accepting = true;
                }
            }
            rep
        }
        StarExpr::Star(inner) => {
            let mut rep = build(inner);
            let start_transitions = rep.states[rep.start].transitions.clone();
            for q in rep.accepting_states() {
                rep.states[q]
                    .transitions
                    .extend(start_transitions.iter().cloned());
            }
            rep.states.push(RepState {
                accepting: true,
                transitions: start_transitions,
            });
            rep.start = rep.states.len() - 1;
            rep
        }
    }
}

/// Builds the representative FSP of a star expression.
///
/// The result is observable and standard; its start state is the
/// representative of the expression's strong-equivalence class.
#[must_use]
pub fn representative(expr: &StarExpr) -> Fsp {
    let rep = build(expr);
    let mut b: FspBuilder = Fsp::builder(&expr.to_string());
    let ids: Vec<StateId> = (0..rep.states.len()).map(|_| b.fresh_state()).collect();
    for (i, st) in rep.states.iter().enumerate() {
        if st.accepting {
            b.mark_accepting(ids[i]);
        }
        for (a, target) in &st.transitions {
            let label = b.label(a);
            b.add_transition(ids[i], label, ids[*target]);
        }
    }
    b.set_start(ids[rep.start]);
    b.build()
        .expect("representative construction yields at least one state")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use ccs_equiv::language;

    #[test]
    fn empty_expression_denotes_a_dead_non_accepting_state() {
        let f = representative(&StarExpr::Empty);
        assert_eq!(f.num_states(), 1);
        assert_eq!(f.num_transitions(), 0);
        assert!(f.accepting_states().is_empty());
    }

    #[test]
    fn single_action_has_two_states() {
        let f = representative(&parse("a").unwrap());
        assert_eq!(f.num_states(), 2);
        assert_eq!(f.num_transitions(), 1);
        assert_eq!(f.accepting_states().len(), 1);
        assert!(language::accepts(&f, f.start(), &["a"]));
        assert!(!language::accepts(&f, f.start(), &[]));
    }

    #[test]
    fn representative_is_observable_and_standard() {
        for text in ["0", "a", "a.b + c*", "(a + b.c)*.(d + 0)", "a**"] {
            let f = representative(&parse(text).unwrap());
            let profile = f.profile();
            assert!(profile.observable, "{text}");
            assert!(profile.standard, "{text}");
        }
    }

    #[test]
    fn language_matches_the_regular_expression_reading() {
        // The representative FSP, read as an NFA, accepts exactly the regular
        // language of the expression.  Spot-check on small expressions.
        type Words = Vec<&'static [&'static str]>;
        let cases: Vec<(&str, Words, Words)> = vec![
            (
                "a.b",
                vec![&["a", "b"]],
                vec![&[], &["a"], &["b"], &["a", "b", "a"]],
            ),
            ("a + b", vec![&["a"], &["b"]], vec![&[], &["a", "b"]]),
            ("a*", vec![&[], &["a"], &["a", "a", "a"]], vec![&["b"]]),
            (
                "(a.b)*",
                vec![&[], &["a", "b"], &["a", "b", "a", "b"]],
                vec![&["a"], &["a", "b", "a"]],
            ),
            ("a.0", vec![], vec![&[], &["a"]]),
            (
                "a.b*",
                vec![&["a"], &["a", "b"], &["a", "b", "b"]],
                vec![&[], &["b"]],
            ),
        ];
        for (text, accepted, rejected) in cases {
            let f = representative(&parse(text).unwrap());
            for w in accepted {
                assert!(
                    language::accepts(&f, f.start(), w),
                    "{text} should accept {w:?}"
                );
            }
            for w in rejected {
                assert!(
                    !language::accepts(&f, f.start(), w),
                    "{text} should reject {w:?}"
                );
            }
        }
    }

    #[test]
    fn lemma_2_3_1_size_bounds() {
        // States O(n) (within a factor of 2 of the length) and transitions
        // O(n²) for a family of expressions of growing size.
        let mut texts = Vec::new();
        let mut expr = String::from("a");
        for i in 0..8 {
            expr = format!("({expr} + b{i}).c{i}*");
            texts.push(expr.clone());
        }
        for text in texts {
            let e = parse(&text).unwrap();
            let f = representative(&e);
            let n = e.len();
            assert!(
                f.num_states() <= 2 * n,
                "{text}: {} states for length {n}",
                f.num_states()
            );
            assert!(
                f.num_transitions() <= n * n,
                "{text}: {} transitions for length {n}",
                f.num_transitions()
            );
        }
    }

    #[test]
    fn star_accepts_the_empty_word_and_iterates() {
        let f = representative(&parse("(a.b + c)*").unwrap());
        let words: Vec<&[&str]> = vec![&[], &["c"], &["a", "b"], &["a", "b", "c", "a", "b"]];
        for w in words {
            assert!(language::accepts(&f, f.start(), w), "{w:?}");
        }
        assert!(!language::accepts(&f, f.start(), &["a"]));
        assert!(!language::accepts(&f, f.start(), &["b", "a"]));
    }

    #[test]
    fn concat_with_empty_accepting_start() {
        // (a*).(b*) accepts ε, a, b, ab but not ba.
        let f = representative(&parse("a*.b*").unwrap());
        assert!(language::accepts(&f, f.start(), &[]));
        assert!(language::accepts(&f, f.start(), &["a"]));
        assert!(language::accepts(&f, f.start(), &["b"]));
        assert!(language::accepts(&f, f.start(), &["a", "a", "b", "b"]));
        assert!(!language::accepts(&f, f.start(), &["b", "a"]));
    }
}
