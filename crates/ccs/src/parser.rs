//! A small recursive-descent parser for star expressions.
//!
//! Grammar (standard regular-expression precedence: `*` binds tightest, then
//! `.`, then `+`):
//!
//! ```text
//! expr    := term   ('+' term)*
//! term    := factor ('.' factor)*
//! factor  := atom '*'*
//! atom    := '0' | IDENT | '(' expr ')'
//! IDENT   := [A-Za-z_][A-Za-z0-9_]*       (except the literal "0")
//! ```

use std::error::Error;
use std::fmt;

use crate::StarExpr;

/// Errors produced while parsing a star expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExprError {
    /// Byte offset of the problem in the input.
    pub position: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at offset {}: {}",
            self.position, self.message
        )
    }
}

impl Error for ExprError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> ExprError {
        ExprError {
            position: self.pos,
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn expr(&mut self) -> Result<StarExpr, ExprError> {
        let mut left = self.term()?;
        while self.peek() == Some(b'+') {
            self.pos += 1;
            let right = self.term()?;
            left = left.union(right);
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<StarExpr, ExprError> {
        let mut left = self.factor()?;
        // Juxtaposition of atoms is not allowed; concatenation needs an
        // explicit dot, matching the paper's `·`.
        while self.peek() == Some(b'.') {
            self.pos += 1;
            let right = self.factor()?;
            left = left.concat(right);
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<StarExpr, ExprError> {
        let mut atom = self.atom()?;
        while self.peek() == Some(b'*') {
            self.pos += 1;
            atom = atom.star();
        }
        Ok(atom)
    }

    fn atom(&mut self) -> Result<StarExpr, ExprError> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let inner = self.expr()?;
                if self.peek() != Some(b')') {
                    return Err(self.error("expected ')'"));
                }
                self.pos += 1;
                Ok(inner)
            }
            Some(b'0') => {
                self.pos += 1;
                Ok(StarExpr::Empty)
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self.pos < self.input.len()
                    && (self.input[self.pos].is_ascii_alphanumeric()
                        || self.input[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                let name = std::str::from_utf8(&self.input[start..self.pos])
                    .expect("ASCII identifier is valid UTF-8");
                Ok(StarExpr::action(name))
            }
            Some(_) => Err(self.error("expected '0', an action name, or '('")),
            None => Err(self.error("unexpected end of input")),
        }
    }
}

/// Parses a star expression.
///
/// # Errors
///
/// Returns [`ExprError`] describing the first syntax error.
pub fn parse(input: &str) -> Result<StarExpr, ExprError> {
    let mut p = Parser::new(input);
    let e = p.expr()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.error("trailing input after expression"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_star_binds_tightest() {
        assert_eq!(
            parse("a.b*").unwrap(),
            StarExpr::action("a").concat(StarExpr::action("b").star())
        );
        assert_eq!(
            parse("(a.b)*").unwrap(),
            StarExpr::action("a").concat(StarExpr::action("b")).star()
        );
    }

    #[test]
    fn precedence_concat_over_union() {
        assert_eq!(
            parse("a.b + c").unwrap(),
            StarExpr::action("a")
                .concat(StarExpr::action("b"))
                .union(StarExpr::action("c"))
        );
    }

    #[test]
    fn union_and_concat_are_left_associative() {
        assert_eq!(
            parse("a + b + c").unwrap(),
            StarExpr::action("a")
                .union(StarExpr::action("b"))
                .union(StarExpr::action("c"))
        );
        assert_eq!(
            parse("a.b.c").unwrap(),
            StarExpr::action("a")
                .concat(StarExpr::action("b"))
                .concat(StarExpr::action("c"))
        );
    }

    #[test]
    fn empty_and_identifiers() {
        assert_eq!(parse("0").unwrap(), StarExpr::Empty);
        assert_eq!(
            parse("coin_inserted").unwrap(),
            StarExpr::action("coin_inserted")
        );
        assert_eq!(parse("  a  ").unwrap(), StarExpr::action("a"));
    }

    #[test]
    fn double_star_parses() {
        assert_eq!(parse("a**").unwrap(), StarExpr::action("a").star().star());
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "", "+", "a +", "(a", "a)", "a..b", "a b", "*a", "a.+b", "1abc",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse("a + )").unwrap_err();
        assert_eq!(err.position, 4);
        assert!(err.to_string().contains("offset 4"));
    }
}
