//! Algebraic laws of star expressions under the two semantics.
//!
//! Section 2.3 points out that star expressions satisfy *most* of the
//! classical regular-expression identities under strong equivalence, with two
//! notable exceptions: `r·(s ∪ t) = r·s ∪ r·t` and `r·∅ = ∅`.  This module
//! makes that observation executable: given concrete expressions for the
//! metavariables, it instantiates both sides of a law and checks them under
//! CCS (strong) equivalence and under language equivalence.

use std::fmt;

use crate::StarExpr;

/// The algebraic identities examined in Section 2.3 (and the standard
/// axioms of Salomaa's system they come from).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Law {
    /// `r ∪ s = s ∪ r`
    UnionCommutative,
    /// `(r ∪ s) ∪ t = r ∪ (s ∪ t)`
    UnionAssociative,
    /// `r ∪ r = r`
    UnionIdempotent,
    /// `r ∪ ∅ = r`
    UnionEmptyIdentity,
    /// `(r·s)·t = r·(s·t)`
    ConcatAssociative,
    /// `r·(s ∪ t) = r·s ∪ r·t` — **fails** in CCS.
    LeftDistributive,
    /// `(s ∪ t)·r = s·r ∪ t·r`
    RightDistributive,
    /// `r·∅ = ∅` — **fails** in CCS.
    ConcatEmptyAnnihilates,
    /// `r* = r·r* ∪ ε`-style unfolding, phrased star-expression-only as
    /// `r** = r*`.
    DoubleStar,
}

impl Law {
    /// All laws, in declaration order.
    pub const ALL: [Law; 9] = [
        Law::UnionCommutative,
        Law::UnionAssociative,
        Law::UnionIdempotent,
        Law::UnionEmptyIdentity,
        Law::ConcatAssociative,
        Law::LeftDistributive,
        Law::RightDistributive,
        Law::ConcatEmptyAnnihilates,
        Law::DoubleStar,
    ];

    /// Instantiates the two sides of the law with the given expressions for
    /// the metavariables `r`, `s`, `t` (unused metavariables ignore their
    /// argument).
    #[must_use]
    pub fn instantiate(&self, r: &StarExpr, s: &StarExpr, t: &StarExpr) -> (StarExpr, StarExpr) {
        let (r, s, t) = (r.clone(), s.clone(), t.clone());
        match self {
            Law::UnionCommutative => (r.clone().union(s.clone()), s.union(r)),
            Law::UnionAssociative => (
                r.clone().union(s.clone()).union(t.clone()),
                r.union(s.union(t)),
            ),
            Law::UnionIdempotent => (r.clone().union(r.clone()), r),
            Law::UnionEmptyIdentity => (r.clone().union(StarExpr::Empty), r),
            Law::ConcatAssociative => (
                r.clone().concat(s.clone()).concat(t.clone()),
                r.concat(s.concat(t)),
            ),
            Law::LeftDistributive => (
                r.clone().concat(s.clone().union(t.clone())),
                r.clone().concat(s).union(r.concat(t)),
            ),
            Law::RightDistributive => (
                s.clone().union(t.clone()).concat(r.clone()),
                s.concat(r.clone()).union(t.concat(r)),
            ),
            Law::ConcatEmptyAnnihilates => (r.concat(StarExpr::Empty), StarExpr::Empty),
            Law::DoubleStar => (r.clone().star().star(), r.star()),
        }
    }
}

impl fmt::Display for Law {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Law::UnionCommutative => "r + s = s + r",
            Law::UnionAssociative => "(r + s) + t = r + (s + t)",
            Law::UnionIdempotent => "r + r = r",
            Law::UnionEmptyIdentity => "r + 0 = r",
            Law::ConcatAssociative => "(r.s).t = r.(s.t)",
            Law::LeftDistributive => "r.(s + t) = r.s + r.t",
            Law::RightDistributive => "(s + t).r = s.r + t.r",
            Law::ConcatEmptyAnnihilates => "r.0 = 0",
            Law::DoubleStar => "r** = r*",
        };
        f.write_str(s)
    }
}

/// The verdict of checking one law instance under both semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LawVerdict {
    /// Whether the instance holds under CCS (strong) equivalence.
    pub ccs: bool,
    /// Whether the instance holds under language equivalence.
    pub language: bool,
}

/// Checks a law instance under both semantics.
#[must_use]
pub fn check(law: Law, r: &StarExpr, s: &StarExpr, t: &StarExpr) -> LawVerdict {
    let (lhs, rhs) = law.instantiate(r, s, t);
    LawVerdict {
        ccs: crate::ccs_equivalent(&lhs, &rhs),
        language: crate::language_equivalent(&lhs, &rhs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn r() -> StarExpr {
        parse("a").unwrap()
    }
    fn s() -> StarExpr {
        parse("b.c").unwrap()
    }
    fn t() -> StarExpr {
        parse("d*").unwrap()
    }

    #[test]
    fn every_law_holds_for_languages() {
        for law in Law::ALL {
            let v = check(law, &r(), &s(), &t());
            assert!(v.language, "{law} should hold for languages");
        }
    }

    #[test]
    fn the_two_paper_identities_fail_in_ccs() {
        let distributive = check(Law::LeftDistributive, &r(), &s(), &t());
        assert!(!distributive.ccs);
        let annihilation = check(Law::ConcatEmptyAnnihilates, &r(), &s(), &t());
        assert!(!annihilation.ccs);
    }

    #[test]
    fn the_remaining_laws_hold_in_ccs() {
        for law in [
            Law::UnionCommutative,
            Law::UnionAssociative,
            Law::UnionIdempotent,
            Law::UnionEmptyIdentity,
            Law::ConcatAssociative,
            Law::RightDistributive,
        ] {
            let v = check(law, &r(), &s(), &t());
            assert!(v.ccs, "{law} should hold under strong equivalence");
        }
    }

    #[test]
    fn left_distributivity_holds_when_the_branches_coincide() {
        // r.(s + s) ~ r.s + r.s: the counterexample needs distinct branches.
        let v = check(Law::LeftDistributive, &r(), &s(), &s());
        assert!(v.ccs);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Law::LeftDistributive.to_string(), "r.(s + t) = r.s + r.t");
        assert_eq!(Law::ALL.len(), 9);
    }
}
