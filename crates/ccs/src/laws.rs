//! Algebraic laws of star expressions under the two semantics.
//!
//! Section 2.3 points out that star expressions satisfy *most* of the
//! classical regular-expression identities under strong equivalence, with two
//! notable exceptions: `r·(s ∪ t) = r·s ∪ r·t` and `r·∅ = ∅`.  This module
//! makes that observation executable: given concrete expressions for the
//! metavariables, it instantiates both sides of a law and checks them under
//! CCS (strong) equivalence and under language equivalence.

use std::fmt;

use crate::StarExpr;

/// The algebraic identities examined in Section 2.3 (and the standard
/// axioms of Salomaa's system they come from).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Law {
    /// `r ∪ s = s ∪ r`
    UnionCommutative,
    /// `(r ∪ s) ∪ t = r ∪ (s ∪ t)`
    UnionAssociative,
    /// `r ∪ r = r`
    UnionIdempotent,
    /// `r ∪ ∅ = r`
    UnionEmptyIdentity,
    /// `(r·s)·t = r·(s·t)`
    ConcatAssociative,
    /// `r·(s ∪ t) = r·s ∪ r·t` — **fails** in CCS.
    LeftDistributive,
    /// `(s ∪ t)·r = s·r ∪ t·r`
    RightDistributive,
    /// `r·∅ = ∅` — **fails** in CCS.
    ConcatEmptyAnnihilates,
    /// `r* = r·r* ∪ ε`-style unfolding, phrased star-expression-only as
    /// `r** = r*`.
    DoubleStar,
}

impl Law {
    /// All laws, in declaration order.
    pub const ALL: [Law; 9] = [
        Law::UnionCommutative,
        Law::UnionAssociative,
        Law::UnionIdempotent,
        Law::UnionEmptyIdentity,
        Law::ConcatAssociative,
        Law::LeftDistributive,
        Law::RightDistributive,
        Law::ConcatEmptyAnnihilates,
        Law::DoubleStar,
    ];

    /// Instantiates the two sides of the law with the given expressions for
    /// the metavariables `r`, `s`, `t` (unused metavariables ignore their
    /// argument).
    #[must_use]
    pub fn instantiate(&self, r: &StarExpr, s: &StarExpr, t: &StarExpr) -> (StarExpr, StarExpr) {
        let (r, s, t) = (r.clone(), s.clone(), t.clone());
        match self {
            Law::UnionCommutative => (r.clone().union(s.clone()), s.union(r)),
            Law::UnionAssociative => (
                r.clone().union(s.clone()).union(t.clone()),
                r.union(s.union(t)),
            ),
            Law::UnionIdempotent => (r.clone().union(r.clone()), r),
            Law::UnionEmptyIdentity => (r.clone().union(StarExpr::Empty), r),
            Law::ConcatAssociative => (
                r.clone().concat(s.clone()).concat(t.clone()),
                r.concat(s.concat(t)),
            ),
            Law::LeftDistributive => (
                r.clone().concat(s.clone().union(t.clone())),
                r.clone().concat(s).union(r.concat(t)),
            ),
            Law::RightDistributive => (
                s.clone().union(t.clone()).concat(r.clone()),
                s.concat(r.clone()).union(t.concat(r)),
            ),
            Law::ConcatEmptyAnnihilates => (r.concat(StarExpr::Empty), StarExpr::Empty),
            Law::DoubleStar => (r.clone().star().star(), r.star()),
        }
    }
}

impl fmt::Display for Law {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Law::UnionCommutative => "r + s = s + r",
            Law::UnionAssociative => "(r + s) + t = r + (s + t)",
            Law::UnionIdempotent => "r + r = r",
            Law::UnionEmptyIdentity => "r + 0 = r",
            Law::ConcatAssociative => "(r.s).t = r.(s.t)",
            Law::LeftDistributive => "r.(s + t) = r.s + r.t",
            Law::RightDistributive => "(s + t).r = s.r + t.r",
            Law::ConcatEmptyAnnihilates => "r.0 = 0",
            Law::DoubleStar => "r** = r*",
        };
        f.write_str(s)
    }
}

/// The verdict of checking one law instance under both semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LawVerdict {
    /// Whether the instance holds under CCS (strong) equivalence.
    pub ccs: bool,
    /// Whether the instance holds under language equivalence.
    pub language: bool,
}

/// Checks a law instance under both semantics.
#[must_use]
pub fn check(law: Law, r: &StarExpr, s: &StarExpr, t: &StarExpr) -> LawVerdict {
    let (lhs, rhs) = law.instantiate(r, s, t);
    LawVerdict {
        ccs: crate::ccs_equivalent(&lhs, &rhs),
        language: crate::language_equivalent(&lhs, &rhs),
    }
}

/// The law justifying compositional minimization
/// ([`crate::compose::parallel_minimized`]), checked on a concrete
/// instance: **`≈` is a congruence for parallel composition**, so
/// quotienting the factors first changes nothing observationally —
///
/// ```text
///   minimize(P₁) | … | minimize(Pₙ)  ≈  P₁ | … | Pₙ
/// ```
///
/// Star expressions have no `|` operator (the paper's star syntax is `∅`,
/// actions, `∪`, `·`, `*`), so unlike the [`Law`] table this law lives at
/// the FSP level: `P | Q` here is [`ccs_fsp::ops::parallel`] over
/// representative processes.  Note the contrast with summation: `≈` is
/// *not* a congruence for `+` (the root-τ problem — `τ.a ≈ a` yet
/// `τ.a + b ≉ a + b`), which is why the quotient is applied under `|` only.
///
/// Returns whether the instance holds; the compositional-minimization path
/// is sound only while this returns `true` for every input it is used on
/// (the test suites and the protocol corpus keep it honest).
///
/// # Panics
///
/// Panics if `components` is empty.
#[must_use]
pub fn parallel_congruence(components: &[ccs_fsp::Fsp]) -> bool {
    let full = crate::compose::parallel_composed(components);
    let reduced = crate::compose::parallel_minimized(components);
    ccs_equiv::weak::observationally_equivalent(&reduced, &full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn r() -> StarExpr {
        parse("a").unwrap()
    }
    fn s() -> StarExpr {
        parse("b.c").unwrap()
    }
    fn t() -> StarExpr {
        parse("d*").unwrap()
    }

    #[test]
    fn every_law_holds_for_languages() {
        for law in Law::ALL {
            let v = check(law, &r(), &s(), &t());
            assert!(v.language, "{law} should hold for languages");
        }
    }

    #[test]
    fn the_two_paper_identities_fail_in_ccs() {
        let distributive = check(Law::LeftDistributive, &r(), &s(), &t());
        assert!(!distributive.ccs);
        let annihilation = check(Law::ConcatEmptyAnnihilates, &r(), &s(), &t());
        assert!(!annihilation.ccs);
    }

    #[test]
    fn the_remaining_laws_hold_in_ccs() {
        for law in [
            Law::UnionCommutative,
            Law::UnionAssociative,
            Law::UnionIdempotent,
            Law::UnionEmptyIdentity,
            Law::ConcatAssociative,
            Law::RightDistributive,
        ] {
            let v = check(law, &r(), &s(), &t());
            assert!(v.ccs, "{law} should hold under strong equivalence");
        }
    }

    #[test]
    fn left_distributivity_holds_when_the_branches_coincide() {
        // r.(s + s) ~ r.s + r.s: the counterexample needs distinct branches.
        let v = check(Law::LeftDistributive, &r(), &s(), &s());
        assert!(v.ccs);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Law::LeftDistributive.to_string(), "r.(s + t) = r.s + r.t");
        assert_eq!(Law::ALL.len(), 9);
    }

    #[test]
    fn parallel_congruence_holds_on_representative_processes() {
        // Components built from star expressions (observable), one of them
        // with genuinely collapsible structure after construction.
        let comps = [
            crate::construct::representative(&parse("a.(b + b)*").unwrap()),
            crate::construct::representative(&parse("b.c").unwrap()),
        ];
        assert!(parallel_congruence(&comps));
    }

    #[test]
    fn parallel_congruence_holds_with_tau_components() {
        use ccs_fsp::format;
        let noisy = format::parse("trans p tau q\ntrans q a p\ntrans p a q\naccept p q").unwrap();
        let relay = format::parse("trans u a v\ntrans v b u\naccept u v").unwrap();
        assert!(parallel_congruence(&[noisy, relay]));
    }

    #[test]
    fn summation_is_where_the_congruence_fails() {
        // The root-τ problem: τ.a ≈ a, yet τ.a + b ≉ a + b.  This is the
        // contrast that makes quotient-under-| sound but quotient-under-+
        // unsound, so keep it pinned down.
        use ccs_fsp::{format, ops};
        let tau_a = format::parse("trans p tau q\ntrans q a r\naccept p q r").unwrap();
        let just_a = format::parse("trans u a v\naccept u v").unwrap();
        let b = format::parse("trans x b y\naccept x y").unwrap();
        assert!(ccs_equiv::weak::observationally_equivalent(&tau_a, &just_a));
        let left = ops::choice(&tau_a, &b);
        let right = ops::choice(&just_a, &b);
        assert!(!ccs_equiv::weak::observationally_equivalent(&left, &right));
    }
}
