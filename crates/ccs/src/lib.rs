//! CCS star expressions (Section 2.3 of Kanellakis & Smolka).
//!
//! Star expressions have the *syntax* of regular expressions (`∅`, actions,
//! union, concatenation, star) but the *semantics* of CCS: a star expression
//! denotes the class of observable, standard finite state processes whose
//! start states are **strongly equivalent** to the start state of its
//! *representative FSP* (Definition 2.3.1).  Because strong equivalence is a
//! branching-time notion, familiar regular-expression identities such as
//! `r·(s ∪ t) = r·s ∪ r·t` and `r·∅ = ∅` fail — which is exactly what makes
//! the CCS equivalence problem different from language equivalence.
//!
//! This crate provides
//!
//! * the expression AST ([`StarExpr`]) with a parser and pretty-printer,
//! * the inductive representative-FSP construction of Definition 2.3.1 /
//!   Fig. 3 ([`construct::representative`]), whose `O(n)` states /
//!   `O(n²)` transitions bounds (Lemma 2.3.1) are verified by tests and the
//!   `ccs_construction` bench,
//! * the CCS equivalence problem ([`ccs_equivalent`]) and, for contrast,
//!   language equivalence of the same expressions read as regular
//!   expressions,
//! * a law checker ([`laws`]) recording which algebraic identities survive
//!   the change of semantics.
//!
//! ```
//! use ccs_expr::{parse, ccs_equivalent, language_equivalent};
//!
//! // Union is commutative in both semantics…
//! assert!(ccs_equivalent(&parse("a.b + c")?, &parse("c + a.b")?));
//! // …but distributivity of `.` over `+` only holds for languages.
//! let distributed = parse("a.b + a.c")?;
//! let factored = parse("a.(b + c)")?;
//! assert!(language_equivalent(&distributed, &factored));
//! assert!(!ccs_equivalent(&distributed, &factored));
//! # Ok::<(), ccs_expr::ExprError>(())
//! ```
//!
//! Where this crate sits in the workspace — the crate map, the
//! end-to-end data flow, and the notion-to-procedure table — is laid out
//! in `ARCHITECTURE.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ast;
pub mod compose;
pub mod construct;
pub mod laws;
mod parser;

pub use ast::StarExpr;
pub use parser::{parse, ExprError};

use ccs_equiv::strong;

/// The CCS equivalence problem: do two star expressions have the same
/// semantics, i.e. are the start states of their representative FSPs
/// strongly equivalent?
#[must_use]
pub fn ccs_equivalent(left: &StarExpr, right: &StarExpr) -> bool {
    strong::strong_equivalent(
        &construct::representative(left),
        &construct::representative(right),
    )
}

/// Language equivalence of the same expressions read as *regular*
/// expressions: do their representative FSPs (viewed as NFAs) accept the same
/// language?
#[must_use]
pub fn language_equivalent(left: &StarExpr, right: &StarExpr) -> bool {
    ccs_equiv::language::language_equivalent(
        &construct::representative(left),
        &construct::representative(right),
    )
    .holds
}

/// Failure equivalence of the representative FSPs after making every state
/// accepting (the restricted view used in Section 5).
#[must_use]
pub fn failure_equivalent(left: &StarExpr, right: &StarExpr) -> bool {
    let l = ccs_fsp::ops::make_restricted(&construct::representative(left));
    let r = ccs_fsp::ops::make_restricted(&construct::representative(right));
    ccs_equiv::failures::failure_equivalent(&l, &r).equivalent
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ccs_equivalence_is_reflexive_on_a_corpus() {
        for text in [
            "0",
            "a",
            "a.b",
            "a + b",
            "(a.b)*",
            "a.(b + c)*",
            "(a + b).(c + d)",
        ] {
            let e = parse(text).unwrap();
            assert!(ccs_equivalent(&e, &e), "{text}");
            assert!(language_equivalent(&e, &e), "{text}");
            assert!(failure_equivalent(&e, &e), "{text}");
        }
    }

    #[test]
    fn union_laws_hold_in_both_semantics() {
        let ab = parse("a + b").unwrap();
        let ba = parse("b + a").unwrap();
        assert!(ccs_equivalent(&ab, &ba));
        assert!(language_equivalent(&ab, &ba));
        let assoc_l = parse("(a + b) + c").unwrap();
        let assoc_r = parse("a + (b + c)").unwrap();
        assert!(ccs_equivalent(&assoc_l, &assoc_r));
    }

    #[test]
    fn distributivity_separates_the_semantics() {
        let distributed = parse("a.b + a.c").unwrap();
        let factored = parse("a.(b + c)").unwrap();
        assert!(language_equivalent(&distributed, &factored));
        assert!(!ccs_equivalent(&distributed, &factored));
        assert!(!failure_equivalent(&distributed, &factored));
    }

    #[test]
    fn r_dot_empty_is_not_empty_in_ccs() {
        // r·∅ = ∅ holds for languages but fails in CCS: a.∅ can still do `a`.
        let a_empty = parse("a.0").unwrap();
        let empty = parse("0").unwrap();
        assert!(language_equivalent(&a_empty, &empty));
        assert!(!ccs_equivalent(&a_empty, &empty));
    }
}
