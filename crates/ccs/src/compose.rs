//! Compositional minimization: quotient parallel components by
//! observational congruence *before* composing them.
//!
//! Building `a | b | c` naively multiplies the component state counts; the
//! standard way out (and the way every industrial CCS/CSP checker scales) is
//! to minimize each factor first and to keep minimizing the partial
//! products, so the composition only ever multiplies *quotient* sizes.  The
//! rewrite is justified by two facts, both executable here:
//!
//! 1. **`P ≈ P/≈`** — quotienting a process by its observational-equivalence
//!    partition yields a weakly bisimilar process
//!    ([`ccs_fsp::ops::quotient`]; each state is ≈ its block).
//! 2. **`≈` is a congruence for `|`** — if `P ≈ P′` and `Q ≈ Q′` then
//!    `P | Q ≈ P′ | Q′`.  Weak bisimilarity's famous congruence defect is
//!    specific to summation `+` (the root-τ problem); parallel composition
//!    composes weak bisimulations pointwise, so substituting a minimized
//!    factor under `|` is sound.  [`crate::laws::parallel_congruence`]
//!    checks the instance actually used, every time the test suites run.
//!
//! Together: `minimize(P) | minimize(Q) ≈ P | Q`, inductively for any
//! factor count — which is what [`parallel_minimized`] exploits and what
//! the protocol corpus (`ccs_workloads::protocols`) is verified with.
//!
//! ```
//! use ccs_expr::compose;
//! use ccs_fsp::format;
//!
//! // A noisy component: τ-stutter and a duplicated branch collapse away.
//! let noisy = format::parse(
//!     "trans p tau q\ntrans q a p\ntrans p a q\naccept p q")?;
//! let small = compose::minimized(&noisy);
//! assert!(small.num_states() < noisy.num_states());
//!
//! // Composing minimized factors is observationally the same as composing
//! // the originals.
//! let other = format::parse("trans u a v\ntrans v b u\naccept u v")?;
//! let full = compose::parallel_composed(&[noisy.clone(), other.clone()]);
//! let reduced = compose::parallel_minimized(&[noisy, other]);
//! assert!(ccs_equiv::weak::observationally_equivalent(&reduced, &full));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use ccs_equiv::{EquivSession, Equivalence};
use ccs_fsp::{ops, Fsp};

/// The observational quotient `P/≈`, restricted to its reachable part: the
/// smallest process (one state per ≈-class) weakly bisimilar to `fsp`.
///
/// One full observational classification of `fsp` is run to obtain the
/// partition; the quotient itself is linear in the process size.
#[must_use]
pub fn minimized(fsp: &Fsp) -> Fsp {
    let session = EquivSession::new(fsp.clone());
    let partition = session.classify_all(Equivalence::Observational);
    let assignment: Vec<usize> = (0..fsp.num_states())
        .map(|s| partition.block_of(s))
        .collect();
    let quotient = ops::quotient(fsp, &assignment, partition.num_blocks());
    ops::restrict_to_reachable(&quotient).0
}

/// The plain parallel composition of all components, folded left to right
/// with [`ccs_fsp::ops::parallel`] (shared actions handshake, the rest
/// interleaves).  The reference point [`parallel_minimized`] is compared
/// against.
///
/// # Panics
///
/// Panics if `components` is empty.
#[must_use]
pub fn parallel_composed(components: &[Fsp]) -> Fsp {
    let (first, rest) = components
        .split_first()
        .expect("parallel composition of no components");
    rest.iter()
        .fold(first.clone(), |acc, next| ops::parallel(&acc, next))
}

/// Compositionally minimized parallel composition: every factor is
/// quotiented by `≈` before it enters the product, and every intermediate
/// product is quotiented again before the next factor joins.
///
/// Observationally equivalent to [`parallel_composed`] of the same
/// components (see the module docs for why), but the intermediate state
/// counts — the thing that explodes — stay at quotient size throughout.
///
/// # Panics
///
/// Panics if `components` is empty.
#[must_use]
pub fn parallel_minimized(components: &[Fsp]) -> Fsp {
    let (first, rest) = components
        .split_first()
        .expect("parallel composition of no components");
    rest.iter().fold(minimized(first), |acc, next| {
        minimized(&ops::parallel(&acc, &minimized(next)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_fsp::format;

    fn parse(s: &str) -> Fsp {
        format::parse(s).unwrap()
    }

    #[test]
    fn minimized_collapses_tau_cycles() {
        // A 3-state τ-cycle with one observable exit minimizes hard.
        let f = parse(
            "trans p tau q\ntrans q tau r\ntrans r tau p\ntrans p a s\n\
             trans q a s\ntrans r a s\naccept p q r s",
        );
        let m = minimized(&f);
        assert!(m.num_states() < f.num_states());
        assert!(ccs_equiv::weak::observationally_equivalent(&m, &f));
    }

    #[test]
    fn minimized_is_idempotent_in_size() {
        let f = parse("trans p tau q\ntrans q a p\ntrans p a q\naccept p q");
        let once = minimized(&f);
        let twice = minimized(&once);
        assert_eq!(once.num_states(), twice.num_states());
    }

    #[test]
    fn minimized_composition_agrees_with_plain_composition() {
        let noisy = parse("trans p tau q\ntrans q a p\ntrans p a q\naccept p q");
        let relay = parse("trans u a v\ntrans v b u\naccept u v");
        let gate = parse("trans x b x\naccept x");
        let components = [noisy, relay, gate];
        let full = parallel_composed(&components);
        let reduced = parallel_minimized(&components);
        assert!(reduced.num_states() <= full.num_states());
        assert!(ccs_equiv::weak::observationally_equivalent(&reduced, &full));
    }
}
