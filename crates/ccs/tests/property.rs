//! Property-based tests for star expressions: the representative construction
//! respects Lemma 2.3.1 and CCS equivalence behaves like a congruent
//! equivalence relation refining language equivalence.

use ccs_expr::{ccs_equivalent, construct, language_equivalent, StarExpr};
use proptest::prelude::*;

fn expr_strategy() -> impl Strategy<Value = StarExpr> {
    let leaf = prop_oneof![
        Just(StarExpr::Empty),
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(StarExpr::action),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| StarExpr::Union(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| StarExpr::Concat(Box::new(l), Box::new(r))),
            inner.prop_map(|e| StarExpr::Star(Box::new(e))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 2.3.1: the representative is observable, standard, with O(n)
    /// states and O(n²) transitions.
    #[test]
    fn representative_respects_lemma_2_3_1(expr in expr_strategy()) {
        let fsp = construct::representative(&expr);
        let n = expr.len();
        prop_assert!(fsp.profile().observable);
        prop_assert!(fsp.profile().standard);
        prop_assert!(fsp.num_states() <= 2 * n);
        prop_assert!(fsp.num_transitions() <= 4 * n * n);
    }

    /// Printing and re-parsing an expression is the identity.
    #[test]
    fn display_parse_round_trip(expr in expr_strategy()) {
        let reparsed = ccs_expr::parse(&expr.to_string()).expect("display output parses");
        prop_assert_eq!(reparsed, expr);
    }

    /// CCS equivalence refines language equivalence, and both are reflexive
    /// and symmetric.
    #[test]
    fn ccs_refines_language(left in expr_strategy(), right in expr_strategy()) {
        prop_assert!(ccs_equivalent(&left, &left));
        prop_assert!(language_equivalent(&right, &right));
        let ccs = ccs_equivalent(&left, &right);
        let lang = language_equivalent(&left, &right);
        if ccs {
            prop_assert!(lang);
        }
        prop_assert_eq!(ccs, ccs_equivalent(&right, &left));
    }

    /// Union with ∅ and idempotent union are CCS identities on arbitrary
    /// expressions (the laws that *do* survive the change of semantics).
    #[test]
    fn surviving_laws_hold(expr in expr_strategy()) {
        let with_empty = expr.clone().union(StarExpr::Empty);
        prop_assert!(ccs_equivalent(&with_empty, &expr));
        let doubled = expr.clone().union(expr.clone());
        prop_assert!(ccs_equivalent(&doubled, &expr));
        let double_star = expr.clone().star().star();
        prop_assert!(ccs_equivalent(&double_star, &expr.star()));
    }
}
