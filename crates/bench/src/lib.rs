//! Shared helpers for the `ccs-equiv` benchmark harness.
//!
//! The Criterion benches under `benches/` reproduce, as measured scaling
//! experiments, the complexity results of Kanellakis & Smolka (see
//! `EXPERIMENTS.md` at the repository root for the experiment-by-experiment
//! mapping).  The `report` binary re-runs the same measurements with plain
//! wall-clock timing and prints the tables recorded in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ccs_fsp::Fsp;
use ccs_workloads::{random, RandomConfig};

/// Standard process sizes (numbers of states) used by the scaling benches.
pub const SCALING_SIZES: [usize; 4] = [32, 64, 128, 256];

/// Larger sizes used by the wall-clock `report` binary, where per-point cost
/// matters less than a readable growth curve.
pub const REPORT_SIZES: [usize; 5] = [64, 128, 256, 512, 1024];

/// E7-family sizes for the parallel-refinement (PAR) table and the
/// `partition_par` bench.  The first point sits below the default
/// sequential-fallback threshold of `ccs_partition::par` (so the table
/// shows the fallback tracking the sequential engine); the remaining points
/// are large enough for the sharded scans to amortize the per-round merge
/// barrier.
pub const PAR_REPORT_SIZES: [usize; 4] = [256, 1024, 2048, 4096];

/// A random restricted observable process of the given size, with the
/// default density used across all experiments (≈2.5 transitions per state,
/// two actions).
#[must_use]
pub fn standard_process(states: usize, seed: u64) -> Fsp {
    random::random_fsp(&RandomConfig::sized(states, seed))
}

/// A random general process (τ-moves and partial acceptance) of the given
/// size, used by the observational-equivalence experiments.
#[must_use]
pub fn general_process(states: usize, seed: u64) -> Fsp {
    random::random_fsp(&RandomConfig {
        tau_ratio: 0.3,
        accept_ratio: 0.5,
        ..RandomConfig::sized(states, seed)
    })
}

/// A pair of processes of the given size that are equivalent by construction
/// (a process and a bisimilar inflation of it).
#[must_use]
pub fn equivalent_pair(states: usize, seed: u64) -> (Fsp, Fsp) {
    let base = standard_process(states, seed);
    let variant = random::bisimilar_variant(&base, seed.wrapping_add(1));
    (base, variant)
}

/// A pair of processes of the given size that differ by a single redirected
/// transition (almost surely inequivalent).
#[must_use]
pub fn perturbed_pair(states: usize, seed: u64) -> (Fsp, Fsp) {
    let base = standard_process(states, seed);
    let variant = random::perturbed_variant(&base, seed.wrapping_add(1))
        .expect("generated processes have transitions");
    (base, variant)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_requested_sizes() {
        let f = standard_process(64, 1);
        assert_eq!(f.num_states(), 64);
        let g = general_process(32, 2);
        assert_eq!(g.num_states(), 32);
        assert!(g.has_tau_transitions());
    }

    #[test]
    fn equivalent_pairs_are_equivalent() {
        let (a, b) = equivalent_pair(24, 3);
        assert!(ccs_equiv::strong::strong_equivalent(&a, &b));
    }

    #[test]
    fn perturbed_pairs_have_same_size() {
        let (a, b) = perturbed_pair(24, 4);
        assert_eq!(a.num_states(), b.num_states());
    }
}
