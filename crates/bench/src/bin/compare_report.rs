//! Diffs two `report` outputs for performance regressions on the tracked
//! tables (E7 solver matrix, WP weak-pipeline table, PAR
//! parallel-refinement table, the DET determinization table, the KOBS
//! one-arena ≈ₖ-sweep table, the OTF protocol-corpus table, the DELTA
//! incremental-maintenance table, and the MEM resident-bytes table).
//!
//! The report header stamps the host core count (`host: cores=N …`).  When
//! the baseline was recorded on a host with a different core count, PAR
//! regressions — and the `det-par` / `rebuild-par` columns, the only other
//! thread-scaling measurements — are downgraded to warnings; thread-scaling
//! numbers from a different machine shape are not comparable enough to
//! fail CI on.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p ccs-bench --bin compare_report -- \
//!     crates/bench/baselines/report-e7-wp.txt report.txt \
//!     [--threshold 1.25] [--floor-ms 5.0]
//! ```
//!
//! Every timing row of the baseline's E7/WP sections is looked up in the
//! current report; a timing counts as a regression when the baseline value
//! is at least `floor-ms` (rows below the floor are measurement noise) and
//! the current value exceeds `baseline × threshold` (default 1.25, i.e. a
//! slowdown of more than 25%).  Exit code 1 signals regressions or rows
//! missing from the current report, so the scheduled CI job fails loudly.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Timing columns of one tracked table row, keyed by a section-qualified
/// row identifier.
type Rows = BTreeMap<String, Vec<(String, f64)>>;

/// Which tracked section a report line belongs to, if any.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Section {
    None,
    E7,
    Wp,
    Par,
    Det,
    Kobs,
    Otf,
    Delta,
    Mem,
}

/// Extracts the tracked tables from a report dump.
///
/// E7 rows are `family states edges naive ks-both ks-small pt` (timings in
/// the last four columns); WP rows are `family states pairs per-query
/// session speedup` (timings in columns 3–4, the speedup ratio is derived
/// and not compared); PAR rows are `family states edges ks-small par-1
/// par-2 par-4 speedup4` (timings in columns 3–6, the speedup ratio again
/// derived and not compared); DET rows are `family states subsets notion
/// rep-scan det det-par speedup` (timings in columns 4–6, the speedup
/// derived; 7-token pre-`det-par` baselines still parse); KOBS rows are
/// `family states subsets levels rep-bfs one-arena speedup` (timings in
/// columns 4–5, the speedup derived); OTF rows are `family product union
/// notion verdict otf-subsets full-subsets otf full` (subset counts ride
/// the ratio check like MEM bytes do — an exploration blow-up fails like a
/// slowdown — and the two timings close the row); DELTA rows are `family
/// states edits/b i/q/f delta rebuild rebuild-par speedup` (timings in
/// columns 4–6, the path-mix token and the derived speedup are skipped,
/// and `rebuild-par` is thread-scaling like `det-par`).
/// MEM rows come in two shapes: 5-token session rows `family states subsets
/// session-bytes arena-bytes` and 4-token CSR rows `family states edges
/// csr-bytes` — byte counts ride the same ratio check as timings, so a
/// memory blow-up trips the comparison exactly like a slowdown would.
fn parse_report(text: &str) -> Rows {
    let mut rows = Rows::new();
    let mut section = Section::None;
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("== ") {
            section = if trimmed.contains("E7:") {
                Section::E7
            } else if trimmed.contains("WP:") {
                Section::Wp
            } else if trimmed.contains("PAR:") {
                Section::Par
            } else if trimmed.contains("DET:") {
                Section::Det
            } else if trimmed.contains("KOBS:") {
                Section::Kobs
            } else if trimmed.contains("OTF:") {
                Section::Otf
            } else if trimmed.contains("DELTA:") {
                Section::Delta
            } else if trimmed.contains("MEM:") {
                Section::Mem
            } else {
                Section::None
            };
            continue;
        }
        let tokens: Vec<&str> = trimmed.split_whitespace().collect();
        let numeric = |t: &str| t.parse::<f64>().is_ok();
        match section {
            Section::E7 if tokens.len() == 7 && tokens[1..].iter().all(|t| numeric(t)) => {
                let key = format!("e7/{}/{}", tokens[0], tokens[1]);
                let cols = ["naive", "ks-both", "ks-small", "pt"];
                let timings = cols
                    .iter()
                    .zip(&tokens[3..7])
                    .map(|(name, t)| ((*name).to_owned(), t.parse().expect("checked numeric")))
                    .collect();
                rows.insert(key, timings);
            }
            Section::Wp if tokens.len() == 6 && tokens[1..].iter().all(|t| numeric(t)) => {
                let key = format!("wp/{}/{}/{}", tokens[0], tokens[1], tokens[2]);
                let cols = ["per-query", "session"];
                let timings = cols
                    .iter()
                    .zip(&tokens[3..5])
                    .map(|(name, t)| ((*name).to_owned(), t.parse().expect("checked numeric")))
                    .collect();
                rows.insert(key, timings);
            }
            Section::Det
                if (tokens.len() == 7 || tokens.len() == 8)
                    && tokens[1..3].iter().all(|t| numeric(t))
                    && !numeric(tokens[3])
                    && tokens[4..].iter().all(|t| numeric(t)) =>
            {
                let key = format!("det/{}/{}/{}", tokens[0], tokens[3], tokens[1]);
                // 8-token rows carry the 4-worker det-par column; 7-token
                // baselines predate it and compare only the shared columns.
                let cols: &[&str] = if tokens.len() == 8 {
                    &["rep-scan", "det", "det-par"]
                } else {
                    &["rep-scan", "det"]
                };
                let timings = cols
                    .iter()
                    .zip(&tokens[4..tokens.len() - 1])
                    .map(|(name, t)| ((*name).to_owned(), t.parse().expect("checked numeric")))
                    .collect();
                rows.insert(key, timings);
            }
            Section::Kobs if tokens.len() == 7 && tokens[1..].iter().all(|t| numeric(t)) => {
                let key = format!("kobs/{}/{}", tokens[0], tokens[1]);
                let cols = ["rep-bfs", "one-arena"];
                let timings = cols
                    .iter()
                    .zip(&tokens[4..6])
                    .map(|(name, t)| ((*name).to_owned(), t.parse().expect("checked numeric")))
                    .collect();
                rows.insert(key, timings);
            }
            Section::Otf
                if tokens.len() == 9
                    && tokens[1..3].iter().all(|t| numeric(t))
                    && !numeric(tokens[3])
                    && !numeric(tokens[4])
                    && tokens[5..].iter().all(|t| numeric(t)) =>
            {
                let key = format!("otf/{}/{}", tokens[0], tokens[3]);
                let cols = ["otf-subsets", "full-subsets", "otf", "full"];
                let timings = cols
                    .iter()
                    .zip(&tokens[5..9])
                    .map(|(name, t)| ((*name).to_owned(), t.parse().expect("checked numeric")))
                    .collect();
                rows.insert(key, timings);
            }
            Section::Delta
                if tokens.len() == 8
                    && tokens[1..3].iter().all(|t| numeric(t))
                    && !numeric(tokens[3])
                    && tokens[4..].iter().all(|t| numeric(t)) =>
            {
                let key = format!("delta/{}/{}/{}", tokens[0], tokens[1], tokens[2]);
                let cols = ["delta", "rebuild", "rebuild-par"];
                let timings = cols
                    .iter()
                    .zip(&tokens[4..7])
                    .map(|(name, t)| ((*name).to_owned(), t.parse().expect("checked numeric")))
                    .collect();
                rows.insert(key, timings);
            }
            Section::Par if tokens.len() == 8 && tokens[1..].iter().all(|t| numeric(t)) => {
                let key = format!("par/{}/{}", tokens[0], tokens[1]);
                let cols = ["ks-small", "par-1", "par-2", "par-4"];
                let timings = cols
                    .iter()
                    .zip(&tokens[3..7])
                    .map(|(name, t)| ((*name).to_owned(), t.parse().expect("checked numeric")))
                    .collect();
                rows.insert(key, timings);
            }
            Section::Mem if tokens.len() == 5 && tokens[1..].iter().all(|t| numeric(t)) => {
                let key = format!("mem/{}/{}", tokens[0], tokens[1]);
                let cols = ["session", "arena"];
                let timings = cols
                    .iter()
                    .zip(&tokens[3..5])
                    .map(|(name, t)| ((*name).to_owned(), t.parse().expect("checked numeric")))
                    .collect();
                rows.insert(key, timings);
            }
            Section::Mem if tokens.len() == 4 && tokens[1..].iter().all(|t| numeric(t)) => {
                let key = format!("mem/{}/{}", tokens[0], tokens[1]);
                let timings = vec![(
                    "csr".to_owned(),
                    tokens[3].parse().expect("checked numeric"),
                )];
                rows.insert(key, timings);
            }
            _ => {}
        }
    }
    rows
}

/// Extracts the host core count from a report's `host: cores=N …` header
/// line, if present (reports predating the header have none).
fn host_cores(text: &str) -> Option<u64> {
    text.lines().find_map(|line| {
        let trimmed = line.trim();
        if !trimmed.starts_with("host:") {
            return None;
        }
        trimmed
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("cores=").and_then(|v| v.parse().ok()))
    })
}

struct Options {
    baseline: String,
    current: String,
    threshold: f64,
    floor_ms: f64,
}

fn parse_args() -> Result<Options, String> {
    let mut positional = Vec::new();
    let mut threshold = 1.25;
    let mut floor_ms = 5.0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threshold needs a number")?;
            }
            "--floor-ms" => {
                floor_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--floor-ms needs a number")?;
            }
            _ => positional.push(arg),
        }
    }
    if positional.len() != 2 {
        return Err(
            "usage: compare_report <baseline> <current> [--threshold X] [--floor-ms Y]".to_owned(),
        );
    }
    let mut positional = positional.into_iter();
    Ok(Options {
        baseline: positional.next().expect("checked length"),
        current: positional.next().expect("checked length"),
        threshold,
        floor_ms,
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
    };
    let baseline_text = read(&opts.baseline);
    let current_text = read(&opts.current);
    let baseline = parse_report(&baseline_text);
    let current = parse_report(&current_text);
    if baseline.is_empty() {
        eprintln!("no tracked rows found in baseline {}", opts.baseline);
        return ExitCode::from(2);
    }
    let base_cores = host_cores(&baseline_text);
    let cur_cores = host_cores(&current_text);
    // Thread-scaling numbers only transfer between identically shaped hosts;
    // when the baseline's core count is unknown or differs, PAR slowdowns are
    // reported but do not fail the comparison.
    let par_comparable = base_cores.is_some() && base_cores == cur_cores;
    if !par_comparable {
        println!(
            "note: baseline cores={} vs current cores={} — PAR slowdowns downgraded to warnings",
            base_cores.map_or_else(|| "unknown".to_owned(), |c| c.to_string()),
            cur_cores.map_or_else(|| "unknown".to_owned(), |c| c.to_string()),
        );
    }

    let mut regressions = 0usize;
    let mut warnings = 0usize;
    let mut compared = 0usize;
    let mut missing = 0usize;
    for (key, base_timings) in &baseline {
        let Some(cur_timings) = current.get(key) else {
            println!("MISSING  {key}: row not present in current report");
            missing += 1;
            continue;
        };
        for ((col, base), (_, cur)) in base_timings.iter().zip(cur_timings) {
            if *base < opts.floor_ms {
                continue;
            }
            compared += 1;
            let ratio = cur / base;
            if ratio > opts.threshold {
                // PAR rows and the det-par / rebuild-par columns are
                // thread-scaling measurements: only comparable between
                // same-shape hosts.
                let thread_scaling =
                    key.starts_with("par/") || col == "det-par" || col == "rebuild-par";
                if thread_scaling && !par_comparable {
                    println!(
                        "WARN  {key} [{col}]: {base:.2} -> {cur:.2} ({:.0}% worse; core count \
                         differs from baseline, not counted)",
                        (ratio - 1.0) * 100.0
                    );
                    warnings += 1;
                } else {
                    println!(
                        "REGRESSION  {key} [{col}]: {base:.2} -> {cur:.2} ({:.0}% worse)",
                        (ratio - 1.0) * 100.0
                    );
                    regressions += 1;
                }
            }
        }
    }
    println!(
        "compared {compared} values over {} rows: {regressions} regression(s), {warnings} \
         warning(s), {missing} missing row(s) (threshold {:.0}%, floor {})",
        baseline.len(),
        (opts.threshold - 1.0) * 100.0,
        opts.floor_ms
    );
    if regressions > 0 || missing > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
ccs-equiv experiment report (wall-clock, release recommended)
host: cores=4 CCS_THREADS=unset

== E7: generalized partitioning on the CSR core — solver matrix per family ==
   (ks-both = both-halves baseline, ks-small = smaller-half upgrade)
  family   states      edges     naive ms   ks-both ms  ks-small ms        pt ms
  random       64        160         1.00         2.00         3.00         4.00
   chain     1024       1023        90.00        12.00         6.00         8.00

== WP: weak pipeline — per-query free functions vs EquivSession batched ==
   (m pair queries: ...)
  family   states    pairs   per-query ms   session ms   speedup
 general      256       32         120.00         10.00      12.0

== PAR: sharded parallel smaller-half — worklist sharding across threads ==
   (par-N = Algorithm::KanellakisSmolkaParallel at N workers ...)
  family   states      edges  ks-small ms     par-1 ms     par-2 ms     par-4 ms  speedup4
   dense     4096      98304        40.00        44.00        24.00        14.00      2.86

== DET: PSPACE-notion classification — shared subset automaton vs representative scan ==
   (rep-scan = one on-the-fly subset construction per (state, representative) pair; ...)
  family   states   subsets     notion   rep-scan ms     det ms   det-par ms   speedup
  blowup      256      7000   language        120.00      10.00         6.00      12.0

== KOBS: exact ≈k hierarchy sweep — one-arena signature refinement vs per-pair BFS ==
   (sweep k = 1..=4 on the ≈k strictness ladder; ...)
  family   states   subsets  levels   rep-bfs ms  one-arena ms   speedup
  ladder      276       265       4        60.00          8.00       7.5

== OTF: on-the-fly equivalence on the protocol corpus — peak explored vs materialized ==
   (system vs spec per determinizable notion; ...)
      family   product   union   notion  verdict  otf-subsets  full-subsets    otf ms   full ms
      abp-c2       864      47    trace       eq           18            95     12.00     40.00

== DELTA: incremental partition maintenance — delta-refine vs from-scratch rebuild ==
   (mutating_queries gadget stream; i/q/f = path mix; ...)
  family   states  edits/b    i/q/f     delta ms   rebuild ms rebuild-par ms   speedup
 gadgets     1024        1    6/2/0         0.40         2.00           1.80       5.0

== MEM: resident bytes — honest capacity-based accounting per family ==
   (session = EquivSession::approx_resident_bytes after classify_all; ...)
  family   states   subsets    session B      arena B
  blowup      256       639      1400000       600000
  family   states      edges        csr B
  random     1024       3072       200000

== E8: strong equivalence, equivalent pairs (Theorem 3.1) ==
  states     check ms      classes
     256        10.00           17
";

    #[test]
    fn parses_only_tracked_sections() {
        let rows = parse_report(SAMPLE);
        assert_eq!(rows.len(), 10);
        assert_eq!(
            rows["delta/gadgets/1024/1"],
            vec![
                ("delta".to_owned(), 0.4),
                ("rebuild".to_owned(), 2.0),
                ("rebuild-par".to_owned(), 1.8),
            ]
        );
        assert_eq!(
            rows["otf/abp-c2/trace"],
            vec![
                ("otf-subsets".to_owned(), 18.0),
                ("full-subsets".to_owned(), 95.0),
                ("otf".to_owned(), 12.0),
                ("full".to_owned(), 40.0),
            ]
        );
        assert_eq!(
            rows["mem/blowup/256"],
            vec![
                ("session".to_owned(), 1_400_000.0),
                ("arena".to_owned(), 600_000.0)
            ]
        );
        assert_eq!(rows["mem/random/1024"], vec![("csr".to_owned(), 200_000.0)]);
        assert_eq!(
            rows["det/blowup/language/256"],
            vec![
                ("rep-scan".to_owned(), 120.0),
                ("det".to_owned(), 10.0),
                ("det-par".to_owned(), 6.0),
            ]
        );
        assert_eq!(
            rows["kobs/ladder/276"],
            vec![("rep-bfs".to_owned(), 60.0), ("one-arena".to_owned(), 8.0)]
        );
        assert_eq!(
            rows["par/dense/4096"],
            vec![
                ("ks-small".to_owned(), 40.0),
                ("par-1".to_owned(), 44.0),
                ("par-2".to_owned(), 24.0),
                ("par-4".to_owned(), 14.0),
            ]
        );
        assert_eq!(
            rows["e7/chain/1024"],
            vec![
                ("naive".to_owned(), 90.0),
                ("ks-both".to_owned(), 12.0),
                ("ks-small".to_owned(), 6.0),
                ("pt".to_owned(), 8.0),
            ]
        );
        assert_eq!(
            rows["wp/general/256/32"],
            vec![
                ("per-query".to_owned(), 120.0),
                ("session".to_owned(), 10.0),
            ]
        );
        // The untracked E8 row is ignored.
        assert!(!rows.keys().any(|k| k.contains("e8")));
    }

    #[test]
    fn legacy_det_rows_without_det_par_still_parse() {
        let text = "== DET: x ==\n\
                    blowup 256 7000 language 120.00 10.00 12.0\n";
        let rows = parse_report(text);
        assert_eq!(
            rows["det/blowup/language/256"],
            vec![("rep-scan".to_owned(), 120.0), ("det".to_owned(), 10.0)]
        );
    }

    #[test]
    fn header_lines_are_not_rows() {
        let rows = parse_report("== E7: x ==\nfamily states edges a b c d\n");
        assert!(rows.is_empty());
    }

    #[test]
    fn host_cores_reads_the_header() {
        assert_eq!(host_cores(SAMPLE), Some(4));
        assert_eq!(host_cores("host: cores=1 CCS_THREADS=2\n"), Some(1));
        // Reports predating the header parse as unknown.
        assert_eq!(
            host_cores("ccs-equiv experiment report\n== E7: x ==\n"),
            None
        );
    }
}
