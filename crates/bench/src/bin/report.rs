//! Wall-clock experiment runner: prints the scaling tables recorded in
//! `EXPERIMENTS.md` (one section per experiment of the index in
//! `DESIGN.md`).
//!
//! Usage: `cargo run --release -p ccs-bench --bin report [experiment ...]
//! [--only <experiment>]... [--help]` (default: all).  The valid experiment
//! names are generated from the `TABLES` registry below — `--help` prints
//! the live list, so the help text cannot drift from the tables that
//! actually exist.  `--only` (repeatable, comma-separable) restricts the
//! run to the named sections so a single table — e.g. `det` — can be
//! regenerated without rerunning E7/WP/PAR; bare positional names behave
//! the same way.
//!
//! The E7, WP, PAR, DET, KOBS and OTF tables are additionally tracked for
//! regressions:
//! the scheduled CI job diffs them against the committed snapshot under
//! `crates/bench/baselines/` with the `compare_report` binary.

use std::time::Instant;

use ccs_bench::{equivalent_pair, general_process, standard_process, PAR_REPORT_SIZES};
use ccs_equiv::{failures, kobs, strong, weak, EquivSession, Equivalence};
use ccs_expr::{construct, parse};
use ccs_partition::{dfa_equiv, hopcroft, solve, Algorithm, DeltaRefiner, Dfa, EdgeDelta};
use ccs_workloads::{families, mutating_queries, queries};

fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64() * 1e3)
}

/// A named generator of scaling instances for the E7 solver matrix.
type InstanceFamily = (&'static str, fn(usize) -> ccs_partition::Instance);

fn e7_partition_algorithms() {
    println!("\n== E7: generalized partitioning on the CSR core — solver matrix per family ==");
    println!("   (ks-both = both-halves baseline, ks-small = smaller-half upgrade)");
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "family", "states", "edges", "naive ms", "ks-both ms", "ks-small ms", "pt ms"
    );
    let families: [InstanceFamily; 4] = [
        ("random", |n| strong::to_instance(&standard_process(n, 42))),
        ("chain", ccs_workloads::instances::chain),
        ("cycle", ccs_workloads::instances::cycle),
        ("tree", |n| {
            // Complete binary tree with roughly n nodes.
            let depth = n.ilog2() as usize;
            ccs_workloads::instances::binary_tree(depth.saturating_sub(1))
        }),
    ];
    for (family, make) in families {
        for &n in &[64usize, 128, 256, 512, 1024] {
            let inst = make(n);
            // Force the lazy CSR build so the first timed solver does not
            // get charged for it.
            let _ = inst.num_edges();
            let (p_naive, t_naive) = time_ms(|| solve(&inst, Algorithm::Naive));
            let (p_both, t_both) = time_ms(|| solve(&inst, Algorithm::KanellakisSmolkaBothHalves));
            let (p_ks, t_ks) = time_ms(|| solve(&inst, Algorithm::KanellakisSmolka));
            let (p_pt, t_pt) = time_ms(|| solve(&inst, Algorithm::PaigeTarjan));
            assert_eq!(p_naive, p_both);
            assert_eq!(p_naive, p_ks);
            assert_eq!(p_ks, p_pt);
            println!(
                "{:>8} {:>8} {:>10} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
                family,
                inst.num_elements(),
                inst.num_edges(),
                t_naive,
                t_both,
                t_ks,
                t_pt
            );
        }
    }
}

fn par_parallel_refinement() {
    println!("\n== PAR: sharded parallel smaller-half — worklist sharding across threads ==");
    println!(
        "   (par-N = Algorithm::KanellakisSmolkaParallel at N workers; states below the \
         fallback threshold ({}) run sequentially; speedup4 = ks-small / par-4)",
        ccs_partition::par::sequential_threshold()
    );
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "family", "states", "edges", "ks-small ms", "par-1 ms", "par-2 ms", "par-4 ms", "speedup4"
    );
    let families: [InstanceFamily; 2] = [
        ("random", |n| {
            ccs_workloads::instances::random(n, 2, 3 * n, 42)
        }),
        ("dense", |n| {
            ccs_workloads::instances::dense_random(n, 4, 8, 16, 42)
        }),
    ];
    for (family, make) in families {
        for &n in &PAR_REPORT_SIZES {
            let inst = make(n);
            let _ = inst.num_edges();
            let (p_seq, t_seq) = time_ms(|| solve(&inst, Algorithm::KanellakisSmolka));
            let mut t_par = [0.0f64; 3];
            for (slot, threads) in [1usize, 2, 4].into_iter().enumerate() {
                let (p_par, t) =
                    time_ms(|| solve(&inst, Algorithm::KanellakisSmolkaParallel { threads }));
                assert_eq!(p_par, p_seq, "parallel ({threads} threads) diverged");
                t_par[slot] = t;
            }
            println!(
                "{:>8} {:>8} {:>10} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>9.2}",
                family,
                inst.num_elements(),
                inst.num_edges(),
                t_seq,
                t_par[0],
                t_par[1],
                t_par[2],
                t_seq / t_par[2]
            );
        }
    }
}

fn wp_weak_pipeline() {
    println!("\n== WP: weak pipeline — per-query free functions vs EquivSession batched ==");
    println!("   (m pair queries: m full saturate+refine pipelines vs one shared pipeline)");
    println!(
        "{:>8} {:>8} {:>8} {:>14} {:>12} {:>9}",
        "family", "states", "pairs", "per-query ms", "session ms", "speedup"
    );
    for &n in &[256usize, 512] {
        let batch = queries::weak_query_batch(n, 32, 29);
        let (per_query, t_loop) = time_ms(|| {
            batch
                .pairs
                .iter()
                .map(|&(p, q)| weak::observationally_equivalent_states(&batch.fsp, p, q))
                .collect::<Vec<bool>>()
        });
        let (batched, t_session) = time_ms(|| {
            let session = EquivSession::for_process(&batch.fsp);
            session.equivalent_pairs(Equivalence::Observational, &batch.pairs)
        });
        assert_eq!(per_query, batched, "session disagrees with per-query loop");
        println!(
            "{:>8} {:>8} {:>8} {:>14.2} {:>12.2} {:>9.1}",
            "general",
            n,
            batch.pairs.len(),
            t_loop,
            t_session,
            t_loop / t_session
        );
    }
}

fn det_determinized_classification() {
    println!("\n== DET: PSPACE-notion classification — shared subset automaton vs representative scan ==");
    println!(
        "   (rep-scan = one on-the-fly subset construction per (state, representative) pair;\n    \
         det = one memoized subset arena + one product-DFA refinement; det-par = the same\n    \
         arena explored and refined at 4 workers; blowup window = 8)"
    );
    println!(
        "{:>8} {:>8} {:>9} {:>10} {:>13} {:>10} {:>12} {:>9}",
        "family", "states", "subsets", "notion", "rep-scan ms", "det ms", "det-par ms", "speedup"
    );
    let notions = [
        ("language", Equivalence::Language),
        ("trace", Equivalence::Trace),
        ("failure", Equivalence::Failure),
    ];
    for &n in &[64usize, 128, 256, 512] {
        let fsp = families::det_blowup(n, 8);
        for (name, notion) in notions {
            let scan_session = EquivSession::for_process(&fsp);
            let (scan, t_scan) = time_ms(|| scan_session.representative_scan_partition(notion));
            let det_session = EquivSession::for_process(&fsp);
            let (det, t_det) = time_ms(|| det_session.classify_all(notion));
            let par_session = EquivSession::with_algorithm(
                fsp.clone(),
                Algorithm::KanellakisSmolkaParallel { threads: 4 },
            );
            let (det_par, t_det_par) = time_ms(|| par_session.classify_all(notion));
            assert_eq!(
                det.as_ref(),
                &scan,
                "determinized engine diverged from the oracle"
            );
            assert_eq!(
                det_par, det,
                "4-worker arena exploration diverged from sequential"
            );
            println!(
                "{:>8} {:>8} {:>9} {:>10} {:>13.2} {:>10.2} {:>12.2} {:>9.1}",
                "blowup",
                fsp.num_states(),
                det_session.subset_arena_size(),
                name,
                t_scan,
                t_det,
                t_det_par,
                t_scan / t_det
            );
        }
    }
}

fn kobs_one_arena_sweep() {
    println!(
        "\n== KOBS: exact ≈k hierarchy sweep — one-arena signature refinement vs per-pair BFS =="
    );
    println!(
        "   (sweep k = 1..=4 on the ≈k strictness ladder; rep-bfs = per-pair synchronized-BFS\n    \
         oracle re-run per level; one-arena = one shared subset arena, one signature\n    \
         refinement per level through a warm EquivSession)"
    );
    println!(
        "{:>8} {:>8} {:>9} {:>7} {:>12} {:>13} {:>9}",
        "family", "states", "subsets", "levels", "rep-bfs ms", "one-arena ms", "speedup"
    );
    const K: usize = 4;
    let module = families::kobs_ladder_module_size(K);
    for &copies in &[2usize, 5, 12] {
        let fsp = families::kobs_ladder(copies * module, K);
        let (oracle, t_bfs) = time_ms(|| {
            (1..=K)
                .map(|k| kobs::kobs_partition(&fsp, k))
                .collect::<Vec<_>>()
        });
        let session = EquivSession::for_process(&fsp);
        let (arena, t_arena) = time_ms(|| {
            (1..=K)
                .map(|k| session.classify_all(Equivalence::KObservational(k)))
                .collect::<Vec<_>>()
        });
        for (k, (expected, got)) in oracle.iter().zip(&arena).enumerate() {
            assert_eq!(
                got.as_ref(),
                expected,
                "one-arena ≈{} diverged from the per-pair oracle",
                k + 1
            );
        }
        println!(
            "{:>8} {:>8} {:>9} {:>7} {:>12.2} {:>13.2} {:>9.1}",
            "ladder",
            fsp.num_states(),
            session.subset_arena_size(),
            K,
            t_bfs,
            t_arena,
            t_bfs / t_arena
        );
    }
}

fn otf_protocol_corpus() {
    println!(
        "\n== OTF: on-the-fly equivalence on the protocol corpus — peak explored vs materialized =="
    );
    println!(
        "   (system vs spec per determinizable notion; otf = EquivSession::on_the_fly, a\n    \
         congruence-pruned synchronized BFS stopping at the first distinguishing pair;\n    \
         full = classify_all forcing the complete determinized partition; subsets = arena\n    \
         size after the run, the exploration footprint; product = component state-count\n    \
         product, the bound a compose-everything-first checker faces)"
    );
    println!(
        "{:>12} {:>9} {:>7} {:>8} {:>8} {:>12} {:>13} {:>9} {:>9}",
        "family",
        "product",
        "union",
        "notion",
        "verdict",
        "otf-subsets",
        "full-subsets",
        "otf ms",
        "full ms"
    );
    let notions = [
        ("trace", Equivalence::Trace),
        ("failure", Equivalence::Failure),
    ];
    for protocol in ccs_workloads::protocols::corpus() {
        let composed = protocol.composed();
        let union = ccs_fsp::ops::disjoint_union(&composed, &protocol.spec);
        let (p, q) = ccs_fsp::ops::union_starts(&union, &composed, &protocol.spec);
        for (name, notion) in notions {
            let otf_session = EquivSession::for_process(&union.fsp);
            let (outcome, t_otf) = time_ms(|| {
                otf_session
                    .on_the_fly(notion, p, q)
                    .expect("trace and failure are determinizable")
            });
            let full_session = EquivSession::for_process(&union.fsp);
            let (partition, t_full) = time_ms(|| full_session.classify_all(notion));
            assert_eq!(
                outcome.equivalent,
                partition.same_block(p.index(), q.index()),
                "on-the-fly diverged from the materialized checker on {}/{name}",
                protocol.name
            );
            let peak = outcome.stats.arena_subsets;
            let total = full_session.subset_arena_size();
            assert!(
                peak <= total,
                "on-the-fly explored more subsets than full materialization on {}/{name}",
                protocol.name
            );
            println!(
                "{:>12} {:>9} {:>7} {:>8} {:>8} {:>12} {:>13} {:>9.2} {:>9.2}",
                protocol.name,
                protocol.naive_product_states(),
                union.fsp.num_states(),
                name,
                if outcome.equivalent { "eq" } else { "neq" },
                peak,
                total,
                t_otf,
                t_full
            );
        }
    }
}

fn delta_incremental_maintenance() {
    println!(
        "\n== DELTA: incremental partition maintenance — delta-refine vs from-scratch rebuild =="
    );
    println!(
        "   (mutating_queries gadget stream: per batch, DeltaRefiner::apply repairs the last\n    \
         stable partition — seeded splitter worklist, certificate check, quotient fallback —\n    \
         vs solving the mutated instance from scratch; rebuild-par = the from-scratch solve\n    \
         at 4 workers; i/q/f = incremental / quotient-rebuild / full-rebuild batch counts;\n    \
         every batch asserts block-for-block agreement with both oracles)"
    );
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>12} {:>12} {:>14} {:>9}",
        "family",
        "states",
        "edits/b",
        "i/q/f",
        "delta ms",
        "rebuild ms",
        "rebuild-par ms",
        "speedup"
    );
    const BATCHES: usize = 8;
    // Throwaway pass so the first timed row does not absorb the cold-start
    // cost (page faults, lazy allocator growth).
    {
        let (warm, _) = mutating_queries::mutating_instance(64, 0, 0, 42);
        let _ = solve(&warm, Algorithm::PaigeTarjan);
        let _ = solve(&warm, Algorithm::KanellakisSmolkaParallel { threads: 4 });
    }
    for &n in &[256usize, 1024, 4096] {
        for &edits in &[1usize, 4] {
            let copies = n / mutating_queries::GADGET_STATES;
            let (inst, batches) = mutating_queries::mutating_instance(copies, BATCHES, edits, 42);
            let mut refiner = DeltaRefiner::new(inst, Algorithm::PaigeTarjan);
            let (mut t_delta, mut t_rebuild, mut t_rebuild_par) = (0.0f64, 0.0f64, 0.0f64);
            for batch in &batches {
                let delta = EdgeDelta {
                    additions: batch.additions.clone(),
                    removals: batch.removals.clone(),
                };
                let (_path, t) = time_ms(|| refiner.apply(&delta));
                t_delta += t;
                let (oracle, t) = time_ms(|| solve(refiner.instance(), Algorithm::PaigeTarjan));
                t_rebuild += t;
                let (oracle_par, t) = time_ms(|| {
                    solve(
                        refiner.instance(),
                        Algorithm::KanellakisSmolkaParallel { threads: 4 },
                    )
                });
                t_rebuild_par += t;
                assert_eq!(
                    refiner.partition(),
                    &oracle,
                    "delta-refined partition diverged from the from-scratch oracle"
                );
                assert_eq!(oracle_par, oracle, "4-worker rebuild diverged");
                assert!(
                    refiner.instance().is_consistent_stable(refiner.partition()),
                    "delta-refined partition is not a stable refinement"
                );
            }
            // The path mix is seed-deterministic, so it is part of the
            // tracked snapshot, unlike the timings around it.
            let stats = refiner.stats();
            println!(
                "{:>8} {:>8} {:>8} {:>8} {:>12.2} {:>12.2} {:>14.2} {:>9.1}",
                "gadgets",
                n,
                edits,
                format!(
                    "{}/{}/{}",
                    stats.incremental, stats.quotient_rebuilds, stats.full_rebuilds
                ),
                t_delta,
                t_rebuild,
                t_rebuild_par,
                t_rebuild / t_delta
            );
        }
    }
}

fn mem_resident_footprint() {
    println!("\n== MEM: resident bytes — honest capacity-based accounting per family ==");
    println!(
        "   (session = EquivSession::approx_resident_bytes after classify_all on all three\n    \
         PSPACE notions; arena = the subset-automaton share; csr = Instance CSR bytes;\n    \
         blowup window = 8)"
    );
    println!(
        "{:>8} {:>8} {:>9} {:>14} {:>14}",
        "family", "states", "subsets", "session B", "arena B"
    );
    for &n in &[64usize, 128, 256, 512] {
        let fsp = families::det_blowup(n, 8);
        let session = EquivSession::for_process(&fsp);
        for notion in [
            Equivalence::Language,
            Equivalence::Trace,
            Equivalence::Failure,
        ] {
            let _ = session.classify_all(notion);
        }
        println!(
            "{:>8} {:>8} {:>9} {:>14} {:>14}",
            "blowup",
            fsp.num_states(),
            session.subset_arena_size(),
            session.approx_resident_bytes(),
            session.subset_arena_bytes()
        );
    }
    println!(
        "{:>8} {:>8} {:>10} {:>14}",
        "family", "states", "edges", "csr B"
    );
    let families: [InstanceFamily; 2] = [
        ("random", |n| {
            ccs_workloads::instances::random(n, 2, 3 * n, 42)
        }),
        ("dense", |n| {
            ccs_workloads::instances::dense_random(n, 4, 8, 16, 42)
        }),
    ];
    for (family, make) in families {
        for &n in &[1024usize, 4096] {
            let inst = make(n);
            let _ = inst.num_edges();
            println!(
                "{:>8} {:>8} {:>10} {:>14}",
                family,
                inst.num_elements(),
                inst.num_edges(),
                inst.resident_bytes()
            );
        }
    }
}

fn e8_strong_equivalence() {
    println!("\n== E8: strong equivalence, equivalent pairs (Theorem 3.1) ==");
    println!("{:>8} {:>12} {:>12}", "states", "check ms", "classes");
    for &n in &[64usize, 128, 256, 512, 1024] {
        let (l, r) = equivalent_pair(n, 7);
        let union = ccs_fsp::ops::disjoint_union(&l, &r);
        let (partition, t) = time_ms(|| strong::strong_partition(&union.fsp));
        println!("{:>8} {:>12.2} {:>12}", n, t, partition.num_classes());
    }
}

fn e9_observational_equivalence() {
    println!("\n== E9: observational equivalence (Theorem 4.1a): saturation + refinement ==");
    println!(
        "{:>8} {:>14} {:>14} {:>12}",
        "states", "saturate ms", "refine ms", "classes"
    );
    for &n in &[64usize, 128, 256, 512] {
        let fsp = general_process(n, 13);
        let (saturated, t_sat) = time_ms(|| ccs_fsp::saturate::saturate(&fsp));
        let (partition, t_ref) = time_ms(|| strong::strong_partition(&saturated.fsp));
        println!(
            "{:>8} {:>14.2} {:>14.2} {:>12}",
            n,
            t_sat,
            t_ref,
            partition.num_classes()
        );
    }
}

fn e10_k_observational() {
    println!("\n== E10: exact ≈k (PSPACE-complete, Theorem 4.1b) vs polynomial ≈ ==");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "states", "≈2 ms", "≈3 ms", "≈ ms"
    );
    for &n in &[4usize, 6, 8, 10, 12] {
        let base = standard_process(n, 11);
        let other = ccs_workloads::random::bisimilar_variant(&base, 12);
        let (_, t2) = time_ms(|| kobs::kobs_equivalent(&base, &other, 2));
        let (_, t3) = time_ms(|| kobs::kobs_equivalent(&base, &other, 3));
        let (_, tw) = time_ms(|| weak::observationally_equivalent(&base, &other));
        println!("{:>8} {:>12.2} {:>12.2} {:>12.2}", n, t2, t3, tw);
    }
}

fn e13_failure_equivalence() {
    println!("\n== E13: failure equivalence (Theorem 5.1): general vs finite trees ==");
    println!("{:>10} {:>10} {:>14}", "family", "states", "check ms");
    for &n in &[8usize, 12, 16, 20, 24] {
        let (l, r) = equivalent_pair(n, 17);
        let (_, t) = time_ms(|| failures::failure_equivalent(&l, &r));
        println!("{:>10} {:>10} {:>14.2}", "random", n, t);
    }
    for depth in [4usize, 6, 8, 10] {
        let l = families::binary_tree(depth);
        let r = families::binary_tree(depth);
        let (_, t) = time_ms(|| failures::failure_equivalent(&l, &r));
        println!("{:>10} {:>10} {:>14.2}", "tree", l.num_states(), t);
    }
}

fn e14_deterministic() {
    println!("\n== E14: deterministic case — Hopcroft minimization and UNION-FIND equivalence ==");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "states", "hopcroft ms", "pt ms", "union-find ms"
    );
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    for &n in &[128usize, 256, 512, 1024, 2048] {
        let mut rng = StdRng::seed_from_u64(5);
        let mut build = |seed_shift: u64| {
            let _ = seed_shift;
            let mut d = Dfa::new(n, 2, 0);
            for s in 0..n {
                d.set_accepting(s, rng.gen_bool(0.5));
                for l in 0..2 {
                    d.set_transition(s, l, rng.gen_range(0..n));
                }
            }
            d
        };
        let left = build(0);
        let right = build(1);
        let (_, t_h) = time_ms(|| hopcroft::minimize(&left));
        let inst = left.to_instance();
        let (_, t_pt) = time_ms(|| solve(&inst, Algorithm::PaigeTarjan));
        let (_, t_uf) = time_ms(|| dfa_equiv::equivalent(&left, &right));
        println!("{:>8} {:>14.2} {:>14.2} {:>14.2}", n, t_h, t_pt, t_uf);
    }
}

fn e4_ccs_construction() {
    println!("\n== E4: representative FSP construction (Lemma 2.3.1) ==");
    println!(
        "{:>10} {:>10} {:>14} {:>12}",
        "length", "states", "transitions", "build ms"
    );
    let mut text = String::from("a");
    for i in 0..48 {
        text = format!("({text} + b{i}).c{i}*");
        if i % 8 != 7 {
            continue;
        }
        let expr = parse(&text).unwrap();
        let (fsp, t) = time_ms(|| construct::representative(&expr));
        println!(
            "{:>10} {:>10} {:>14} {:>12.2}",
            expr.len(),
            fsp.num_states(),
            fsp.num_transitions(),
            t
        );
    }
}

/// The single source of truth for the experiment tables: name, one-line
/// description, runner.  The `--only` validation, the `--help` text and the
/// dispatch loop are all generated from this registry, so a new table (or a
/// rename) cannot leave the help text or the valid-name list behind.
const TABLES: &[(&str, &str, fn())] = &[
    (
        "e7",
        "generalized partitioning solver matrix per family",
        e7_partition_algorithms,
    ),
    (
        "par",
        "sharded parallel smaller-half vs sequential",
        par_parallel_refinement,
    ),
    (
        "wp",
        "weak pipeline: per-query loop vs batched session",
        wp_weak_pipeline,
    ),
    (
        "det",
        "PSPACE-notion classification: subset arena vs representative scan",
        det_determinized_classification,
    ),
    (
        "kobs",
        "exact ≈k sweep: one-arena refinement vs per-pair BFS",
        kobs_one_arena_sweep,
    ),
    (
        "otf",
        "on-the-fly protocol checks: peak explored vs materialized",
        otf_protocol_corpus,
    ),
    (
        "delta",
        "incremental delta-refinement vs from-scratch rebuild",
        delta_incremental_maintenance,
    ),
    (
        "mem",
        "resident bytes per family/size (honest capacity accounting)",
        mem_resident_footprint,
    ),
    ("e8", "strong equivalence scaling", e8_strong_equivalence),
    (
        "e9",
        "observational equivalence: saturation + refinement",
        e9_observational_equivalence,
    ),
    ("e10", "exact ≈k vs polynomial ≈", e10_k_observational),
    (
        "e13",
        "failure equivalence: general vs finite trees",
        e13_failure_equivalence,
    ),
    (
        "e14",
        "deterministic case: Hopcroft and UNION-FIND",
        e14_deterministic,
    ),
    ("e4", "representative FSP construction", e4_ccs_construction),
];

fn print_usage() {
    println!("usage: report [experiment ...] [--only <experiment>[,<experiment>...]]... [--help]");
    println!("experiments (default: all):");
    for (name, description, _) in TABLES {
        println!("  {name:>4}  {description}");
    }
}

fn main() {
    // `--only <name>` (repeatable, comma-separable) and bare positional
    // names both restrict the run; `--only` exists so a single tracked
    // section can be regenerated explicitly, e.g. `report --only det`.
    let mut selected: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--help" || arg == "-h" {
            print_usage();
            return;
        }
        if arg == "--only" {
            let value = args
                .next()
                .expect("--only needs an experiment name (e.g. --only det)");
            selected.extend(value.split(',').map(|s| s.trim().to_lowercase()));
        } else {
            selected.push(arg.to_lowercase());
        }
    }
    // A typo must not silently produce an empty (but exit-0) report — the
    // snapshot-regeneration workflow pipes this straight into the baseline.
    let known: Vec<&str> = TABLES.iter().map(|&(name, _, _)| name).collect();
    for name in &selected {
        assert!(
            known.contains(&name.as_str()),
            "unknown experiment {name:?}; known: {known:?}"
        );
    }
    let want = |name: &str| selected.is_empty() || selected.iter().any(|a| a == name);
    println!("ccs-equiv experiment report (wall-clock, release recommended)");
    // Stamp the host shape so `compare_report` can tell whether PAR timings
    // from another container are comparable at all (cores) and whether the
    // worker pool was pinned (CCS_THREADS).
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let ccs_threads = std::env::var("CCS_THREADS").unwrap_or_else(|_| "unset".to_owned());
    println!("host: cores={cores} CCS_THREADS={ccs_threads}");
    for (name, _, run) in TABLES {
        if want(name) {
            run();
        }
    }
}
