//! Experiment E7: the three generalized-partitioning algorithms
//! (Lemma 3.2 naive, Kanellakis–Smolka, Paige–Tarjan / Theorem 3.1) on the
//! same instances, as a scaling sweep over the number of states.

use std::time::Duration;

use ccs_bench::{standard_process, SCALING_SIZES};
use ccs_equiv::strong;
use ccs_partition::{solve, Algorithm};
use ccs_workloads::families;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_random(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition/random");
    for &n in &SCALING_SIZES {
        let fsp = standard_process(n, 42);
        let inst = strong::to_instance(&fsp);
        for alg in Algorithm::ALL {
            group.bench_with_input(BenchmarkId::new(alg.to_string(), n), &inst, |b, inst| {
                b.iter(|| solve(inst, alg));
            });
        }
    }
    group.finish();
}

fn bench_worst_case_chain(c: &mut Criterion) {
    // Chains force the maximal number of refinement rounds — the family on
    // which the naive method's O(n·m) bound is tight (Lemma 3.2).
    let mut group = c.benchmark_group("partition/chain");
    for &n in &SCALING_SIZES {
        let fsp = families::chain(n, "a");
        let inst = strong::to_instance(&fsp);
        for alg in Algorithm::ALL {
            group.bench_with_input(BenchmarkId::new(alg.to_string(), n), &inst, |b, inst| {
                b.iter(|| solve(inst, alg));
            });
        }
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_random, bench_worst_case_chain
}
criterion_main!(benches);
