//! Experiment E4: the representative-FSP construction (Definition 2.3.1,
//! Lemma 2.3.1) — construction time and output size as a function of the
//! expression length.

use std::time::Duration;

use ccs_expr::{construct, parse, StarExpr};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A deterministic expression family of growing length:
/// `((…(a + b0).c0* + b1).c1* + …)`.
fn expression_of_generation(generations: usize) -> StarExpr {
    let mut text = String::from("a");
    for i in 0..generations {
        text = format!("({text} + b{i}).c{i}*");
    }
    parse(&text).expect("generated expression is well-formed")
}

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ccs/construct");
    for generations in [4usize, 8, 16, 32] {
        let expr = expression_of_generation(generations);
        group.bench_with_input(BenchmarkId::from_parameter(expr.len()), &expr, |b, expr| {
            b.iter(|| construct::representative(expr));
        });
    }
    group.finish();
}

fn bench_parsing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ccs/parse");
    for generations in [8usize, 32] {
        let text = expression_of_generation(generations).to_string();
        group.bench_with_input(BenchmarkId::from_parameter(text.len()), &text, |b, text| {
            b.iter(|| parse(text).unwrap());
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_construction, bench_parsing
}
criterion_main!(benches);
