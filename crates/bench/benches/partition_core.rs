//! The `partition_core` family: head-to-head solver comparison on the flat
//! CSR transition core, measuring the smaller-half Kanellakis–Smolka upgrade
//! against the both-halves baseline, Paige–Tarjan, the naive method, and —
//! on the deterministic family — Hopcroft.
//!
//! Workloads come straight from `ccs_workloads::instances`, so the kernels
//! are measured without FSP construction or the Lemma 3.1 reduction in the
//! loop.

use std::time::Duration;

use ccs_bench::SCALING_SIZES;
use ccs_partition::{hopcroft, solve, Algorithm, Dfa, Instance};
use ccs_workloads::instances;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Forces the lazy CSR build so measured iterations see only solver time.
fn prebuilt(inst: Instance) -> Instance {
    let _ = inst.num_edges();
    inst
}

fn bench_family(c: &mut Criterion, family: &str, make: impl Fn(usize) -> Instance) {
    let mut group = c.benchmark_group(format!("partition_core/{family}"));
    for &n in &SCALING_SIZES {
        let inst = prebuilt(make(n));
        for alg in Algorithm::ALL {
            group.bench_with_input(BenchmarkId::new(alg.to_string(), n), &inst, |b, inst| {
                b.iter(|| solve(inst, alg));
            });
        }
    }
    group.finish();
}

fn bench_chain(c: &mut Criterion) {
    bench_family(c, "chain", instances::chain);
}

fn bench_cycle(c: &mut Criterion) {
    bench_family(c, "cycle", instances::cycle);
}

fn bench_tree(c: &mut Criterion) {
    // Complete binary trees of depth 5..8 (63..511 nodes).
    let mut group = c.benchmark_group("partition_core/tree");
    for depth in [5usize, 6, 7, 8] {
        let inst = prebuilt(instances::binary_tree(depth));
        let n = inst.num_elements();
        for alg in Algorithm::ALL {
            group.bench_with_input(BenchmarkId::new(alg.to_string(), n), &inst, |b, inst| {
                b.iter(|| solve(inst, alg));
            });
        }
    }
    group.finish();
}

fn bench_random(c: &mut Criterion) {
    bench_family(c, "random", |n| instances::random(n, 2, 3 * n, 42));
}

fn bench_deterministic(c: &mut Criterion) {
    // The deterministic special case, where Hopcroft applies directly: the
    // same random complete transition structure as a DFA for Hopcroft and as
    // an Instance for the generalized solvers.
    let mut group = c.benchmark_group("partition_core/deterministic");
    for &n in &SCALING_SIZES {
        let mut dfa = Dfa::new(n, 2, 0);
        let inst = prebuilt(instances::complete_deterministic(n, 2, 7));
        for s in 0..n {
            dfa.set_class(s, inst.initial_blocks()[s] as usize);
            for l in 0..2 {
                dfa.set_transition(s, l, inst.successors(l, s)[0].index());
            }
        }
        group.bench_with_input(BenchmarkId::new("hopcroft", n), &dfa, |b, dfa| {
            b.iter(|| hopcroft::minimize(dfa));
        });
        for alg in Algorithm::ALL {
            group.bench_with_input(BenchmarkId::new(alg.to_string(), n), &inst, |b, inst| {
                b.iter(|| solve(inst, alg));
            });
        }
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_chain, bench_cycle, bench_tree, bench_random, bench_deterministic
}
criterion_main!(benches);
