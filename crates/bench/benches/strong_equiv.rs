//! Experiment E8: end-to-end strong-equivalence checks (Theorem 3.1),
//! equivalent and inequivalent pairs, as a function of process size.

use std::time::Duration;

use ccs_bench::{equivalent_pair, perturbed_pair, SCALING_SIZES};
use ccs_equiv::strong;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_equivalent_pairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("strong/equivalent");
    for &n in &SCALING_SIZES {
        let pair = equivalent_pair(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pair, |b, (l, r)| {
            b.iter(|| strong::strong_equivalent(l, r));
        });
    }
    group.finish();
}

fn bench_inequivalent_pairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("strong/perturbed");
    for &n in &SCALING_SIZES {
        let pair = perturbed_pair(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pair, |b, (l, r)| {
            b.iter(|| strong::strong_equivalent(l, r));
        });
    }
    group.finish();
}

fn bench_quotient(c: &mut Criterion) {
    let mut group = c.benchmark_group("strong/quotient");
    for &n in &SCALING_SIZES {
        let (fsp, _) = equivalent_pair(n, 9);
        group.bench_with_input(BenchmarkId::from_parameter(n), &fsp, |b, fsp| {
            b.iter(|| strong::quotient(fsp));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_equivalent_pairs, bench_inequivalent_pairs, bench_quotient
}
criterion_main!(benches);
