//! Experiment DET: the shared determinization subsystem — classifying the
//! PSPACE notions through one memoized subset automaton and one partition
//! refinement, against the pre-determinization representative scan (one
//! independent on-the-fly subset construction per `(state, representative)`
//! pair), on the Theorem 4.1(b)-style exponential-blowup family.

use std::time::Duration;

use ccs_equiv::{EquivSession, Equivalence};
use ccs_workloads::families;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const WINDOW: usize = 6;
const SIZES: [usize; 3] = [28, 56, 112];

const NOTIONS: [(&str, Equivalence); 3] = [
    ("language", Equivalence::Language),
    ("trace", Equivalence::Trace),
    ("failure", Equivalence::Failure),
];

fn bench_representative_scan(c: &mut Criterion) {
    for (name, notion) in NOTIONS {
        let mut group = c.benchmark_group(format!("determinize/rep-scan/{name}"));
        for &n in &SIZES {
            let fsp = families::det_blowup(n, WINDOW);
            group.bench_with_input(BenchmarkId::from_parameter(n), &fsp, |b, fsp| {
                b.iter(|| {
                    let session = EquivSession::for_process(fsp);
                    session.representative_scan_partition(notion).num_blocks()
                });
            });
        }
        group.finish();
    }
}

fn bench_determinized(c: &mut Criterion) {
    for (name, notion) in NOTIONS {
        let mut group = c.benchmark_group(format!("determinize/shared-arena/{name}"));
        for &n in &SIZES {
            let fsp = families::det_blowup(n, WINDOW);
            group.bench_with_input(BenchmarkId::from_parameter(n), &fsp, |b, fsp| {
                b.iter(|| {
                    let session = EquivSession::for_process(fsp);
                    session.classify_all(notion).num_blocks()
                });
            });
        }
        group.finish();
    }
}

/// Pair queries through the memoized pair cache: the first query pays the
/// synchronized search, repeats are cache lookups — measured as a batch of
/// all-pairs queries over the blowup family's states.
fn bench_pair_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("determinize/pair-cache/language");
    for &n in &[14usize, 28] {
        let fsp = families::det_blowup(n, WINDOW);
        let states: Vec<_> = fsp.state_ids().collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &fsp, |b, fsp| {
            b.iter(|| {
                let session = EquivSession::for_process(fsp);
                let mut equivalent = 0usize;
                for &p in &states {
                    for &q in &states {
                        if session.equivalent_states(p, q, Equivalence::Language) {
                            equivalent += 1;
                        }
                    }
                }
                equivalent
            });
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_representative_scan, bench_determinized, bench_pair_cache
}
criterion_main!(benches);
