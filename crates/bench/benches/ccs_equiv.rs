//! Experiment E15: the end-to-end CCS equivalence problem for star
//! expressions (Section 2.3) — parse, build representatives, decide strong
//! equivalence — compared with deciding *language* equivalence of the same
//! expressions.

use std::time::Duration;

use ccs_expr::{ccs_equivalent, language_equivalent, parse, StarExpr};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn expression_pair(generations: usize) -> (StarExpr, StarExpr) {
    // Two syntactically different but CCS-equivalent expressions: the second
    // swaps every union.
    let mut left = String::from("a");
    let mut right = String::from("a");
    for i in 0..generations {
        left = format!("({left} + b{i}).c{i}*");
        right = format!("(b{i} + {right}).c{i}*");
    }
    (parse(&left).unwrap(), parse(&right).unwrap())
}

fn bench_ccs_equivalence(c: &mut Criterion) {
    let mut group = c.benchmark_group("ccs/equivalence");
    for generations in [4usize, 8, 16] {
        let pair = expression_pair(generations);
        let len = pair.0.len();
        group.bench_with_input(BenchmarkId::new("ccs", len), &pair, |b, (l, r)| {
            b.iter(|| ccs_equivalent(l, r));
        });
        group.bench_with_input(BenchmarkId::new("language", len), &pair, |b, (l, r)| {
            b.iter(|| language_equivalent(l, r));
        });
    }
    group.finish();
}

fn bench_distributivity_counterexamples(c: &mut Criterion) {
    // The law instances of Section 2.3: cheap for CCS (bisimulation),
    // potentially expensive for language equivalence (subset construction).
    let mut group = c.benchmark_group("ccs/laws");
    let r = parse("a.(b + c)*").unwrap();
    let s = parse("b.a*").unwrap();
    let t = parse("c + a.b").unwrap();
    for law in ccs_expr::laws::Law::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(law.to_string()),
            &law,
            |b, &law| {
                b.iter(|| ccs_expr::laws::check(law, &r, &s, &t));
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_ccs_equivalence, bench_distributivity_counterexamples
}
criterion_main!(benches);
