//! Experiment E9: observational equivalence (Theorem 4.1(a)) — saturation
//! plus partition refinement — on general processes with τ-moves, including
//! the cost breakdown of the two phases.

use std::time::Duration;

use ccs_bench::{general_process, SCALING_SIZES};
use ccs_equiv::{strong, weak};
use ccs_fsp::saturate;
use ccs_workloads::families;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("weak/end-to-end");
    for &n in &SCALING_SIZES {
        let fsp = general_process(n, 13);
        group.bench_with_input(BenchmarkId::from_parameter(n), &fsp, |b, fsp| {
            b.iter(|| weak::weak_partition(fsp));
        });
    }
    group.finish();
}

fn bench_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("weak/phases");
    for &n in &SCALING_SIZES {
        let fsp = general_process(n, 13);
        group.bench_with_input(BenchmarkId::new("saturate", n), &fsp, |b, fsp| {
            b.iter(|| saturate::saturate(fsp));
        });
        let saturated = saturate::saturate(&fsp).fsp;
        group.bench_with_input(BenchmarkId::new("refine", n), &saturated, |b, sat| {
            b.iter(|| strong::strong_partition(sat));
        });
    }
    group.finish();
}

fn bench_tau_chains(c: &mut Criterion) {
    // τ-chains maximise the ε-closure, the dominant term of the paper's
    // O(n²m log n + m·n^ω) bound.
    let mut group = c.benchmark_group("weak/tau-chain");
    for &n in &SCALING_SIZES {
        let fsp = families::tau_chain(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &fsp, |b, fsp| {
            b.iter(|| weak::weak_partition(fsp));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_end_to_end, bench_phases, bench_tau_chains
}
criterion_main!(benches);
