//! Experiment E13: failure equivalence (Theorem 5.1) — exponential in
//! general (failures determinization), polynomial on the special cases the
//! paper singles out (finite trees, unary alphabets).

use std::time::Duration;

use ccs_bench::equivalent_pair;
use ccs_equiv::failures;
use ccs_reductions::gadgets;
use ccs_workloads::families;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_random_pairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("failure/random");
    for &n in &[8usize, 12, 16, 20] {
        let pair = equivalent_pair(n, 17);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pair, |b, (l, r)| {
            b.iter(|| failures::failure_equivalent(l, r));
        });
    }
    group.finish();
}

fn bench_finite_trees(c: &mut Criterion) {
    // Finite trees: the polynomial special case (Section 5 / Smolka 1984).
    let mut group = c.benchmark_group("failure/tree");
    for depth in [3usize, 5, 7, 9] {
        let left = families::binary_tree(depth);
        let right = families::binary_tree(depth);
        group.bench_with_input(
            BenchmarkId::from_parameter(1usize << depth),
            &(left, right),
            |b, (l, r)| {
                b.iter(|| failures::failure_equivalent(l, r));
            },
        );
    }
    group.finish();
}

fn bench_theorem_5_1_gadget(c: &mut Criterion) {
    // Instances produced by the Theorem 5.1 reduction from language
    // equivalence.
    let mut group = c.benchmark_group("failure/gadget");
    for &n in &[8usize, 12, 16] {
        let (l, r) = equivalent_pair(n, 29);
        let gl = gadgets::failure_gadget(&l);
        let gr = gadgets::failure_gadget(&r);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(gl, gr), |b, (l, r)| {
            b.iter(|| failures::failure_equivalent(l, r));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_random_pairs, bench_finite_trees, bench_theorem_5_1_gadget
}
criterion_main!(benches);
