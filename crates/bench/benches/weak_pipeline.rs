//! Experiment WP: batched observational-equivalence queries — the per-query
//! free-function loop (`m` full Theorem 4.1(a) pipelines: τ-closure,
//! saturation, refinement) against one `EquivSession` that builds every
//! artifact once and answers the batch from a single memoized partition.

use std::time::Duration;

use ccs_equiv::{weak, EquivSession, Equivalence};
use ccs_workloads::queries;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const PAIRS: usize = 32;
const SIZES: [usize; 3] = [32, 64, 128];

fn bench_per_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("weak-pipeline/per-query");
    for &n in &SIZES {
        let batch = queries::weak_query_batch(n, PAIRS, 29);
        group.bench_with_input(BenchmarkId::from_parameter(n), &batch, |b, batch| {
            b.iter(|| {
                batch
                    .pairs
                    .iter()
                    .map(|&(p, q)| weak::observationally_equivalent_states(&batch.fsp, p, q))
                    .filter(|&eq| eq)
                    .count()
            });
        });
    }
    group.finish();
}

fn bench_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("weak-pipeline/session");
    for &n in &SIZES {
        let batch = queries::weak_query_batch(n, PAIRS, 29);
        group.bench_with_input(BenchmarkId::from_parameter(n), &batch, |b, batch| {
            b.iter(|| {
                let session = EquivSession::for_process(&batch.fsp);
                session
                    .equivalent_pairs(Equivalence::Observational, &batch.pairs)
                    .iter()
                    .filter(|&&eq| eq)
                    .count()
            });
        });
    }
    group.finish();
}

/// A session interrogated under several notions amortizes the τ-closure and
/// saturated CSR across them; the one-shot loop rebuilds per notion.
fn bench_multi_notion_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("weak-pipeline/multi-notion");
    for &n in &SIZES {
        let batch = queries::weak_query_batch(n, PAIRS, 31);
        group.bench_with_input(BenchmarkId::from_parameter(n), &batch, |b, batch| {
            b.iter(|| {
                let session = EquivSession::for_process(&batch.fsp);
                let strong = session.equivalent_pairs(Equivalence::Strong, &batch.pairs);
                let weak = session.equivalent_pairs(Equivalence::Observational, &batch.pairs);
                (strong, weak)
            });
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_per_query, bench_session, bench_multi_notion_session
}
criterion_main!(benches);
