//! The `partition_par` family: the sharded parallel smaller-half engine
//! (`Algorithm::KanellakisSmolkaParallel`) against the sequential engine at
//! 1/2/4 workers, on the instance families where refinement time is
//! dominated by the per-splitter preimage scans the engine shards.
//!
//! Two regimes are measured per family: a point below the sequential
//! fallback threshold (where the parallel algorithm must track the
//! sequential engine — the fallback's overhead is one env read and a
//! branch) and points above it (where the scoped-thread pool is actually
//! exercised).  Bench IDs carry the worker count (`ks-parallel:N`).

use std::time::Duration;

use ccs_partition::{solve, Algorithm, Instance};
use ccs_workloads::instances;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Forces the lazy CSR build so measured iterations see only solver time.
fn prebuilt(inst: Instance) -> Instance {
    let _ = inst.num_edges();
    inst
}

fn bench_parallel_family(c: &mut Criterion, family: &str, make: impl Fn(usize) -> Instance) {
    let mut group = c.benchmark_group(format!("partition_par/{family}"));
    // 256 sits below the default fallback threshold, the rest above it.
    for &n in &[256usize, 1024, 2048] {
        let inst = prebuilt(make(n));
        group.bench_with_input(
            BenchmarkId::new("kanellakis-smolka", n),
            &inst,
            |b, inst| {
                b.iter(|| solve(inst, Algorithm::KanellakisSmolka));
            },
        );
        for threads in [1usize, 2, 4] {
            let alg = Algorithm::KanellakisSmolkaParallel { threads };
            group.bench_with_input(BenchmarkId::new(alg.to_string(), n), &inst, |b, inst| {
                b.iter(|| solve(inst, alg));
            });
        }
    }
    group.finish();
}

fn bench_random(c: &mut Criterion) {
    bench_parallel_family(c, "random", |n| instances::random(n, 2, 3 * n, 42));
}

fn bench_dense(c: &mut Criterion) {
    bench_parallel_family(c, "dense", |n| instances::dense_random(n, 4, 8, 16, 42));
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_random, bench_dense
}
criterion_main!(benches);
