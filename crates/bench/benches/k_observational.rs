//! Experiment E10: the exact `≈ₖ` checker (PSPACE-complete for fixed k,
//! Theorem 4.1(b)) versus the polynomial limit `≈` on the same instances —
//! the cost gap is the paper's headline contrast ("a complexity that
//! disappears when we take limits").

use std::time::Duration;

use ccs_equiv::{kobs, weak};
use ccs_fsp::ops;
use ccs_reductions::gadgets;
use ccs_workloads::{families, random, RandomConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn small_pair(states: usize, seed: u64) -> (ccs_fsp::Fsp, ccs_fsp::Fsp) {
    let cfg = RandomConfig {
        states,
        actions: 2,
        transitions_per_state: 2.0,
        ..RandomConfig::sized(states, seed)
    };
    let base = random::random_fsp(&cfg);
    let other = random::bisimilar_variant(&base, seed + 1);
    (base, other)
}

fn bench_kobs_levels(c: &mut Criterion) {
    // Cost as a function of the level k on a fixed-size instance.
    let mut group = c.benchmark_group("kobs/by-level");
    let (l, r) = small_pair(10, 3);
    let union = ops::disjoint_union(&l, &r);
    for k in 0..=3usize {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let (p, q) = ops::union_starts(&union, &l, &r);
            b.iter(|| kobs::kobs_equivalent_states(&union.fsp, p, q, k));
        });
    }
    group.finish();
}

fn bench_kobs_vs_weak_by_size(c: &mut Criterion) {
    // ≈₂ (exponential machinery) vs ≈ (polynomial) on the same instances.
    let mut group = c.benchmark_group("kobs/vs-weak");
    for &n in &[4usize, 6, 8, 10] {
        let (l, r) = small_pair(n, 11);
        group.bench_with_input(
            BenchmarkId::new("kobs-2", n),
            &(l.clone(), r.clone()),
            |b, (l, r)| {
                b.iter(|| kobs::kobs_equivalent(l, r, 2));
            },
        );
        group.bench_with_input(BenchmarkId::new("weak", n), &(l, r), |b, (l, r)| {
            b.iter(|| weak::observationally_equivalent(l, r));
        });
    }
    group.finish();
}

fn bench_lifting_gadget(c: &mut Criterion) {
    // Instances produced by the Theorem 4.1(b) gadget: each application adds
    // one level of lifting.
    let mut group = c.benchmark_group("kobs/lift-gadget");
    let base_l = random::random_fsp(&RandomConfig::sized(4, 21));
    let base_r = random::random_fsp(&RandomConfig::sized(4, 22));
    let mut pair = (base_l, base_r);
    for level in 1..=2usize {
        pair = gadgets::kobs_lift(&pair.0, &pair.1, "lift");
        group.bench_with_input(
            BenchmarkId::from_parameter(level),
            &(pair.clone(), level),
            |b, ((l, r), level)| {
                b.iter(|| kobs::kobs_equivalent(l, r, *level + 1));
            },
        );
    }
    group.finish();
}

fn bench_one_arena_vs_pairwise(c: &mut Criterion) {
    // Whole-space ≈₃ classification on the strictness ladder: per-pair
    // synchronized BFS vs one shared subset arena with per-level signature
    // refinement (the engine behind EquivSession's KObservational path).
    let mut group = c.benchmark_group("kobs/one-arena");
    let k = 3;
    for copies in [2usize, 5] {
        let fsp = families::kobs_ladder(copies * families::kobs_ladder_module_size(k), k);
        group.bench_with_input(
            BenchmarkId::new("pairwise-bfs", fsp.num_states()),
            &fsp,
            |b, f| b.iter(|| kobs::kobs_partition(f, k)),
        );
        group.bench_with_input(
            BenchmarkId::new("one-arena", fsp.num_states()),
            &fsp,
            |b, f| b.iter(|| kobs::kobs_partition_arena(f, k)),
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_kobs_levels, bench_kobs_vs_weak_by_size, bench_lifting_gadget,
        bench_one_arena_vs_pairwise
}
criterion_main!(benches);
