//! Experiment E14: the deterministic special case of Section 3 — Hopcroft
//! minimization (`O(k·n log n)`) and UNION-FIND equivalence (`O(k·n·α(n))`)
//! versus the generic Paige–Tarjan solver on the same automata.

use std::time::Duration;

use ccs_bench::SCALING_SIZES;
use ccs_partition::{dfa_equiv, hopcroft, solve, Algorithm, Dfa};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_dfa(n: usize, k: usize, seed: u64) -> Dfa {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dfa::new(n, k, 0);
    for s in 0..n {
        d.set_accepting(s, rng.gen_bool(0.5));
        for l in 0..k {
            d.set_transition(s, l, rng.gen_range(0..n));
        }
    }
    d
}

fn bench_minimization(c: &mut Criterion) {
    let mut group = c.benchmark_group("dfa/minimize");
    for &n in &SCALING_SIZES {
        let dfa = random_dfa(n, 2, 5);
        group.bench_with_input(BenchmarkId::new("hopcroft", n), &dfa, |b, d| {
            b.iter(|| hopcroft::minimize(d));
        });
        let inst = dfa.to_instance();
        group.bench_with_input(BenchmarkId::new("paige-tarjan", n), &inst, |b, inst| {
            b.iter(|| solve(inst, Algorithm::PaigeTarjan));
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &inst, |b, inst| {
            b.iter(|| solve(inst, Algorithm::Naive));
        });
    }
    group.finish();
}

fn bench_union_find_equivalence(c: &mut Criterion) {
    let mut group = c.benchmark_group("dfa/equivalence");
    for &n in &SCALING_SIZES {
        let left = random_dfa(n, 2, 6);
        let right = random_dfa(n, 2, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(left, right),
            |b, (l, r)| {
                b.iter(|| dfa_equiv::equivalent(l, r));
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_minimization, bench_union_find_equivalence
}
criterion_main!(benches);
