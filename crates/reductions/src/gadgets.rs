//! Reduction gadgets from Sections 4 and 5.

use ccs_fsp::{ops, Fsp, Label};

/// The *chaos* process of Fig. 5b: an r.o.u. process that, after every
/// non-empty string, may either continue forever or be stuck.
///
/// `chaos --a--> chaos` and `chaos --a--> stuck`, all states accepting.
#[must_use]
pub fn chaos(action: &str) -> Fsp {
    let mut b = Fsp::builder("chaos");
    let c = b.state("chaos");
    let stuck = b.state("stuck");
    let a = b.action(action);
    b.set_start(c);
    b.add_transition(c, Label::Act(a), c);
    b.add_transition(c, Label::Act(a), stuck);
    b.mark_all_accepting();
    b.build().expect("chaos process is non-empty")
}

/// The trivial NFA `q*` of Fig. 5d: a single accepting state with a self-loop
/// on every action — it accepts `Σ*`.
#[must_use]
pub fn trivial_nfa(actions: &[&str]) -> Fsp {
    let mut b = Fsp::builder("trivial");
    let q = b.state("q");
    b.set_start(q);
    for name in actions {
        let a = b.action(name);
        b.add_transition(q, Label::Act(a), q);
    }
    b.mark_accepting(q);
    b.build().expect("trivial process is non-empty")
}

/// The `≈ₖ → ≈ₖ₊₁` lifting gadget of Theorem 4.1(b) / Fig. 5a.
///
/// Given restricted observable processes `p` and `q`, returns the pair
/// `(p′, q′) = (a·(p ∪ q), (a·p) ∪ (a·q))` such that
/// `p ≈ₖ q  iff  p′ ≈ₖ₊₁ q′` for every `k ≥ 1`.  Applying it `k − 1` times
/// to a PSPACE-hard `≈₁` instance proves PSPACE-hardness of `≈ₖ`.
#[must_use]
pub fn kobs_lift(p: &Fsp, q: &Fsp, action: &str) -> (Fsp, Fsp) {
    let p_prime = ops::make_restricted(&ops::prefix(action, &ops::choice(p, q)));
    let q_prime = ops::make_restricted(&ops::choice(
        &ops::prefix(action, p),
        &ops::prefix(action, q),
    ));
    (p_prime, q_prime)
}

/// The dead-state transformation of Theorem 4.1(c) / Fig. 5c.
///
/// Rewrites a standard observable process so that a state is accepting iff it
/// is *dead* (no outgoing transitions), preserving the accepted language:
/// every accepting state that still has outgoing transitions loses its
/// acceptance and donates its incoming transitions to a fresh accepting dead
/// state.
///
/// As in the paper, the construction preserves the language only when the
/// empty string is not accepted from a live start state (`ε ∈ L(p)` can only
/// be represented when the start state itself is dead); Theorem 4.1(c)
/// applies it to languages of non-empty strings, where this never arises.
#[must_use]
pub fn dead_state_transform(fsp: &Fsp) -> Fsp {
    let mut b = Fsp::builder(&format!("{}|dead-accept", fsp.name()));
    // Recreate the original states.
    let originals: Vec<_> = fsp
        .state_ids()
        .map(|s| b.state(&format!("o{}", s.index())))
        .collect();
    b.set_start(originals[fsp.start().index()]);
    for (from, label, to) in fsp.all_transitions() {
        let l = match label {
            Label::Tau => Label::Tau,
            Label::Act(a) => Label::Act(b.action(fsp.action_name(a))),
        };
        b.add_transition(originals[from.index()], l, originals[to.index()]);
    }
    for s in fsp.state_ids() {
        if !fsp.is_accepting(s) {
            continue;
        }
        if fsp.is_dead(s) {
            // Already of the desired form.
            b.mark_accepting(originals[s.index()]);
            continue;
        }
        // Fresh accepting dead state receiving copies of s's incoming edges.
        let fresh = b.state(&format!("acc{}", s.index()));
        b.mark_accepting(fresh);
        for (from, label, to) in fsp.all_transitions() {
            if to == s {
                let l = match label {
                    Label::Tau => Label::Tau,
                    Label::Act(a) => Label::Act(b.action(fsp.action_name(a))),
                };
                b.add_transition(originals[from.index()], l, fresh);
            }
        }
    }
    b.build().expect("transformation preserves non-emptiness")
}

/// The Theorem 5.1 gadget reducing restricted-observable language equivalence
/// to failure equivalence.
///
/// Adds a fresh dead state `p_dead` reachable from *every* state (the fresh
/// one excluded) by *every* action, and makes all states accepting.  For the
/// resulting processes, `L(p) = L(q)  iff  p′ ≡F q′`.
#[must_use]
pub fn failure_gadget(fsp: &Fsp) -> Fsp {
    let mut b = Fsp::builder(&format!("{}|failure-gadget", fsp.name()));
    let originals: Vec<_> = fsp
        .state_ids()
        .map(|s| b.state(&format!("o{}", s.index())))
        .collect();
    b.set_start(originals[fsp.start().index()]);
    for (from, label, to) in fsp.all_transitions() {
        let l = match label {
            Label::Tau => Label::Tau,
            Label::Act(a) => Label::Act(b.action(fsp.action_name(a))),
        };
        b.add_transition(originals[from.index()], l, originals[to.index()]);
    }
    let dead = b.state("p_dead");
    let action_names: Vec<String> = fsp.action_names().iter().map(|s| (*s).to_owned()).collect();
    for name in &action_names {
        let a = b.action(name);
        for &o in &originals {
            b.add_transition(o, Label::Act(a), dead);
        }
    }
    b.mark_all_accepting();
    b.build().expect("gadget output is non-empty")
}

/// The Lemma 4.2 / Fig. 4 gadget reducing NFA universality over `Σ = {a, b}`
/// to restricted-observable universality (and hence to `≈₁` against the
/// trivial process).
///
/// The input must be a standard *observable* process over exactly the two
/// actions named `a` and `b`, with both an `a`- and a `b`-transition leaving
/// every state; the output is restricted and observable, and
/// `L(start) = Σ*` for the input iff the same holds for the output.
///
/// # Panics
///
/// Panics if the input is not observable over exactly `{a, b}` with both
/// actions enabled at every state.
#[must_use]
pub fn universality_gadget(m: &Fsp) -> Fsp {
    assert!(
        !m.has_tau_transitions(),
        "universality gadget needs an observable process"
    );
    let mut names = m.action_names();
    names.sort_unstable();
    assert_eq!(
        names,
        vec!["a", "b"],
        "universality gadget needs Σ = {{a, b}}"
    );
    for s in m.state_ids() {
        assert_eq!(
            m.enabled_actions(s).len(),
            2,
            "every state must have both a- and b-transitions"
        );
    }

    let mut b = Fsp::builder(&format!("{}|lemma-4.2", m.name()));
    let originals: Vec<_> = m
        .state_ids()
        .map(|s| b.state(&format!("o{}", s.index())))
        .collect();
    b.set_start(originals[m.start().index()]);
    let a = b.action("a");
    let bb = b.action("b");
    let trap = b.state("p_trap");
    b.add_transition(trap, Label::Act(a), trap);
    b.add_transition(trap, Label::Act(bb), trap);
    // Accepting states may escape to the trap on `a`.
    for s in m.state_ids() {
        if m.is_accepting(s) {
            b.add_transition(originals[s.index()], Label::Act(a), trap);
        }
    }
    // Each original transition (p, σ, q) becomes p --b--> p_δ --σ--> q.
    for (idx, (from, label, to)) in m.all_transitions().enumerate() {
        let sigma = match label {
            Label::Act(act) => Label::Act(b.action(m.action_name(act))),
            Label::Tau => unreachable!("observable process has no tau transitions"),
        };
        let mid = b.state(&format!("d{idx}"));
        b.add_transition(originals[from.index()], Label::Act(bb), mid);
        b.add_transition(mid, sigma, originals[to.index()]);
    }
    b.mark_all_accepting();
    b.build().expect("gadget output is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_equiv::{kobs, language, Equivalence, Query};
    use ccs_fsp::format;

    #[test]
    fn chaos_and_trivial_shapes() {
        let c = chaos("a");
        assert!(c.profile().restricted && c.profile().observable && c.profile().unary);
        assert_eq!(c.num_states(), 2);
        assert_eq!(c.num_transitions(), 2);
        let t = trivial_nfa(&["a", "b"]);
        assert!(language::is_universal(&t, t.start()).holds);
    }

    #[test]
    fn kobs_lift_preserves_equivalence_direction() {
        // Equivalent pair stays equivalent one level up.
        let p = format::parse("trans p a q\naccept p q").unwrap();
        let q = format::parse("trans u a v\ntrans u a w\naccept u v w").unwrap();
        assert!(kobs::kobs_equivalent(&p, &q, 1));
        let (p1, q1) = kobs_lift(&p, &q, "a");
        assert!(kobs::kobs_equivalent(&p1, &q1, 2));
    }

    #[test]
    fn kobs_lift_preserves_inequivalence_direction() {
        // ≈₁-inequivalent pair stays inequivalent at level 2.
        let p = format::parse("trans p a q\naccept p q").unwrap();
        let q = format::parse("trans u a v\ntrans v a w\naccept u v w").unwrap();
        assert!(!kobs::kobs_equivalent(&p, &q, 1));
        let (p1, q1) = kobs_lift(&p, &q, "a");
        assert!(!kobs::kobs_equivalent(&p1, &q1, 2));
        // The lifted pair is still ≈₁-equivalent (the gadget hides the
        // difference one level down), which is what makes it a *strict* lift.
        assert!(kobs::kobs_equivalent(&p1, &q1, 1));
    }

    #[test]
    fn dead_state_transform_preserves_language() {
        let m = format::parse("trans s0 a s1\ntrans s1 b s0\ntrans s1 a s2\naccept s1 s2").unwrap();
        let t = dead_state_transform(&m);
        // Every accepting state of the output is dead.
        for s in t.accepting_states() {
            assert!(t.is_dead(s));
        }
        assert!(Query::new(Equivalence::Language).between(&m, &t).unwrap());
    }

    #[test]
    fn failure_gadget_soundness_and_completeness() {
        // Language-equivalent inputs become failure-equivalent outputs…
        let l1 = format::parse("trans p a q\ntrans q b p\naccept p q").unwrap();
        let l2 =
            format::parse("trans u a v\ntrans v b w\ntrans w a x\ntrans x b u\naccept u v w x")
                .unwrap();
        assert!(Query::new(Equivalence::Language).between(&l1, &l2).unwrap());
        let g1 = failure_gadget(&l1);
        let g2 = failure_gadget(&l2);
        assert!(Query::new(Equivalence::Failure).between(&g1, &g2).unwrap());
        // …and language-inequivalent inputs stay failure-inequivalent.
        let l3 = format::parse("trans m a n\naccept m n").unwrap();
        assert!(!Query::new(Equivalence::Language).between(&l1, &l3).unwrap());
        let g3 = failure_gadget(&l3);
        assert!(!Query::new(Equivalence::Failure).between(&g1, &g3).unwrap());
    }

    #[test]
    fn universality_gadget_preserves_universality_status() {
        // Universal input: single accepting state with both loops.
        let universal = format::parse("trans s a s\ntrans s b s\naccept s").unwrap();
        let gu = universality_gadget(&universal);
        assert!(gu.profile().restricted && gu.profile().observable);
        assert!(language::is_universal(&universal, universal.start()).holds);
        assert!(language::is_universal(&gu, gu.start()).holds);

        // Non-universal input (rejects strings reaching the non-accepting
        // state at an odd number of `a`s): the gadget output is non-universal
        // too.
        let partial =
            format::parse("trans s a t\ntrans s b s\ntrans t a s\ntrans t b t\naccept s").unwrap();
        assert!(!language::is_universal(&partial, partial.start()).holds);
        let gp = universality_gadget(&partial);
        assert!(!language::is_universal(&gp, gp.start()).holds);
    }

    #[test]
    fn universality_iff_language_equivalent_to_trivial() {
        // Stockmeyer–Meyer framing: L(p) = Σ* iff p ≈₁ the trivial process.
        let universal = format::parse("trans s a s\ntrans s b s\naccept s").unwrap();
        let gu = universality_gadget(&universal);
        let trivial = trivial_nfa(&["a", "b"]);
        assert!(Query::new(Equivalence::Language)
            .between(&gu, &trivial)
            .unwrap());
        assert!(Query::new(Equivalence::KObservational(1))
            .between(&gu, &trivial)
            .unwrap());
    }

    #[test]
    #[should_panic(expected = "both a- and b-transitions")]
    fn universality_gadget_rejects_incomplete_inputs() {
        let bad = format::parse("trans s a s\ntrans s b t\naccept s").unwrap();
        let _ = universality_gadget(&bad);
    }
}
