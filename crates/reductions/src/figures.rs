//! The worked example processes of Figs. 1b and 2.
//!
//! Fig. 2 of the paper exhibits r.o.u. processes showing that `≈₁`, `≡F` and
//! `≈` (equivalently `~` for observable processes) are pairwise different
//! even in that tiny model.  The figure itself is not reproduced pixel by
//! pixel; the functions here build processes with exactly the documented
//! separation properties (the integration tests assert them), using a binary
//! alphabet where a unary one cannot exhibit the separation conveniently.

use ccs_fsp::{format, Fsp};

fn parse(text: &str) -> Fsp {
    format::parse(text).expect("figure processes are well-formed")
}

/// The finite-tree example of Fig. 1b: over `Σ = {a, b, c}`, the tree
/// `a·(b ∪ c) ∪ a·c` with all states accepting (restricted model).
///
/// Its failures at the empty trace are `{(ε, Z) | Z ⊆ {b, c}}`, matching the
/// computation shown in Section 2.1.
#[must_use]
pub fn fig1_finite_tree() -> Fsp {
    parse(
        "process fig1-tree\n\
         trans root a n1\n\
         trans root a n2\n\
         trans n1 b leaf1\n\
         trans n1 c leaf2\n\
         trans n2 c leaf3\n\
         accept root n1 n2 leaf1 leaf2 leaf3\n\
         start root\n",
    )
}

/// A pair of r.o.u. processes that are `≈₁`- (language-) equivalent but *not*
/// failure equivalent: `a ∪ a·a` versus `a·a`.
#[must_use]
pub fn trace_equal_failure_different() -> (Fsp, Fsp) {
    let left =
        parse("process a-or-aa\ntrans s a t\ntrans s a u\ntrans u a v\naccept s t u v\nstart s\n");
    let right = parse("process aa\ntrans x a y\ntrans y a z\naccept x y z\nstart x\n");
    (left, right)
}

/// A pair of restricted observable processes that are failure equivalent but
/// *not* observationally equivalent: `a·(b·c ∪ b·d)` versus
/// `a·b·c ∪ a·b·d`.
///
/// (The paper's Fig. 2 uses unary processes; the binary-alphabet pair here
/// exhibits the same separation and is easier to read.)
#[must_use]
pub fn failure_equal_observational_different() -> (Fsp, Fsp) {
    let left = parse(
        "process merged\ntrans p a q\ntrans q b r1\ntrans q b r2\ntrans r1 c s1\ntrans r2 d s2\n\
         accept p q r1 r2 s1 s2\nstart p\n",
    );
    let right = parse(
        "process split\ntrans u a v1\ntrans u a v2\ntrans v1 b w1\ntrans v2 b w2\n\
         trans w1 c x1\ntrans w2 d x2\naccept u v1 v2 w1 w2 x1 x2\nstart u\n",
    );
    (left, right)
}

/// A pair of processes that are observationally equivalent but *not* strongly
/// equivalent: `τ·a` versus `a`.
#[must_use]
pub fn observational_equal_strong_different() -> (Fsp, Fsp) {
    let left = parse("process tau-a\ntrans p tau q\ntrans q a r\naccept p q r\nstart p\n");
    let right = parse("process just-a\ntrans u a v\naccept u v\nstart u\n");
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_equiv::{Equivalence, Query};

    #[test]
    fn fig1_tree_shape_and_failures() {
        let t = fig1_finite_tree();
        assert!(t.profile().finite_tree);
        assert_eq!(t.num_states(), 6);
        let failures = ccs_equiv::failures::failures_up_to(&t, t.start(), 1);
        let (eps, refusals) = &failures[0];
        assert!(eps.is_empty());
        assert_eq!(refusals.len(), 1);
        assert_eq!(refusals[0], vec!["b".to_owned(), "c".to_owned()]);
    }

    #[test]
    fn first_separation_trace_vs_failure() {
        let (l, r) = trace_equal_failure_different();
        assert!(l.profile().restricted && l.profile().observable && l.profile().unary);
        assert!(Query::new(Equivalence::Language).between(&l, &r).unwrap());
        assert!(Query::new(Equivalence::KObservational(1))
            .between(&l, &r)
            .unwrap());
        assert!(!Query::new(Equivalence::Failure).between(&l, &r).unwrap());
        assert!(!Query::new(Equivalence::Observational)
            .between(&l, &r)
            .unwrap());
    }

    #[test]
    fn second_separation_failure_vs_observational() {
        let (l, r) = failure_equal_observational_different();
        assert!(Query::new(Equivalence::Failure).between(&l, &r).unwrap());
        assert!(Query::new(Equivalence::Language).between(&l, &r).unwrap());
        assert!(!Query::new(Equivalence::Observational)
            .between(&l, &r)
            .unwrap());
        assert!(!Query::new(Equivalence::KObservational(2))
            .between(&l, &r)
            .unwrap());
    }

    #[test]
    fn third_separation_observational_vs_strong() {
        let (l, r) = observational_equal_strong_different();
        assert!(Query::new(Equivalence::Observational)
            .between(&l, &r)
            .unwrap());
        assert!(!Query::new(Equivalence::Strong).between(&l, &r).unwrap());
    }
}
