//! The hardness-reduction gadgets and example processes of
//! Kanellakis & Smolka, as executable constructions.
//!
//! * [`gadgets`] — the constructions behind the lower bounds: the *chaos* and
//!   *trivial* processes (Fig. 5b/5d), the `≈ₖ → ≈ₖ₊₁` lifting gadget of
//!   Theorem 4.1(b) (Fig. 5a), the dead-state transformation of
//!   Theorem 4.1(c) (Fig. 5c), the universality gadget of Lemma 4.2
//!   (Fig. 4), and the language-equivalence → failure-equivalence gadget of
//!   Theorem 5.1.
//! * [`figures`] — the worked example processes of Figs. 1b and 2, with their
//!   documented (in)equivalences.
//!
//! Each construction is used by the integration tests to *verify* the
//! correctness property the paper proves for it, and by the benches to
//! generate families of hard instances.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod figures;
pub mod gadgets;
