//! Generalized partitioning — the *relational coarsest partition* problem of
//! Kanellakis & Smolka (Section 3).
//!
//! **Input:** a set `S`, an initial partition `π = {B₁, …, Bₚ}` of `S`, and
//! `k` functions `fₗ : S → 2^S` (equivalently, `k` binary relations).
//!
//! **Output:** the coarsest partition `π′` consistent with `π` such that for
//! every block `E_j`, every function `fₗ`, and all `a, b` in a common block:
//! `fₗ(a) ∩ E_j ≠ ∅  iff  fₗ(b) ∩ E_j ≠ ∅`.
//!
//! Strong bisimulation equivalence of observable finite state processes
//! reduces to this problem in linear time (Lemma 3.1), which is why this
//! crate sits at the bottom of the `ccs-equiv` stack.
//!
//! # The flat CSR transition core
//!
//! All solvers share one transition representation: the compressed-sparse-row
//! [`LabeledGraph`] (see [`graph`]), which stores every relation's successor
//! and predecessor lists back to back in four contiguous arrays indexed by
//! per-`(label, element)` offset tables.  An [`Instance`] wraps a
//! [`GraphBuilder`] that sorts and deduplicates parallel edges and lays the
//! CSR out once; `successors`/`predecessors` are slice views into the flat
//! arrays, and `num_edges`/`max_fanout` are `O(1)` builder-computed values.
//! Element, label and block identities are packed 32-bit newtypes (see
//! [`ids`]), which halves the hot working set on 64-bit targets; ground sets
//! beyond the packed range are rejected at construction with an
//! [`IdOverflow`] rather than truncated.
//!
//! Four solvers are provided for the generalized problem:
//!
//! * [`naive`] — the paper's *naive method* (Lemma 3.2): repeatedly split
//!   blocks by successor-block signatures until stable; `O(n·m)`-ish with an
//!   extra logarithmic factor from sorting.
//! * [`kanellakis_smolka::refine_both_halves`] — the splitter-worklist
//!   algorithm of Kanellakis & Smolka (1983) with both halves of every split
//!   re-enqueued: `O(n·m)` worst case.
//! * [`kanellakis_smolka::refine`] — the paper's sharpened smaller-half
//!   variant: only the smaller fragment of a pending splitter group is
//!   extracted and scanned, giving `O(c²·n·log n)` for fan-out bounded by
//!   `c` (the module docs spell out the Section 3 argument).
//! * [`paige_tarjan`] — the Paige–Tarjan (1987) "process the smaller half"
//!   algorithm with compound blocks and edge counts, `O(m log n + n)`
//!   (Theorem 3.1), generalized to labelled relations.
//! * [`par`] — the smaller-half algorithm with the pending-splitter worklist
//!   *sharded across threads*: a std-only scoped-thread pool scans splitter
//!   shards in parallel and a deterministic merge barrier applies the
//!   three-way splits, falling back to the sequential engine below a
//!   configurable state-count threshold.
//!
//! All of them produce the same (canonical) partition; the test-suites, the
//! root property tests, and the `partition_refinement`/`partition_core`
//! benches cross-check them against each other.
//!
//! The crate also contains the two classical deterministic-case tools the
//! paper mentions in Section 3: [`hopcroft`] DFA minimization
//! (`O(k·n log n)`) and the [`dfa_equiv`] UNION-FIND equivalence test
//! (`O(k·n·α(n))`), plus the underlying [`UnionFind`] structure.
//!
//! # Example
//!
//! ```
//! use ccs_partition::{Instance, Algorithm, solve};
//!
//! // Two parallel 2-cycles over one relation; all elements start in one block.
//! let mut inst = Instance::new(4, 1);
//! inst.add_edge(0, 0, 1);
//! inst.add_edge(0, 1, 0);
//! inst.add_edge(0, 2, 3);
//! inst.add_edge(0, 3, 2);
//! let p = solve(&inst, Algorithm::PaigeTarjan);
//! // Everything is equivalent: one block.
//! assert_eq!(p.num_blocks(), 1);
//! ```
//!
//! Where this crate sits in the workspace — the crate map, the
//! end-to-end data flow, and the notion-to-procedure table — is laid out
//! in `ARCHITECTURE.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// The compact-core invariant: ids narrow through the checked helpers only,
// never through a bare `as` cast that could silently truncate.
#![deny(clippy::cast_possible_truncation)]

pub mod dfa;
pub mod dfa_equiv;
pub mod graph;
pub mod hopcroft;
pub mod ids;
pub mod incremental;
mod instance;
pub mod kanellakis_smolka;
pub mod naive;
pub mod paige_tarjan;
pub mod par;
mod partition;
mod union_find;

pub use dfa::Dfa;
pub use graph::{GraphBuilder, LabeledGraph};
pub use ids::{BlockId, IdOverflow, LabelId, StateId};
pub use incremental::{DeltaPath, DeltaRefiner, DeltaStats, EdgeDelta};
pub use instance::Instance;
pub use partition::Partition;
pub use union_find::UnionFind;

/// Selects one of the generalized-partitioning solvers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Algorithm {
    /// The naive refinement method of Lemma 3.2.
    Naive,
    /// The Kanellakis–Smolka splitter-worklist algorithm with both halves of
    /// every split re-enqueued (`O(n·m)` — the measured baseline).
    KanellakisSmolkaBothHalves,
    /// The Kanellakis–Smolka smaller-half algorithm (`O(c²·n·log n)` for
    /// fan-out bounded by `c`).
    KanellakisSmolka,
    /// The smaller-half algorithm with the splitter worklist sharded across
    /// `threads` scoped worker threads ([`par::refine`]); deterministic —
    /// block-for-block identical to [`Algorithm::KanellakisSmolka`] — and
    /// falling back to it below [`par::sequential_threshold`] states.
    KanellakisSmolkaParallel {
        /// Worker-thread count ([`par::default_threads`] honours the
        /// `CCS_THREADS` environment variable).
        threads: usize,
    },
    /// The Paige–Tarjan smaller-half algorithm (Theorem 3.1).
    PaigeTarjan,
}

impl Algorithm {
    /// All available algorithms, useful for cross-checking loops.  The
    /// parallel entry runs with two workers so the cross-checks exercise
    /// real sharding.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::Naive,
        Algorithm::KanellakisSmolkaBothHalves,
        Algorithm::KanellakisSmolka,
        Algorithm::KanellakisSmolkaParallel { threads: 2 },
        Algorithm::PaigeTarjan,
    ];

    /// The parallel smaller-half algorithm at the environment-selected
    /// worker count (`CCS_THREADS`, else the machine's parallelism).
    #[must_use]
    pub fn parallel_default() -> Algorithm {
        Algorithm::KanellakisSmolkaParallel {
            threads: par::default_threads(),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::Naive => f.write_str("naive"),
            Algorithm::KanellakisSmolkaBothHalves => f.write_str("ks-both-halves"),
            Algorithm::KanellakisSmolka => f.write_str("kanellakis-smolka"),
            Algorithm::KanellakisSmolkaParallel { threads } => {
                write!(f, "ks-parallel:{threads}")
            }
            Algorithm::PaigeTarjan => f.write_str("paige-tarjan"),
        }
    }
}

/// Solves a generalized-partitioning instance with the chosen algorithm,
/// returning the coarsest consistent partition in canonical form.
#[must_use]
pub fn solve(instance: &Instance, algorithm: Algorithm) -> Partition {
    match algorithm {
        Algorithm::Naive => naive::refine(instance),
        Algorithm::KanellakisSmolkaBothHalves => kanellakis_smolka::refine_both_halves(instance),
        Algorithm::KanellakisSmolka => kanellakis_smolka::refine(instance),
        Algorithm::KanellakisSmolkaParallel { threads } => par::refine(instance, threads),
        Algorithm::PaigeTarjan => paige_tarjan::refine(instance),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_display_names() {
        assert_eq!(Algorithm::Naive.to_string(), "naive");
        assert_eq!(
            Algorithm::KanellakisSmolkaBothHalves.to_string(),
            "ks-both-halves"
        );
        assert_eq!(Algorithm::KanellakisSmolka.to_string(), "kanellakis-smolka");
        assert_eq!(
            Algorithm::KanellakisSmolkaParallel { threads: 4 }.to_string(),
            "ks-parallel:4"
        );
        assert_eq!(Algorithm::PaigeTarjan.to_string(), "paige-tarjan");
        assert_eq!(Algorithm::ALL.len(), 5);
    }

    #[test]
    fn solve_dispatches_to_all_algorithms() {
        let mut inst = Instance::new(3, 1);
        inst.add_edge(0, 0, 1);
        inst.add_edge(0, 1, 2);
        for alg in Algorithm::ALL {
            let p = solve(&inst, alg);
            assert_eq!(p.num_elements(), 3);
            // 0 -> 1 -> 2 (dead): three different behaviours.
            assert_eq!(p.num_blocks(), 3, "{alg}");
        }
    }
}
