//! UNION-FIND equivalence of complete DFAs — the `O(N·α(N))` algorithm of
//! Aho, Hopcroft & Ullman recalled at the start of Section 3, and the fast
//! path for deterministic processes (Proposition 2.2.4(b)).
//!
//! Starting from the pair of start states, pairs of states that must be
//! language-equivalent are merged; a merge of states with different output
//! classes disproves equivalence and yields a distinguishing word.

use crate::{Dfa, UnionFind};

/// The outcome of a DFA equivalence test.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DfaEquivalence {
    /// `true` iff the two automata accept the same language (more generally,
    /// compute the same class for every word).
    pub equivalent: bool,
    /// When not equivalent, a shortest-by-construction word on which the two
    /// automata produce different classes.
    pub witness: Option<Vec<usize>>,
}

/// Tests whether two complete DFAs over the same label alphabet are
/// equivalent (accept the same language / classify every word identically).
///
/// # Panics
///
/// Panics if the automata have different label alphabets.
#[must_use]
pub fn equivalent(left: &Dfa, right: &Dfa) -> DfaEquivalence {
    assert_eq!(
        left.num_labels(),
        right.num_labels(),
        "DFAs must share the label alphabet"
    );
    let k = left.num_labels();
    let offset = left.num_states();
    let total = offset + right.num_states();
    let mut uf = UnionFind::new(total);
    // Each processed pair remembers (parent pair index, label) to rebuild a
    // witness word; pairs are indexed densely as they are discovered.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut provenance: Vec<Option<(usize, usize)>> = Vec::new();

    let start_pair = (left.start(), offset + right.start());
    uf.union(start_pair.0, start_pair.1);
    pairs.push(start_pair);
    provenance.push(None);

    let mut head = 0;
    while head < pairs.len() {
        let (p, q) = pairs[head];
        let (lp, rq) = (p, q - offset);
        if left.class(lp) != right.class(rq) {
            // Rebuild the witness by walking provenance back to the root.
            let mut word = Vec::new();
            let mut cursor = head;
            while let Some((parent, label)) = provenance[cursor] {
                word.push(label);
                cursor = parent;
            }
            word.reverse();
            return DfaEquivalence {
                equivalent: false,
                witness: Some(word),
            };
        }
        for label in 0..k {
            let np = left.step(lp, label);
            let nq = offset + right.step(rq, label);
            if uf.union(np, nq) {
                pairs.push((np, nq));
                provenance.push(Some((head, label)));
            }
        }
        head += 1;
    }
    DfaEquivalence {
        equivalent: true,
        witness: None,
    }
}

#[cfg(test)]
// Test RNG draws narrow by `as` on purpose; the lint guards library code.
#[allow(clippy::cast_possible_truncation)]
mod tests {
    use super::*;

    fn mod_counter(modulus: usize, accept_residue: usize) -> Dfa {
        // Counts `1` labels modulo `modulus` over the alphabet {0, 1}.
        let mut d = Dfa::new(modulus, 2, 0);
        for s in 0..modulus {
            d.set_transition(s, 0, s);
            d.set_transition(s, 1, (s + 1) % modulus);
            d.set_accepting(s, s == accept_residue);
        }
        d
    }

    #[test]
    fn identical_automata_are_equivalent() {
        let d = mod_counter(3, 0);
        let r = equivalent(&d, &d);
        assert!(r.equivalent);
        assert!(r.witness.is_none());
    }

    #[test]
    fn equivalent_automata_of_different_sizes() {
        // mod-2 counter vs mod-4 counter accepting residues {0, 2} — both
        // accept words with an even number of 1s.
        let d2 = mod_counter(2, 0);
        let mut d4 = Dfa::new(4, 2, 0);
        for s in 0..4 {
            d4.set_transition(s, 0, s);
            d4.set_transition(s, 1, (s + 1) % 4);
            d4.set_accepting(s, s % 2 == 0);
        }
        assert!(equivalent(&d2, &d4).equivalent);
        assert!(equivalent(&d4, &d2).equivalent);
    }

    #[test]
    fn inequivalent_automata_produce_a_valid_witness() {
        let d2 = mod_counter(2, 0);
        let d3 = mod_counter(3, 0);
        let r = equivalent(&d2, &d3);
        assert!(!r.equivalent);
        let w = r.witness.expect("witness for inequivalence");
        assert_ne!(
            d2.accepts(&w),
            d3.accepts(&w),
            "witness {w:?} must distinguish"
        );
    }

    #[test]
    fn class_based_outputs_are_compared() {
        let mut a = Dfa::new(1, 1, 0);
        a.set_class(0, 3);
        let mut b = Dfa::new(1, 1, 0);
        b.set_class(0, 4);
        let r = equivalent(&a, &b);
        assert!(!r.equivalent);
        assert_eq!(r.witness, Some(vec![]));
    }

    #[test]
    #[should_panic(expected = "share the label alphabet")]
    fn alphabet_mismatch_panics() {
        let a = Dfa::new(1, 1, 0);
        let b = Dfa::new(1, 2, 0);
        let _ = equivalent(&a, &b);
    }

    #[test]
    fn agreement_with_hopcroft_minimization_on_random_dfas() {
        // Two random DFAs are equivalent iff gluing them and minimizing puts
        // the start states in one block.
        let mut seed: u64 = 0xDEADBEEFCAFEF00D;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..20 {
            let n = 2 + (next() % 8) as usize;
            let k = 1 + (next() % 2) as usize;
            let mut build = |n: usize| {
                let mut d = Dfa::new(n, k, 0);
                for s in 0..n {
                    d.set_accepting(s, next() % 2 == 0);
                    for l in 0..k {
                        d.set_transition(s, l, (next() % n as u64) as usize);
                    }
                }
                d
            };
            let a = build(n);
            let b = build(n);
            let fast = equivalent(&a, &b).equivalent;
            // Reference: exhaustive check over all words up to length 2n.
            let mut reference = true;
            let mut words: Vec<Vec<usize>> = vec![vec![]];
            let mut frontier = vec![vec![]];
            for _ in 0..(2 * n) {
                let mut next_frontier = Vec::new();
                for w in &frontier {
                    for l in 0..k {
                        let mut w2 = w.clone();
                        w2.push(l);
                        next_frontier.push(w2.clone());
                        words.push(w2);
                    }
                }
                frontier = next_frontier;
            }
            for w in &words {
                if a.accepts(w) != b.accepts(w) {
                    reference = false;
                    break;
                }
            }
            assert_eq!(fast, reference);
        }
    }
}
