//! Compact 32-bit id newtypes for the CSR core and the partition state.
//!
//! The refinement solvers spend their time chasing adjacency lists and
//! block-membership arrays, so the working-set size of those arrays *is* the
//! constant factor.  Storing element, label and block identities as packed
//! `u32`s instead of `usize` halves every hot array on 64-bit targets.
//!
//! Each newtype wraps a [`NonZeroU32`] holding `index + 1`.  The `+1`
//! packing donates the zero bit pattern to the compiler as a niche, so
//! `Option<StateId>` / `Option<BlockId>` are 4 bytes — memo tables of
//! "maybe-computed" ids cost no more than the ids themselves.  Packing is
//! monotonic, so the derived `Ord` agrees with index order and sorted edge
//! tuples of packed ids sort exactly like their index triples.
//!
//! The packed range is `0 ..= u32::MAX - 1` ([`MAX_INDEX`]); conversions out
//! of `usize` are checked in one place ([`StateId::try_from_index`] and
//! friends) and surface as an [`IdOverflow`] instead of a silent truncation.
//! Ground sets therefore hold at most [`MAX_ELEMENTS`] elements — builders
//! reject anything larger up front so no later conversion can fail.

use std::fmt;
use std::num::NonZeroU32;

/// Largest index representable by a packed id (`u32::MAX - 1`; the packed
/// value is `index + 1`).
pub const MAX_INDEX: usize = (u32::MAX - 1) as usize;

/// Largest ground-set size whose every index fits a packed id
/// (`MAX_INDEX + 1`).
pub const MAX_ELEMENTS: usize = MAX_INDEX + 1;

/// A `usize` index did not fit the packed 32-bit id range.
///
/// Raised by the checked conversions ([`StateId::try_from_index`] etc.) and
/// by [`GraphBuilder::try_new`](crate::GraphBuilder::try_new) for ground
/// sets larger than [`MAX_ELEMENTS`].  Callers at ingestion boundaries (the
/// `ccs-equiv` session layer, the wire protocol) turn this into their own
/// error type instead of truncating.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IdOverflow {
    /// The offending index or size.
    pub index: usize,
}

impl fmt::Display for IdOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "index {} exceeds the packed 32-bit id range (max {MAX_INDEX})",
            self.index
        )
    }
}

impl std::error::Error for IdOverflow {}

/// Checks that a ground-set *size* (not an index) is addressable by packed
/// ids, i.e. `n <= MAX_ELEMENTS`.
pub(crate) fn check_ground_set(n: usize) -> Result<(), IdOverflow> {
    if n <= MAX_ELEMENTS {
        Ok(())
    } else {
        Err(IdOverflow { index: n - 1 })
    }
}

/// Narrows a count already known to be bounded by a checked ground-set size
/// (block counts, group counts, edge counts after a layout-time check).
///
/// # Panics
///
/// Panics if the count exceeds `u32::MAX` — which the callers' up-front
/// ground-set checks make unreachable.
pub(crate) fn narrow(count: usize) -> u32 {
    u32::try_from(count).expect("count exceeds u32 range despite checked ground set")
}

macro_rules! packed_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[repr(transparent)]
        pub struct $name(NonZeroU32);

        impl $name {
            /// Packs a dense index.
            ///
            /// # Panics
            ///
            /// Panics if `index` exceeds [`MAX_INDEX`].
            #[must_use]
            pub fn from_index(index: usize) -> Self {
                match Self::try_from_index(index) {
                    Ok(id) => id,
                    Err(e) => panic!("{e}"),
                }
            }

            /// Packs a dense index, reporting overflow instead of panicking —
            /// the single checked `usize` → id conversion used at every
            /// ingestion boundary.
            pub fn try_from_index(index: usize) -> Result<Self, IdOverflow> {
                u32::try_from(index)
                    .ok()
                    .and_then(|raw| raw.checked_add(1))
                    .and_then(NonZeroU32::new)
                    .map($name)
                    .ok_or(IdOverflow { index })
            }

            /// The dense index this id packs.
            #[must_use]
            pub fn index(self) -> usize {
                (self.0.get() - 1) as usize
            }
        }

        impl fmt::Debug for $name {
            /// Prints the bare index, so collections of ids read like the
            /// index lists they replace.
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.index())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.index())
            }
        }

        impl From<$name> for usize {
            fn from(value: $name) -> Self {
                value.index()
            }
        }
    };
}

packed_id! {
    /// Packed identity of a ground-set element (a process state under the
    /// Lemma 3.1 reduction).
    StateId
}

packed_id! {
    /// Packed identity of one of the `k` labelled relations.
    LabelId
}

packed_id! {
    /// Packed identity of a partition block.
    BlockId
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_order() {
        for i in [0usize, 1, 7, 4096, MAX_INDEX] {
            assert_eq!(StateId::from_index(i).index(), i);
            assert_eq!(BlockId::from_index(i).index(), i);
            assert_eq!(LabelId::from_index(i).index(), i);
        }
        assert!(StateId::from_index(1) < StateId::from_index(2));
        assert!(BlockId::from_index(0) < BlockId::from_index(MAX_INDEX));
    }

    #[test]
    fn option_niche_is_free() {
        use std::mem::size_of;
        assert_eq!(size_of::<StateId>(), 4);
        assert_eq!(size_of::<Option<StateId>>(), 4);
        assert_eq!(size_of::<Option<BlockId>>(), 4);
        assert_eq!(size_of::<Option<LabelId>>(), 4);
    }

    #[test]
    fn overflow_is_an_error_not_a_truncation() {
        assert_eq!(
            StateId::try_from_index(MAX_INDEX + 1),
            Err(IdOverflow {
                index: MAX_INDEX + 1
            })
        );
        assert_eq!(
            StateId::try_from_index(usize::MAX),
            Err(IdOverflow { index: usize::MAX })
        );
        let msg = IdOverflow { index: usize::MAX }.to_string();
        assert!(msg.contains("exceeds the packed 32-bit id range"));
    }

    #[test]
    #[should_panic(expected = "exceeds the packed 32-bit id range")]
    fn from_index_panics_on_overflow() {
        let _ = StateId::from_index(MAX_INDEX + 1);
    }

    #[test]
    fn ground_set_check_bounds() {
        assert!(check_ground_set(0).is_ok());
        assert!(check_ground_set(MAX_ELEMENTS).is_ok());
        assert_eq!(
            check_ground_set(MAX_ELEMENTS + 1),
            Err(IdOverflow {
                index: MAX_ELEMENTS
            })
        );
    }

    #[test]
    fn debug_prints_bare_indices() {
        assert_eq!(format!("{:?}", StateId::from_index(5)), "5");
        assert_eq!(
            format!("{:?}", vec![BlockId::from_index(0), BlockId::from_index(2)]),
            "[0, 2]"
        );
    }
}
