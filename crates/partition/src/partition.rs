use std::fmt;

use crate::ids::{self, StateId};

/// A partition of the elements `0..n` into disjoint blocks.
///
/// Partitions returned by the solvers are in *canonical form*: blocks are
/// numbered by their smallest element in increasing order and each block's
/// element list is sorted.  Two partitions of the same ground set are equal
/// as set-partitions iff their canonical forms are `==`.
///
/// Storage is compact: the assignment array holds dense 32-bit block ids and
/// the block lists hold packed [`StateId`]s, so a partition costs 8 bytes
/// per element instead of 16 — it is the second-largest resident structure
/// after the CSR core, and every solver keeps one live.
#[derive(Clone, PartialEq, Eq)]
pub struct Partition {
    block_of: Vec<u32>,
    blocks: Vec<Vec<StateId>>,
}

impl Partition {
    /// Builds a partition from a block-index assignment (`assignment[i]` is
    /// the block of element `i`).  Block ids may be any `Copy + Eq + Hash`
    /// values — `usize` at the public boundaries, raw `u32` when a solver
    /// hands over its compact scratch; the result is canonicalized either
    /// way (block ids renumbered by first appearance, so each block's
    /// element list comes out sorted).
    #[must_use]
    pub fn from_assignment<T: Copy + Eq + std::hash::Hash>(assignment: &[T]) -> Self {
        let mut remap = std::collections::HashMap::new();
        let mut block_of = vec![0u32; assignment.len()];
        let mut blocks: Vec<Vec<StateId>> = Vec::new();
        for (elem, &raw) in assignment.iter().enumerate() {
            let fresh = ids::narrow(remap.len());
            let id = *remap.entry(raw).or_insert(fresh);
            if id as usize == blocks.len() {
                blocks.push(Vec::new());
            }
            block_of[elem] = id;
            blocks[id as usize].push(StateId::from_index(elem));
        }
        Partition { block_of, blocks }
    }

    /// Remaps an arbitrary block-index assignment to dense compact block ids
    /// numbered by first appearance, returning the dense `u32` assignment
    /// and the element lists of each block (each sorted, since elements are
    /// visited in increasing order) as packed [`StateId`]s.
    ///
    /// This is the shared seed step of every refinement solver: it turns the
    /// raw initial blocks of an instance (or the output classes of a DFA)
    /// into the live `block_of` / `blocks` state the solver then refines —
    /// already in the 32-bit layout the solvers keep hot.
    #[must_use]
    pub fn from_raw_assignment<T: Copy + Eq + std::hash::Hash>(
        assignment: &[T],
    ) -> (Vec<u32>, Vec<Vec<StateId>>) {
        let mut remap = std::collections::HashMap::new();
        let mut block_of = vec![0u32; assignment.len()];
        let mut blocks: Vec<Vec<StateId>> = Vec::new();
        for (elem, &raw) in assignment.iter().enumerate() {
            let fresh = ids::narrow(remap.len());
            let id = *remap.entry(raw).or_insert(fresh);
            if id as usize == blocks.len() {
                blocks.push(Vec::new());
            }
            block_of[elem] = id;
            blocks[id as usize].push(StateId::from_index(elem));
        }
        (block_of, blocks)
    }

    /// The discrete partition: every element in its own block.
    #[must_use]
    pub fn discrete(n: usize) -> Self {
        let assignment: Vec<usize> = (0..n).collect();
        Partition::from_assignment(&assignment)
    }

    /// The trivial partition: all elements in a single block (or no blocks if
    /// `n == 0`).
    #[must_use]
    pub fn trivial(n: usize) -> Self {
        Partition::from_assignment(&vec![0; n])
    }

    /// Number of elements of the ground set.
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.block_of.len()
    }

    /// Number of blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The block index of an element.
    ///
    /// # Panics
    ///
    /// Panics if `element` is out of range.
    #[must_use]
    pub fn block_of(&self, element: usize) -> usize {
        self.block_of[element] as usize
    }

    /// The elements of a block, sorted, as packed [`StateId`]s.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    #[must_use]
    pub fn block(&self, block: usize) -> &[StateId] {
        &self.blocks[block]
    }

    /// All blocks, each a sorted list of packed [`StateId`]s.
    #[must_use]
    pub fn blocks(&self) -> &[Vec<StateId>] {
        &self.blocks
    }

    /// Returns `true` iff two elements share a block.
    #[must_use]
    pub fn same_block(&self, a: usize, b: usize) -> bool {
        self.block_of[a] == self.block_of[b]
    }

    /// The full block assignment: the block index of every element, in
    /// element order.
    pub fn assignment(&self) -> impl Iterator<Item = usize> + '_ {
        self.block_of.iter().map(|&b| b as usize)
    }

    /// Returns `true` iff `self` refines `coarser`: every block of `self` is
    /// contained in some block of `coarser`.
    ///
    /// # Panics
    ///
    /// Panics if the two partitions have different ground sets.
    #[must_use]
    pub fn refines(&self, coarser: &Partition) -> bool {
        assert_eq!(
            self.num_elements(),
            coarser.num_elements(),
            "partitions over different ground sets"
        );
        self.blocks.iter().all(|block| {
            block
                .windows(2)
                .all(|w| coarser.block_of(w[0].index()) == coarser.block_of(w[1].index()))
        })
    }

    /// Number of (unordered) equivalent pairs `{a, b}` with `a ≠ b`, a useful
    /// size-independent summary when comparing partitions.
    #[must_use]
    pub fn num_equivalent_pairs(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.len() * (b.len() - 1) / 2)
            .sum()
    }

    /// Heap bytes held by the partition (assignment array plus block lists),
    /// measured from live container capacities.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.block_of.capacity() * size_of::<u32>()
            + self.blocks.capacity() * size_of::<Vec<StateId>>()
            + self
                .blocks
                .iter()
                .map(|b| b.capacity() * size_of::<StateId>())
                .sum::<usize>()
    }
}

impl fmt::Debug for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Partition({} blocks over {} elements: ",
            self.num_blocks(),
            self.num_elements()
        )?;
        f.debug_list().entries(self.blocks.iter()).finish()?;
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: usize) -> StateId {
        StateId::from_index(i)
    }

    #[test]
    fn canonical_numbering_is_stable() {
        let a = Partition::from_assignment(&[5, 5, 2, 2, 9]);
        let b = Partition::from_assignment(&[0, 0, 1, 1, 7]);
        assert_eq!(a, b);
        assert_eq!(a.num_blocks(), 3);
        assert_eq!(a.block_of(0), 0);
        assert_eq!(a.block_of(2), 1);
        assert_eq!(a.block_of(4), 2);
    }

    #[test]
    fn discrete_and_trivial() {
        let d = Partition::discrete(4);
        assert_eq!(d.num_blocks(), 4);
        assert!(!d.same_block(0, 1));
        let t = Partition::trivial(4);
        assert_eq!(t.num_blocks(), 1);
        assert!(t.same_block(0, 3));
        assert_eq!(Partition::trivial(0).num_blocks(), 0);
        assert_eq!(Partition::discrete(0).num_elements(), 0);
    }

    #[test]
    fn refinement_relation() {
        let fine = Partition::from_assignment(&[0, 1, 2, 2]);
        let coarse = Partition::from_assignment(&[0, 0, 1, 1]);
        assert!(fine.refines(&coarse));
        assert!(!coarse.refines(&fine));
        assert!(fine.refines(&fine));
        assert!(Partition::discrete(4).refines(&coarse));
        assert!(coarse.refines(&Partition::trivial(4)));
    }

    #[test]
    #[should_panic(expected = "different ground sets")]
    fn refines_rejects_mismatched_sizes() {
        let a = Partition::discrete(3);
        let b = Partition::discrete(4);
        let _ = a.refines(&b);
    }

    #[test]
    fn block_contents_are_sorted() {
        let p = Partition::from_assignment(&[1, 0, 1, 0]);
        assert_eq!(p.block(0), &[s(0), s(2)]);
        assert_eq!(p.block(1), &[s(1), s(3)]);
        assert_eq!(p.blocks().len(), 2);
        assert_eq!(p.assignment().collect::<Vec<_>>(), vec![0, 1, 0, 1]);
    }

    #[test]
    fn raw_assignment_remap_is_dense_and_first_appearance_ordered() {
        let (block_of, blocks) = Partition::from_raw_assignment(&[7, 7, 3, 9, 3]);
        assert_eq!(block_of, vec![0, 0, 1, 2, 1]);
        assert_eq!(blocks, vec![vec![s(0), s(1)], vec![s(2), s(4)], vec![s(3)]]);
        let (empty_of, empty_blocks) = Partition::from_raw_assignment::<usize>(&[]);
        assert!(empty_of.is_empty());
        assert!(empty_blocks.is_empty());
    }

    #[test]
    fn compact_assignment_agrees_with_the_usize_path() {
        let raw = [4usize, 4, 0, 7, 0];
        let compact: Vec<u32> = raw.iter().map(|&b| u32::try_from(b).unwrap()).collect();
        assert_eq!(
            Partition::from_assignment(&compact),
            Partition::from_assignment(&raw)
        );
    }

    #[test]
    fn pair_counting() {
        assert_eq!(Partition::trivial(4).num_equivalent_pairs(), 6);
        assert_eq!(Partition::discrete(4).num_equivalent_pairs(), 0);
        assert_eq!(
            Partition::from_assignment(&[0, 0, 1, 1, 1]).num_equivalent_pairs(),
            1 + 3
        );
    }

    #[test]
    fn debug_output_shows_blocks() {
        let p = Partition::from_assignment(&[0, 1, 0]);
        let s = format!("{p:?}");
        assert!(s.contains("2 blocks"));
        assert!(s.contains("[0, 2]"));
    }
}
