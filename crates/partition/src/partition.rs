use std::fmt;

/// A partition of the elements `0..n` into disjoint blocks.
///
/// Partitions returned by the solvers are in *canonical form*: blocks are
/// numbered by their smallest element in increasing order and each block's
/// element list is sorted.  Two partitions of the same ground set are equal
/// as set-partitions iff their canonical forms are `==`.
#[derive(Clone, PartialEq, Eq)]
pub struct Partition {
    block_of: Vec<usize>,
    blocks: Vec<Vec<usize>>,
}

impl Partition {
    /// Builds a partition from a block-index assignment (`assignment[i]` is
    /// the block of element `i`).  Block indices may be arbitrary; the result
    /// is canonicalized.
    #[must_use]
    pub fn from_assignment(assignment: &[usize]) -> Self {
        let (block_of, blocks) = Partition::from_raw_assignment(assignment);
        Partition { block_of, blocks }
    }

    /// Remaps an arbitrary block-index assignment to dense block ids numbered
    /// by first appearance, returning the dense assignment and the
    /// element lists of each block (each sorted, since elements are visited
    /// in increasing order).
    ///
    /// This is the shared seed step of every refinement solver: it turns the
    /// raw initial blocks of an instance (or the output classes of a DFA)
    /// into the live `block_of` / `blocks` state the solver then refines.
    #[must_use]
    pub fn from_raw_assignment(assignment: &[usize]) -> (Vec<usize>, Vec<Vec<usize>>) {
        let mut remap = std::collections::HashMap::new();
        let mut block_of = vec![0usize; assignment.len()];
        let mut blocks: Vec<Vec<usize>> = Vec::new();
        for (elem, &raw) in assignment.iter().enumerate() {
            let fresh = remap.len();
            let id = *remap.entry(raw).or_insert(fresh);
            if id == blocks.len() {
                blocks.push(Vec::new());
            }
            block_of[elem] = id;
            blocks[id].push(elem);
        }
        (block_of, blocks)
    }

    /// The discrete partition: every element in its own block.
    #[must_use]
    pub fn discrete(n: usize) -> Self {
        let assignment: Vec<usize> = (0..n).collect();
        Partition::from_assignment(&assignment)
    }

    /// The trivial partition: all elements in a single block (or no blocks if
    /// `n == 0`).
    #[must_use]
    pub fn trivial(n: usize) -> Self {
        Partition::from_assignment(&vec![0; n])
    }

    /// Number of elements of the ground set.
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.block_of.len()
    }

    /// Number of blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The block index of an element.
    ///
    /// # Panics
    ///
    /// Panics if `element` is out of range.
    #[must_use]
    pub fn block_of(&self, element: usize) -> usize {
        self.block_of[element]
    }

    /// The elements of a block, sorted.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    #[must_use]
    pub fn block(&self, block: usize) -> &[usize] {
        &self.blocks[block]
    }

    /// All blocks, each a sorted list of elements.
    #[must_use]
    pub fn blocks(&self) -> &[Vec<usize>] {
        &self.blocks
    }

    /// Returns `true` iff two elements share a block.
    #[must_use]
    pub fn same_block(&self, a: usize, b: usize) -> bool {
        self.block_of[a] == self.block_of[b]
    }

    /// The full block assignment (block index per element).
    #[must_use]
    pub fn assignment(&self) -> &[usize] {
        &self.block_of
    }

    /// Returns `true` iff `self` refines `coarser`: every block of `self` is
    /// contained in some block of `coarser`.
    ///
    /// # Panics
    ///
    /// Panics if the two partitions have different ground sets.
    #[must_use]
    pub fn refines(&self, coarser: &Partition) -> bool {
        assert_eq!(
            self.num_elements(),
            coarser.num_elements(),
            "partitions over different ground sets"
        );
        self.blocks.iter().all(|block| {
            block
                .windows(2)
                .all(|w| coarser.block_of(w[0]) == coarser.block_of(w[1]))
        })
    }

    /// Number of (unordered) equivalent pairs `{a, b}` with `a ≠ b`, a useful
    /// size-independent summary when comparing partitions.
    #[must_use]
    pub fn num_equivalent_pairs(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.len() * (b.len() - 1) / 2)
            .sum()
    }
}

impl fmt::Debug for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Partition({} blocks over {} elements: ",
            self.num_blocks(),
            self.num_elements()
        )?;
        f.debug_list().entries(self.blocks.iter()).finish()?;
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_numbering_is_stable() {
        let a = Partition::from_assignment(&[5, 5, 2, 2, 9]);
        let b = Partition::from_assignment(&[0, 0, 1, 1, 7]);
        assert_eq!(a, b);
        assert_eq!(a.num_blocks(), 3);
        assert_eq!(a.block_of(0), 0);
        assert_eq!(a.block_of(2), 1);
        assert_eq!(a.block_of(4), 2);
    }

    #[test]
    fn discrete_and_trivial() {
        let d = Partition::discrete(4);
        assert_eq!(d.num_blocks(), 4);
        assert!(!d.same_block(0, 1));
        let t = Partition::trivial(4);
        assert_eq!(t.num_blocks(), 1);
        assert!(t.same_block(0, 3));
        assert_eq!(Partition::trivial(0).num_blocks(), 0);
        assert_eq!(Partition::discrete(0).num_elements(), 0);
    }

    #[test]
    fn refinement_relation() {
        let fine = Partition::from_assignment(&[0, 1, 2, 2]);
        let coarse = Partition::from_assignment(&[0, 0, 1, 1]);
        assert!(fine.refines(&coarse));
        assert!(!coarse.refines(&fine));
        assert!(fine.refines(&fine));
        assert!(Partition::discrete(4).refines(&coarse));
        assert!(coarse.refines(&Partition::trivial(4)));
    }

    #[test]
    #[should_panic(expected = "different ground sets")]
    fn refines_rejects_mismatched_sizes() {
        let a = Partition::discrete(3);
        let b = Partition::discrete(4);
        let _ = a.refines(&b);
    }

    #[test]
    fn block_contents_are_sorted() {
        let p = Partition::from_assignment(&[1, 0, 1, 0]);
        assert_eq!(p.block(0), &[0, 2]);
        assert_eq!(p.block(1), &[1, 3]);
        assert_eq!(p.blocks().len(), 2);
        assert_eq!(p.assignment(), &[0, 1, 0, 1]);
    }

    #[test]
    fn raw_assignment_remap_is_dense_and_first_appearance_ordered() {
        let (block_of, blocks) = Partition::from_raw_assignment(&[7, 7, 3, 9, 3]);
        assert_eq!(block_of, vec![0, 0, 1, 2, 1]);
        assert_eq!(blocks, vec![vec![0, 1], vec![2, 4], vec![3]]);
        let (empty_of, empty_blocks) = Partition::from_raw_assignment(&[]);
        assert!(empty_of.is_empty());
        assert!(empty_blocks.is_empty());
    }

    #[test]
    fn pair_counting() {
        assert_eq!(Partition::trivial(4).num_equivalent_pairs(), 6);
        assert_eq!(Partition::discrete(4).num_equivalent_pairs(), 0);
        assert_eq!(
            Partition::from_assignment(&[0, 0, 1, 1, 1]).num_equivalent_pairs(),
            1 + 3
        );
    }

    #[test]
    fn debug_output_shows_blocks() {
        let p = Partition::from_assignment(&[0, 1, 0]);
        let s = format!("{p:?}");
        assert!(s.contains("2 blocks"));
        assert!(s.contains("[0, 2]"));
    }
}
