//! The *naive method* for generalized partitioning (Lemma 3.2).
//!
//! Starting from the initial partition, repeatedly recompute for every
//! element its *signature* — for each relation, the set of blocks its
//! successors fall into — and split blocks so that elements with different
//! signatures are separated.  Stop when a pass makes no progress.
//!
//! Each pass costs `O(n + m)` (up to the logarithmic factor of the signature
//! grouping) and at most `n` passes are needed, matching the paper's `O(n·m)`
//! bound; simple examples (long chains) show the bound is tight.

use std::collections::HashMap;

use crate::ids;
use crate::{Instance, Partition};

/// Runs the naive refinement method and returns the coarsest consistent
/// stable partition.
#[must_use]
pub fn refine(instance: &Instance) -> Partition {
    let n = instance.num_elements();
    if n == 0 {
        return Partition::from_assignment::<usize>(&[]);
    }
    let graph = instance.graph();
    let (mut block_of, initial_blocks) = Partition::from_raw_assignment(instance.initial_blocks());
    let mut num_blocks = initial_blocks.len();

    loop {
        // Signature of x: (current block, for each label the sorted set of
        // successor blocks) — all compact 32-bit ids, so the signature keys
        // are half the size they were with `usize` blocks.
        let mut sig_to_new: HashMap<(u32, Vec<Vec<u32>>), u32> = HashMap::new();
        let mut next: Vec<u32> = vec![0; n];
        for x in 0..n {
            let mut per_label = Vec::with_capacity(instance.num_labels());
            for l in 0..instance.num_labels() {
                let mut hit: Vec<u32> = graph
                    .successors(l, x)
                    .iter()
                    .map(|&y| block_of[y.index()])
                    .collect();
                hit.sort_unstable();
                hit.dedup();
                per_label.push(hit);
            }
            let key = (block_of[x], per_label);
            let fresh = ids::narrow(sig_to_new.len());
            let id = *sig_to_new.entry(key).or_insert(fresh);
            next[x] = id;
        }
        let new_count = sig_to_new.len();
        block_of = next;
        if new_count == num_blocks {
            break;
        }
        num_blocks = new_count;
    }
    Partition::from_assignment(&block_of)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_instance() {
        let inst = Instance::new(0, 1);
        assert_eq!(refine(&inst).num_elements(), 0);
    }

    #[test]
    fn no_edges_keeps_initial_partition() {
        let mut inst = Instance::new(4, 1);
        inst.set_initial_block(0, 0);
        inst.set_initial_block(1, 0);
        inst.set_initial_block(2, 1);
        inst.set_initial_block(3, 1);
        let p = refine(&inst);
        assert_eq!(p.num_blocks(), 2);
        assert!(p.same_block(0, 1));
        assert!(p.same_block(2, 3));
        assert!(!p.same_block(0, 2));
    }

    #[test]
    fn chain_is_fully_discriminated() {
        // 0 -> 1 -> 2 -> 3: each element has a distinct distance to the dead end.
        let mut inst = Instance::new(4, 1);
        for i in 0..3 {
            inst.add_edge(0, i, i + 1);
        }
        let p = refine(&inst);
        assert_eq!(p.num_blocks(), 4);
    }

    #[test]
    fn cycles_of_identical_structure_collapse() {
        // Two disjoint 3-cycles: all six elements are equivalent.
        let mut inst = Instance::new(6, 1);
        for base in [0, 3] {
            inst.add_edge(0, base, base + 1);
            inst.add_edge(0, base + 1, base + 2);
            inst.add_edge(0, base + 2, base);
        }
        let p = refine(&inst);
        assert_eq!(p.num_blocks(), 1);
    }

    #[test]
    fn labels_are_distinguished() {
        // 0 -a-> 1, 2 -b-> 3: elements 0 and 2 differ because the labels differ.
        let mut inst = Instance::new(4, 2);
        inst.add_edge(0, 0, 1);
        inst.add_edge(1, 2, 3);
        let p = refine(&inst);
        assert!(!p.same_block(0, 2));
        assert!(p.same_block(1, 3));
        assert_eq!(p.num_blocks(), 3);
    }

    #[test]
    fn nondeterministic_branching_is_by_reachable_blocks_only() {
        // 0 -> {1, 2}, 3 -> {1}: with 1 and 2 equivalent (both dead), 0 and 3
        // are equivalent too — the *set of blocks* hit matters, not the count.
        let mut inst = Instance::new(4, 1);
        inst.add_edge(0, 0, 1);
        inst.add_edge(0, 0, 2);
        inst.add_edge(0, 3, 1);
        let p = refine(&inst);
        assert!(p.same_block(0, 3));
        assert!(p.same_block(1, 2));
        assert_eq!(p.num_blocks(), 2);
    }

    #[test]
    fn result_is_stable_and_consistent() {
        let mut inst = Instance::new(5, 2);
        inst.set_initial_block(4, 1);
        inst.add_edge(0, 0, 1);
        inst.add_edge(0, 1, 2);
        inst.add_edge(1, 2, 3);
        inst.add_edge(1, 3, 4);
        inst.add_edge(0, 4, 0);
        let p = refine(&inst);
        assert!(inst.is_consistent_stable(&p));
    }
}
