//! Incremental partition maintenance: delta-refinement under live mutation.
//!
//! The production traffic shape is a long-lived instance receiving streams
//! of small edge batches with interleaved equivalence queries.  Re-solving
//! from scratch pays the full `O(m log n)` per batch; this module keeps the
//! last stable partition alive and re-refines only what the batch touched.
//!
//! # The delta-seeded worklist
//!
//! The previous solution `P` is stable with respect to every one of its own
//! blocks over the *old* graph.  An edge edit `(ℓ, u, v)` changes the
//! preimage `pre_ℓ(B)` only for blocks `B` containing a delta **target**
//! `v`; stability with respect to every other block carries over to the new
//! graph unchanged.  So the splitter worklist is seeded with exactly the
//! blocks containing delta targets, and the plain both-halves loop (the
//! always-sound re-enqueue rule of
//! [`kanellakis_smolka::refine_both_halves`](crate::kanellakis_smolka::refine_both_halves))
//! runs to a fixpoint from `P` instead of from the initial partition.  The
//! fixpoint `P_inc` is the coarsest partition that **refines `P`** and is
//! stable over the new graph.
//!
//! # Why a certificate is needed
//!
//! `P_inc` is not always the answer: refinement from `P` can only split,
//! but edits — *including pure additions* — can **coarsen** the coarsest
//! stable partition.  Witness `S = {0, 1}` with the single edge `0 → 1` and
//! trivial `π`: the solution is `{0}, {1}` (only `0` has a successor), yet
//! adding `1 → 0` coarsens it to the single block `{0, 1}`.  No sequence of
//! splits starting from `{0}, {1}` can reach it.
//!
//! The repair is an `O(|δ|·c)` **certificate** checked after the seeded
//! fixpoint, where `class(x)` is the `P_inc` class:
//!
//! * for every effective addition `(ℓ, u, v)`: `u` already had an
//!   ℓ-successor `w` in the **old** graph with `class(w) = class(v)`;
//! * for every effective removal `(ℓ, u, v)`: `u` still has an ℓ-successor
//!   `w` in the **new** graph with `class(w) = class(v)`.
//!
//! When it holds, every edit is class-redundant at the granularity of the
//! true new solution `P*` (which `P_inc` refines, being a stable refinement
//! of `π`): each added edge into a `P*`-class is mirrored by an old edge
//! into that class and vice versa, so `P*` is stable over the *old* graph
//! too, hence refines the old solution `P`, hence refines `P_inc` by the
//! coarsest-fixpoint property of the seeded loop — and `P_inc = P*`.
//!
//! When the certificate fails the result may be coarser than `P_inc`, and
//! the module falls back to a **quotient rebuild**: because `P_inc` is
//! stable, the edge-labelled quotient of the new graph by `P_inc` is
//! well-defined and its stable partitions correspond exactly to the stable
//! coarsenings of `P_inc`; solving the quotient (|blocks| elements, deduped
//! block-level edges) and lifting gives `P*` at a cost that shrinks with
//! the solution size instead of the graph size.  A whole-graph rebuild
//! remains the safety net: batches touching more than a
//! [`CCS_DELTA_THRESHOLD`](DELTA_THRESHOLD_ENV) fraction of the ground set
//! skip the incremental machinery entirely.
//!
//! Every path is unconditionally exact — the tests (and the report's DELTA
//! table) assert block-for-block equality with a from-scratch solve after
//! every batch.

use std::collections::HashMap;

use crate::ids::{self, StateId};
use crate::{solve, Algorithm, Instance, Partition};

/// Environment variable naming the touched-state fraction above which
/// [`DeltaRefiner`] abandons delta-refinement for a whole-graph rebuild.
pub const DELTA_THRESHOLD_ENV: &str = "CCS_DELTA_THRESHOLD";

/// The touched-state-fraction rebuild threshold: `CCS_DELTA_THRESHOLD` when
/// set to a finite non-negative number, else `0.25`.
///
/// A batch whose effective edits mention more than `threshold · n` distinct
/// endpoints takes the [`DeltaPath::FullRebuild`] path — at that size the
/// seeded worklist degenerates toward a from-scratch refinement anyway.
#[must_use]
pub fn default_threshold() -> f64 {
    std::env::var(DELTA_THRESHOLD_ENV)
        .ok()
        .and_then(|raw| raw.trim().parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t >= 0.0)
        .unwrap_or(0.25)
}

/// An edge batch: `removals` are applied first, then `additions`, so an
/// edge named on both sides ends up present.  Duplicates, already-present
/// additions and absent removals are harmless no-ops.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeDelta {
    /// Edges `(label, from, to)` to add.
    pub additions: Vec<(usize, usize, usize)>,
    /// Edges `(label, from, to)` to remove.
    pub removals: Vec<(usize, usize, usize)>,
}

impl EdgeDelta {
    /// A pure-addition batch.
    #[must_use]
    pub fn added(edges: Vec<(usize, usize, usize)>) -> Self {
        EdgeDelta {
            additions: edges,
            removals: Vec::new(),
        }
    }

    /// A pure-removal batch.
    #[must_use]
    pub fn removed(edges: Vec<(usize, usize, usize)>) -> Self {
        EdgeDelta {
            additions: Vec::new(),
            removals: edges,
        }
    }

    /// Whether the batch names no edges at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.additions.is_empty() && self.removals.is_empty()
    }
}

/// Which maintenance path a batch took.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeltaPath {
    /// Every edit was a no-op (already present / already absent): the graph
    /// and the partition are untouched.
    Unchanged,
    /// The delta-seeded worklist ran to a fixpoint and the certificate
    /// proved it coarsest — no rebuild of any kind.
    Incremental,
    /// The certificate failed (the batch may coarsen); the quotient by the
    /// seeded fixpoint was solved and lifted.
    QuotientRebuild,
    /// The batch touched more than the threshold fraction of the ground
    /// set; the partition was re-solved from scratch.
    FullRebuild,
}

impl std::fmt::Display for DeltaPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DeltaPath::Unchanged => "unchanged",
            DeltaPath::Incremental => "incremental",
            DeltaPath::QuotientRebuild => "quotient-rebuild",
            DeltaPath::FullRebuild => "full-rebuild",
        })
    }
}

/// Counters describing how a [`DeltaRefiner`] has earned its keep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Batches applied.
    pub batches: usize,
    /// Batches that were no-ops.
    pub unchanged: usize,
    /// Batches resolved purely by seeded refinement.
    pub incremental: usize,
    /// Batches that fell back to the quotient rebuild.
    pub quotient_rebuilds: usize,
    /// Batches that exceeded the threshold and re-solved from scratch.
    pub full_rebuilds: usize,
    /// Block splits performed by the seeded worklist across all batches.
    pub splits: usize,
}

/// Maintains the coarsest stable partition of an [`Instance`] across edge
/// batches, re-refining only what each batch touched.
///
/// The refiner owns the instance and its current solution; between batches
/// the solution is always exactly `solve(instance, algorithm)` — an
/// invariant the test-suite and the report's DELTA table cross-check
/// against a from-scratch oracle after every step.
///
/// ```
/// use ccs_partition::{incremental::{DeltaRefiner, EdgeDelta, DeltaPath}, Algorithm, Instance};
/// let mut inst = Instance::new(4, 1);
/// inst.add_edge(0, 0, 1);
/// inst.add_edge(0, 2, 3);
/// // Tiny toy ground set: raise the rebuild threshold so the delta path runs.
/// let mut refiner = DeltaRefiner::with_threshold(inst, Algorithm::KanellakisSmolka, 1.0);
/// assert_eq!(refiner.partition().num_blocks(), 2); // {0,2}, {1,3}
/// // A mirrored edge is class-redundant: no rebuild, same partition.
/// let path = refiner.apply(&EdgeDelta::added(vec![(0, 0, 3)]));
/// assert_eq!(path, DeltaPath::Incremental);
/// assert_eq!(refiner.partition().num_blocks(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct DeltaRefiner {
    instance: Instance,
    partition: Partition,
    algorithm: Algorithm,
    threshold: f64,
    stats: DeltaStats,
}

impl DeltaRefiner {
    /// Solves `instance` once and stands ready to maintain the solution,
    /// with the rebuild threshold from [`default_threshold`].
    #[must_use]
    pub fn new(instance: Instance, algorithm: Algorithm) -> Self {
        DeltaRefiner::with_threshold(instance, algorithm, default_threshold())
    }

    /// As [`DeltaRefiner::new`] with an explicit touched-fraction rebuild
    /// threshold (`0.0` forces every non-empty batch down the full-rebuild
    /// path; `1.0` effectively disables the safety net).
    #[must_use]
    pub fn with_threshold(instance: Instance, algorithm: Algorithm, threshold: f64) -> Self {
        let partition = solve(&instance, algorithm);
        DeltaRefiner {
            instance,
            partition,
            algorithm,
            threshold,
            stats: DeltaStats::default(),
        }
    }

    /// The maintained instance (already reflecting every applied batch).
    #[must_use]
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The current coarsest stable partition.
    #[must_use]
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The solver used for the initial solve and any rebuild path.
    #[must_use]
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The touched-fraction rebuild threshold in effect.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Per-path counters accumulated over all applied batches.
    #[must_use]
    pub fn stats(&self) -> DeltaStats {
        self.stats
    }

    /// Heap bytes held by the refiner's bookkeeping: the owned instance
    /// (base CSR, pending-delta buffer, merged layout) plus the retained
    /// partition.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.instance.resident_bytes() + self.partition.resident_bytes()
    }

    /// Applies an edge batch and brings the partition back to the coarsest
    /// stable solution, reporting which maintenance path ran.
    ///
    /// # Panics
    ///
    /// Panics if any edge in the batch mentions an out-of-range label or
    /// element (the instance is untouched in that case).
    pub fn apply(&mut self, delta: &EdgeDelta) -> DeltaPath {
        self.stats.batches += 1;
        // Effective edits against the current graph: removals first, then
        // additions, so an edge named on both sides stays present.
        let mut removed: Vec<(usize, usize, usize)> = delta
            .removals
            .iter()
            .copied()
            .filter(|&(l, f, t)| {
                self.instance.has_edge(l, f, t) && !delta.additions.contains(&(l, f, t))
            })
            .collect();
        removed.sort_unstable();
        removed.dedup();
        let mut added: Vec<(usize, usize, usize)> = delta
            .additions
            .iter()
            .copied()
            .filter(|&(l, f, t)| !self.instance.has_edge(l, f, t))
            .collect();
        added.sort_unstable();
        added.dedup();
        if added.is_empty() && removed.is_empty() {
            self.stats.unchanged += 1;
            return DeltaPath::Unchanged;
        }
        self.instance.apply_delta(&delta.additions, &delta.removals);
        let (partition, path, splits) = refine_delta_counted(
            &self.instance,
            &self.partition,
            &added,
            &removed,
            self.algorithm,
            self.threshold,
        );
        self.partition = partition;
        self.stats.splits += splits;
        match path {
            DeltaPath::Unchanged => self.stats.unchanged += 1,
            DeltaPath::Incremental => self.stats.incremental += 1,
            DeltaPath::QuotientRebuild => self.stats.quotient_rebuilds += 1,
            DeltaPath::FullRebuild => self.stats.full_rebuilds += 1,
        }
        path
    }
}

/// The stateless core: given an instance whose graph **already reflects**
/// an edge batch, the coarsest stable partition `previous` of the graph
/// *before* the batch, and the batch's *effective* edits (each addition
/// genuinely new, each removal genuinely gone, the two sets disjoint),
/// returns the coarsest stable partition of the new graph and the path
/// taken.
///
/// This is the entry point for callers that own their instance (the
/// session layer): [`DeltaRefiner`] wraps it with effective-edit
/// computation and instance mutation.
#[must_use]
pub fn refine_delta(
    instance: &Instance,
    previous: &Partition,
    effective_additions: &[(usize, usize, usize)],
    effective_removals: &[(usize, usize, usize)],
    algorithm: Algorithm,
    threshold: f64,
) -> (Partition, DeltaPath) {
    let (partition, path, _) = refine_delta_counted(
        instance,
        previous,
        effective_additions,
        effective_removals,
        algorithm,
        threshold,
    );
    (partition, path)
}

fn refine_delta_counted(
    instance: &Instance,
    previous: &Partition,
    effective_additions: &[(usize, usize, usize)],
    effective_removals: &[(usize, usize, usize)],
    algorithm: Algorithm,
    threshold: f64,
) -> (Partition, DeltaPath, usize) {
    assert_eq!(
        previous.num_elements(),
        instance.num_elements(),
        "previous partition covers a different ground set"
    );
    if effective_additions.is_empty() && effective_removals.is_empty() {
        return (previous.clone(), DeltaPath::Unchanged, 0);
    }
    let n = instance.num_elements();
    // Safety net: a batch touching a large fraction of the ground set
    // degenerates toward a from-scratch refinement — just do that.
    let mut endpoints: Vec<usize> = effective_additions
        .iter()
        .chain(effective_removals)
        .flat_map(|&(_, from, to)| [from, to])
        .collect();
    endpoints.sort_unstable();
    endpoints.dedup();
    #[allow(clippy::cast_precision_loss)]
    if endpoints.len() as f64 > threshold * n as f64 {
        return (solve(instance, algorithm), DeltaPath::FullRebuild, 0);
    }
    // Fast path: only delta *sources* have changed rows, so if every edited
    // row still hits exactly the same set of `previous`-classes, `previous`
    // is stable over the new graph — and every edit is class-redundant at
    // `previous` granularity, which is precisely the certificate.  Both
    // halves of the exactness argument hold at once: the old solution *is*
    // the new solution, at `O(|δ|·c)` cost with no block scans at all.
    if signatures_preserved(instance, previous, effective_additions, effective_removals) {
        return (previous.clone(), DeltaPath::Incremental, 0);
    }
    let (class_of, splits) =
        seeded_refinement(instance, previous, effective_additions, effective_removals);
    if certificate_holds(instance, &class_of, effective_additions, effective_removals) {
        (
            Partition::from_assignment(&class_of),
            DeltaPath::Incremental,
            splits,
        )
    } else {
        (
            quotient_solve(instance, &class_of, algorithm),
            DeltaPath::QuotientRebuild,
            splits,
        )
    }
}

/// Whether every edited successor row hits exactly the same set of
/// `previous`-classes before and after the batch.  Old rows are
/// reconstructed from the new ones by undoing the batch (the effective
/// edits are disjoint, so `old = (new \ added) ∪ removed` row-wise).
///
/// When this holds, `previous` is still stable over the new graph (only
/// delta sources have changed rows, and their class signatures did not
/// move) *and* the class-redundancy certificate holds at `previous`
/// granularity (every added edge lands in a class the old row already hit;
/// every removed edge leaves a class the new row still hits) — so
/// `previous` is the coarsest stable partition of the new graph outright.
fn signatures_preserved(
    instance: &Instance,
    previous: &Partition,
    effective_additions: &[(usize, usize, usize)],
    effective_removals: &[(usize, usize, usize)],
) -> bool {
    let graph = instance.graph();
    let mut added_from: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    for &(l, u, v) in effective_additions {
        added_from.entry((l, u)).or_default().push(v);
    }
    let mut removed_from: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    for &(l, u, v) in effective_removals {
        removed_from.entry((l, u)).or_default().push(v);
    }
    let mut rows: Vec<(usize, usize)> = added_from
        .keys()
        .chain(removed_from.keys())
        .copied()
        .collect();
    rows.sort_unstable();
    rows.dedup();
    for (l, u) in rows {
        let added = added_from.get(&(l, u));
        let removed = removed_from.get(&(l, u));
        let class_set = |old: bool| -> Vec<usize> {
            let mut classes: Vec<usize> = graph
                .successors(l, u)
                .iter()
                .filter(|&&w| !(old && added.is_some_and(|a| a.contains(&w.index()))))
                .map(|&w| previous.block_of(w.index()))
                .collect();
            if old {
                if let Some(removed) = removed {
                    classes.extend(removed.iter().map(|&w| previous.block_of(w)));
                }
            }
            classes.sort_unstable();
            classes.dedup();
            classes
        };
        if class_set(true) != class_set(false) {
            return false;
        }
    }
    true
}

/// Runs the both-halves splitter loop over the **new** graph starting from
/// `previous`, seeded by a direct *source split*: only delta sources have
/// changed rows, so `previous` can only be unstable (over old blocks) at
/// the sources themselves.  Each changed source is split off its block and
/// grouped by its new per-label class signature; the worklist is seeded
/// with exactly the split products, whose preimages are the only remaining
/// stability obligations.  Any stable refinement of `previous` separates
/// elements with different signatures at `previous` granularity, so the
/// fixpoint is the same coarsest stable refinement the naive
/// target-block seed reaches — without ever scanning an unsplit block.
/// Returns the fixpoint assignment and the number of splits performed.
fn seeded_refinement(
    instance: &Instance,
    previous: &Partition,
    effective_additions: &[(usize, usize, usize)],
    effective_removals: &[(usize, usize, usize)],
) -> (Vec<u32>, usize) {
    let graph = instance.graph();
    let n = instance.num_elements();
    let prev_assignment: Vec<usize> = previous.assignment().collect();
    let (mut block_of, mut blocks) = Partition::from_raw_assignment(&prev_assignment);
    let mut splits = 0usize;

    // Per-row undo books, as in the certificate: old = (new \ added) ∪ removed.
    let mut added_from: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    for &(l, u, v) in effective_additions {
        added_from.entry((l, u)).or_default().push(v);
    }
    let mut removed_from: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    for &(l, u, v) in effective_removals {
        removed_from.entry((l, u)).or_default().push(v);
    }
    // The full per-label class signature of `u`'s successor rows; `old`
    // reconstructs the pre-batch rows by undoing the edits.
    let signature = |u: usize, old: bool| -> Vec<Vec<u32>> {
        (0..instance.num_labels())
            .map(|l| {
                let added = added_from.get(&(l, u));
                let mut classes: Vec<u32> = graph
                    .successors(l, u)
                    .iter()
                    .filter(|&&w| !(old && added.is_some_and(|a| a.contains(&w.index()))))
                    .map(|&w| block_of[w.index()])
                    .collect();
                if old {
                    if let Some(removed) = removed_from.get(&(l, u)) {
                        classes.extend(removed.iter().map(|&w| block_of[w]));
                    }
                }
                classes.sort_unstable();
                classes.dedup();
                classes
            })
            .collect()
    };

    let mut sources: Vec<usize> = effective_additions
        .iter()
        .chain(effective_removals)
        .map(|&(_, from, _)| from)
        .collect();
    sources.sort_unstable();
    sources.dedup();
    // Group the sources whose signature moved, per block, by new signature.
    // `previous` is uniform within a block, so one undone signature speaks
    // for the whole pre-batch block.
    type SignatureGroups = Vec<(Vec<Vec<u32>>, Vec<usize>)>;
    let mut moved: HashMap<u32, SignatureGroups> = HashMap::new();
    for &u in &sources {
        let d = block_of[u];
        let new_sig = signature(u, false);
        if new_sig == signature(u, true) {
            continue;
        }
        let groups = moved.entry(d).or_default();
        match groups.iter_mut().find(|(sig, _)| *sig == new_sig) {
            Some((_, members)) => members.push(u),
            None => groups.push((new_sig, vec![u])),
        }
    }

    let mut worklist: Vec<u32> = Vec::new();
    let mut enqueued: Vec<u32> = Vec::new();
    for (d, groups) in moved {
        let in_group: Vec<usize> = groups.iter().flat_map(|(_, m)| m.iter().copied()).collect();
        let mut remainder: Vec<StateId> = blocks[d as usize]
            .iter()
            .copied()
            .filter(|x| !in_group.contains(&x.index()))
            .collect();
        enqueued.push(d);
        for (_, members) in groups {
            let members: Vec<StateId> = members.into_iter().map(StateId::from_index).collect();
            if remainder.is_empty() {
                // Every member moved: the last group keeps `d`'s identity.
                remainder = members;
                continue;
            }
            let new_id = ids::narrow(blocks.len());
            for x in &members {
                block_of[x.index()] = new_id;
            }
            blocks.push(members);
            enqueued.push(new_id);
            splits += 1;
        }
        blocks[d as usize] = remainder;
    }
    let mut on_worklist = vec![false; blocks.len()];
    for id in enqueued {
        if !on_worklist[id as usize] {
            on_worklist[id as usize] = true;
            worklist.push(id);
        }
    }

    // From here the loop is `refine_both_halves` verbatim: the simple
    // always-sound re-enqueue rule, which tolerates the partial seed.
    let mut marked: Vec<u64> = vec![0; n];
    let mut touched_stamp: Vec<u64> = vec![0; blocks.len()];
    let mut epoch: u64 = 0;

    while let Some(splitter) = worklist.pop() {
        on_worklist[splitter as usize] = false;
        let splitter_elems = blocks[splitter as usize].clone();
        for label in 0..instance.num_labels() {
            epoch += 1;
            let mut touched_blocks: Vec<u32> = Vec::new();
            for &y in &splitter_elems {
                for &x in graph.predecessors(label, y.index()) {
                    if marked[x.index()] != epoch {
                        marked[x.index()] = epoch;
                        let d = block_of[x.index()];
                        if touched_stamp[d as usize] != epoch {
                            touched_stamp[d as usize] = epoch;
                            touched_blocks.push(d);
                        }
                    }
                }
            }
            for &d in &touched_blocks {
                let (inside, outside): (Vec<StateId>, Vec<StateId>) = blocks[d as usize]
                    .iter()
                    .partition(|&&x| marked[x.index()] == epoch);
                if inside.is_empty() || outside.is_empty() {
                    continue;
                }
                let new_id = ids::narrow(blocks.len());
                for &x in &outside {
                    block_of[x.index()] = new_id;
                }
                blocks[d as usize] = inside;
                blocks.push(outside);
                on_worklist.push(false);
                touched_stamp.push(0);
                splits += 1;
                for id in [d, new_id] {
                    if !on_worklist[id as usize] {
                        on_worklist[id as usize] = true;
                        worklist.push(id);
                    }
                }
            }
        }
    }

    (block_of, splits)
}

/// The class-redundancy certificate: true iff every effective addition was
/// already mirrored class-wise in the old graph and every effective removal
/// is still mirrored in the new graph, at the granularity of the seeded
/// fixpoint `class_of`.  When it holds the fixpoint *is* the coarsest
/// stable partition of the new graph (see the module docs for the proof
/// sketch); when it fails the true solution may be coarser.
fn certificate_holds(
    instance: &Instance,
    class_of: &[u32],
    effective_additions: &[(usize, usize, usize)],
    effective_removals: &[(usize, usize, usize)],
) -> bool {
    let graph = instance.graph();
    // Removals: `u` must still reach v's class in the *new* graph.
    for &(l, u, v) in effective_removals {
        let class = class_of[v];
        if !graph
            .successors(l, u)
            .iter()
            .any(|&w| class_of[w.index()] == class)
        {
            return false;
        }
    }
    if effective_additions.is_empty() {
        return true;
    }
    // Additions: `u` must have reached v's class in the *old* graph, whose
    // successor lists are reconstructed from the new ones by undoing the
    // batch — old = (new \ added-from-u) ∪ removed-from-u.
    let mut added_from: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    for &(l, u, v) in effective_additions {
        added_from.entry((l, u)).or_default().push(v);
    }
    let mut removed_from: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    for &(l, u, v) in effective_removals {
        removed_from.entry((l, u)).or_default().push(v);
    }
    for &(l, u, v) in effective_additions {
        let class = class_of[v];
        let added = added_from.get(&(l, u));
        let surviving_old = graph.successors(l, u).iter().any(|&w| {
            class_of[w.index()] == class && !added.is_some_and(|a| a.contains(&w.index()))
        });
        let undone_old = removed_from
            .get(&(l, u))
            .is_some_and(|r| r.iter().any(|&w| class_of[w] == class));
        if !surviving_old && !undone_old {
            return false;
        }
    }
    true
}

/// Solves the quotient of the instance by the stable partition `class_of`
/// and lifts the result — the scoped rebuild for certificate failures.
///
/// Because `class_of` is stable over the instance's graph and refines the
/// true solution, the stable partitions of the quotient correspond exactly
/// to the stable coarsenings of `class_of`; the lifted coarsest quotient
/// solution is therefore the coarsest stable partition of the full
/// instance, at the cost of a solve over `|blocks|` elements.
fn quotient_solve(instance: &Instance, class_of: &[u32], algorithm: Algorithm) -> Partition {
    let num_classes = class_of.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
    let mut quotient = Instance::new(num_classes, instance.num_labels());
    // Classes refine the initial partition, so any member's initial block
    // speaks for the whole class.
    let initial = instance.initial_blocks();
    for (x, &c) in class_of.iter().enumerate() {
        quotient.set_initial_block(c as usize, initial[x] as usize);
    }
    let mut edges: Vec<(usize, usize, usize)> = instance
        .graph()
        .edges()
        .map(|(l, x, y)| (l, class_of[x] as usize, class_of[y] as usize))
        .collect();
    edges.sort_unstable();
    edges.dedup();
    quotient.reserve_edges(edges.len());
    for (l, from, to) in edges {
        quotient.add_edge(l, from, to);
    }
    let solved = solve(&quotient, algorithm);
    let lifted: Vec<usize> = class_of
        .iter()
        .map(|&c| solved.block_of(c as usize))
        .collect();
    Partition::from_assignment(&lifted)
}

#[cfg(test)]
// Test RNG draws narrow by `as` on purpose; the lint guards library code.
#[allow(clippy::cast_possible_truncation)]
mod tests {
    use super::*;

    /// Applies the batch to a fresh copy and cross-checks the refiner's
    /// partition against a from-scratch solve.
    fn assert_matches_oracle(refiner: &DeltaRefiner) {
        let oracle = solve(refiner.instance(), Algorithm::PaigeTarjan);
        assert_eq!(
            refiner.partition(),
            &oracle,
            "delta result != from-scratch oracle"
        );
        assert!(refiner.instance().is_consistent_stable(refiner.partition()));
    }

    #[test]
    fn pure_addition_can_coarsen_and_is_still_exact() {
        // The counterexample from the module docs: adding 1 -> 0 to the
        // single edge 0 -> 1 *coarsens* {0},{1} to {0,1}.  No split
        // sequence reaches it; the certificate must fail and the quotient
        // rebuild must recover the coarser answer.
        let mut inst = Instance::new(2, 1);
        inst.add_edge(0, 0, 1);
        let mut refiner = DeltaRefiner::with_threshold(inst, Algorithm::KanellakisSmolka, 1.0);
        assert_eq!(refiner.partition().num_blocks(), 2);
        let path = refiner.apply(&EdgeDelta::added(vec![(0, 1, 0)]));
        assert_eq!(path, DeltaPath::QuotientRebuild);
        assert_eq!(refiner.partition().num_blocks(), 1);
        assert_matches_oracle(&refiner);
    }

    #[test]
    fn class_redundant_addition_stays_incremental() {
        // Two parallel 2-cycles: one block.  A cross-cycle edge is
        // class-redundant, so the certificate holds and nothing rebuilds.
        let mut inst = Instance::new(4, 1);
        for (f, t) in [(0, 1), (1, 0), (2, 3), (3, 2)] {
            inst.add_edge(0, f, t);
        }
        let mut refiner = DeltaRefiner::with_threshold(inst, Algorithm::PaigeTarjan, 1.0);
        assert_eq!(refiner.partition().num_blocks(), 1);
        let path = refiner.apply(&EdgeDelta::added(vec![(0, 0, 3)]));
        assert_eq!(path, DeltaPath::Incremental);
        assert_eq!(refiner.partition().num_blocks(), 1);
        assert_matches_oracle(&refiner);
        assert_eq!(refiner.stats().incremental, 1);
    }

    #[test]
    fn refining_addition_splits_incrementally_when_certified() {
        // {0,2},{1,3} from 0 -> 1, 2 -> 3.  Adding 1 -> 2 gives 1 a
        // successor 3 lacks: the seeded loop must split {1,3}, and since
        // the addition is genuinely refining the certificate fails (1 had
        // no old successor at all) — the quotient path re-derives the
        // split result exactly.
        let mut inst = Instance::new(4, 1);
        inst.add_edge(0, 0, 1);
        inst.add_edge(0, 2, 3);
        let mut refiner = DeltaRefiner::with_threshold(inst, Algorithm::KanellakisSmolka, 1.0);
        assert_eq!(refiner.partition().num_blocks(), 2);
        refiner.apply(&EdgeDelta::added(vec![(0, 1, 2)]));
        assert_matches_oracle(&refiner);
        assert!(!refiner.partition().same_block(1, 3));
    }

    #[test]
    fn removal_with_surviving_mirror_stays_incremental() {
        // 0 has two edges into the same class; dropping one is
        // class-redundant in the new graph.
        let mut inst = Instance::new(4, 1);
        inst.add_edge(0, 0, 1);
        inst.add_edge(0, 0, 2);
        inst.add_edge(0, 3, 1); // keeps 1, 2 in one (dead) class with 3's target
        let mut refiner = DeltaRefiner::with_threshold(inst, Algorithm::PaigeTarjan, 1.0);
        let path = refiner.apply(&EdgeDelta::removed(vec![(0, 0, 2)]));
        assert_eq!(path, DeltaPath::Incremental);
        assert_matches_oracle(&refiner);
    }

    #[test]
    fn removal_that_coarsens_takes_the_quotient_path() {
        // 0 -> 1 with trivial π: {0},{1}.  Removing the edge coarsens to
        // one block.
        let mut inst = Instance::new(2, 1);
        inst.add_edge(0, 0, 1);
        let mut refiner = DeltaRefiner::with_threshold(inst, Algorithm::KanellakisSmolka, 1.0);
        let path = refiner.apply(&EdgeDelta::removed(vec![(0, 0, 1)]));
        assert_eq!(path, DeltaPath::QuotientRebuild);
        assert_eq!(refiner.partition().num_blocks(), 1);
        assert_matches_oracle(&refiner);
    }

    #[test]
    fn noop_batches_leave_everything_untouched() {
        let mut inst = Instance::new(3, 1);
        inst.add_edge(0, 0, 1);
        let mut refiner = DeltaRefiner::with_threshold(inst, Algorithm::PaigeTarjan, 1.0);
        let before = refiner.partition().clone();
        // Already present, already absent, and present-on-both-sides.
        assert_eq!(
            refiner.apply(&EdgeDelta::added(vec![(0, 0, 1)])),
            DeltaPath::Unchanged
        );
        assert_eq!(
            refiner.apply(&EdgeDelta::removed(vec![(0, 2, 2)])),
            DeltaPath::Unchanged
        );
        assert_eq!(
            refiner.apply(&EdgeDelta {
                additions: vec![(0, 0, 1)],
                removals: vec![(0, 0, 1)],
            }),
            DeltaPath::Unchanged
        );
        assert_eq!(refiner.partition(), &before);
        assert_eq!(refiner.stats().unchanged, 3);
        assert_eq!(refiner.stats().batches, 3);
    }

    #[test]
    fn oversized_batches_fall_back_to_a_full_rebuild() {
        let mut inst = Instance::new(4, 1);
        inst.add_edge(0, 0, 1);
        let mut refiner = DeltaRefiner::with_threshold(inst, Algorithm::KanellakisSmolka, 0.0);
        let path = refiner.apply(&EdgeDelta::added(vec![(0, 1, 2)]));
        assert_eq!(path, DeltaPath::FullRebuild);
        assert_matches_oracle(&refiner);
        assert_eq!(refiner.stats().full_rebuilds, 1);
    }

    #[test]
    fn edge_present_on_both_sides_survives() {
        let mut inst = Instance::new(3, 1);
        inst.add_edge(0, 0, 1);
        let mut refiner = DeltaRefiner::with_threshold(inst, Algorithm::PaigeTarjan, 1.0);
        refiner.apply(&EdgeDelta {
            additions: vec![(0, 0, 1), (0, 1, 2)],
            removals: vec![(0, 0, 1)],
        });
        assert!(refiner.instance().has_edge(0, 0, 1));
        assert!(refiner.instance().has_edge(0, 1, 2));
        assert_matches_oracle(&refiner);
    }

    #[test]
    fn respects_the_initial_partition_across_deltas() {
        let mut inst = Instance::new(4, 1);
        inst.set_initial_block(3, 1);
        inst.add_edge(0, 0, 1);
        let mut refiner = DeltaRefiner::with_threshold(inst, Algorithm::KanellakisSmolka, 1.0);
        // 1, 2 are both dead and same initial block; 3 is dead but fenced
        // off by the initial partition — and must stay fenced off after a
        // coarsening removal.
        refiner.apply(&EdgeDelta::removed(vec![(0, 0, 1)]));
        assert_matches_oracle(&refiner);
        assert!(refiner.partition().same_block(0, 1));
        assert!(!refiner.partition().same_block(0, 3));
    }

    #[test]
    fn threshold_env_knob_parses_and_defaults() {
        // No concurrent test in this crate reads the knob (all construct
        // with explicit thresholds), so mutating the env here is safe.
        std::env::remove_var(DELTA_THRESHOLD_ENV);
        assert!((default_threshold() - 0.25).abs() < 1e-9);
        std::env::set_var(DELTA_THRESHOLD_ENV, "0.5");
        assert!((default_threshold() - 0.5).abs() < 1e-9);
        std::env::set_var(DELTA_THRESHOLD_ENV, "not-a-number");
        assert!((default_threshold() - 0.25).abs() < 1e-9);
        std::env::set_var(DELTA_THRESHOLD_ENV, "-1");
        assert!((default_threshold() - 0.25).abs() < 1e-9);
        std::env::remove_var(DELTA_THRESHOLD_ENV);
    }

    #[test]
    fn random_edit_streams_match_the_oracle_for_every_solver() {
        let mut seed: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for algorithm in Algorithm::ALL {
            let n = 10 + (next() % 8) as usize;
            let labels = 1 + (next() % 2) as usize;
            let mut inst = Instance::new(n, labels);
            for _ in 0..2 * n {
                inst.add_edge(
                    (next() % labels as u64) as usize,
                    (next() % n as u64) as usize,
                    (next() % n as u64) as usize,
                );
            }
            let mut refiner = DeltaRefiner::with_threshold(inst, algorithm, 1.0);
            for _ in 0..12 {
                let edge = (
                    (next() % labels as u64) as usize,
                    (next() % n as u64) as usize,
                    (next() % n as u64) as usize,
                );
                let delta = if next() % 3 == 0 {
                    EdgeDelta::removed(vec![edge])
                } else {
                    EdgeDelta::added(vec![edge])
                };
                refiner.apply(&delta);
                assert_matches_oracle(&refiner);
            }
            let stats = refiner.stats();
            assert_eq!(stats.batches, 12, "{algorithm}");
            assert_eq!(
                stats.unchanged + stats.incremental + stats.quotient_rebuilds + stats.full_rebuilds,
                12,
                "{algorithm}"
            );
        }
    }

    #[test]
    fn resident_bytes_counts_instance_and_partition() {
        let mut inst = Instance::new(64, 1);
        for i in 0..63 {
            inst.add_edge(0, i, i + 1);
        }
        let refiner = DeltaRefiner::with_threshold(inst, Algorithm::PaigeTarjan, 1.0);
        let bytes = refiner.resident_bytes();
        assert!(bytes >= refiner.instance().resident_bytes());
        assert!(bytes >= refiner.partition().resident_bytes());
    }
}
