use crate::ids;

/// A disjoint-set (UNION-FIND) structure with path compression and union by
/// rank, as used by the `O(N·α(N))` DFA equivalence test the paper recalls
/// from Aho, Hopcroft & Ullman (Section 3).
///
/// Parent links are stored as `u32` — five bytes per element together with
/// the rank byte — since element counts are bounded by the packed 32-bit id
/// range everywhere this structure is used.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the 32-bit id range.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let _ = ids::narrow(n);
        UnionFind {
            parent: (0..n).map(ids::narrow).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` iff the structure has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently represented.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// The canonical representative of the set containing `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = ids::narrow(x);
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = ids::narrow(x);
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root as usize
    }

    /// Merges the sets containing `a` and `b`; returns `true` iff they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.num_sets -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = ids::narrow(rb),
            std::cmp::Ordering::Greater => self.parent[rb] = ids::narrow(ra),
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ids::narrow(ra);
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Returns `true` iff `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_distinct() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_sets(), 4);
        assert!(!uf.same(0, 1));
        assert_eq!(uf.len(), 4);
        assert!(!uf.is_empty());
        assert!(UnionFind::new(0).is_empty());
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.num_sets(), 3);
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
        assert!(uf.union(1, 3));
        assert!(uf.same(0, 2));
        assert_eq!(uf.num_sets(), 2);
    }

    #[test]
    fn transitive_chains_collapse() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_sets(), 1);
        assert!(uf.same(0, 99));
        let root = uf.find(50);
        assert_eq!(uf.find(0), root);
    }
}
