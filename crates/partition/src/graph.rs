//! The flat compressed-sparse-row transition core shared by every solver.
//!
//! A [`LabeledGraph`] stores the `k` labelled relations of a generalized
//! partitioning instance as four contiguous arrays: `succ_targets` /
//! `pred_targets` hold all edge endpoints back to back, and two offset
//! tables of length `k·n + 1` delimit, for every `(label, element)` slot,
//! the half-open range of that element's successor / predecessor list.
//! Compared with the previous `Vec<Vec<Vec<usize>>>` triple indirection this
//! removes two pointer chases per adjacency query and keeps each list —
//! and consecutive lists of the same label — on the same cache lines, which
//! is where the refinement solvers spend almost all of their time.
//!
//! All four arrays are 32-bit: targets are packed [`StateId`]s and offsets
//! are `u32` positions into the target arrays, which halves the resident
//! bytes of the core on 64-bit targets and doubles how many adjacent list
//! entries fit a cache line.  Builders reject ground sets larger than
//! [`crate::ids::MAX_ELEMENTS`] up front
//! ([`GraphBuilder::try_new`] reports [`IdOverflow`] instead of panicking),
//! so no conversion inside the hot paths can truncate.
//!
//! Graphs are built through a [`GraphBuilder`] that records a flat edge
//! list — one edge at a time with [`GraphBuilder::add_edge`] or in bulk with
//! [`GraphBuilder::extend_edges`] — and, at [`GraphBuilder::build`] time,
//! sorts it, removes duplicate parallel edges (the `fₗ` are set-valued, so
//! parallel edges carry no information), and lays out both CSR directions in
//! `O(m log m)`.  Recorded edges are packed `(LabelId, StateId, StateId)`
//! triples (12 bytes instead of 24), and since id packing is monotonic the
//! packed triples sort exactly like the `(label, from, to)` index triples.
//! The builder also records the maximum fan-out `c = max |fₗ(x)|` so that
//! [`LabeledGraph::max_fanout`] — the parameter of the Kanellakis–Smolka
//! `O(c²·n·log n)` bound — is an `O(1)` field read instead of a rescan.
//!
//! A built graph is not a dead end: [`LabeledGraph::merged_with`] folds a
//! batch of new edges into an existing layout by a sorted two-way merge in
//! `O(m + p log p)` (for `p` new edges), which is what makes incremental
//! [`Instance::add_edge`](crate::Instance::add_edge)/solve interleavings
//! cheap — the full edge list is never re-sorted.

use crate::ids::{self, IdOverflow, LabelId, StateId};

/// A packed `(label, from, to)` edge triple; monotonic id packing makes its
/// derived tuple order identical to the index-triple order.
type Edge = (LabelId, StateId, StateId);

/// An immutable flat CSR representation of `k` labelled relations over the
/// ground set `0..n`.
///
/// Successor and predecessor lists are sorted, duplicate-free, and returned
/// as slices of packed [`StateId`]s into contiguous storage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabeledGraph {
    num_elements: usize,
    num_labels: usize,
    /// `succ_offsets[label·n + x] .. succ_offsets[label·n + x + 1]` delimits
    /// `fₗ(x)` inside [`LabeledGraph::succ_targets`].
    succ_offsets: Vec<u32>,
    succ_targets: Vec<StateId>,
    /// Same layout for the inverse relations.
    pred_offsets: Vec<u32>,
    pred_targets: Vec<StateId>,
    /// `|E|` after deduplication, summed over all labels.
    num_edges: usize,
    /// `max |fₗ(x)|`, computed once at build time.
    max_fanout: usize,
}

impl LabeledGraph {
    /// An empty graph over `num_elements` elements and `num_labels` labels.
    ///
    /// # Panics
    ///
    /// Panics if either count exceeds the packed id range (see
    /// [`GraphBuilder::try_new`] for the fallible form).
    #[must_use]
    pub fn empty(num_elements: usize, num_labels: usize) -> Self {
        GraphBuilder::new(num_elements, num_labels).build()
    }

    /// Number of elements `n`.
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// Number of labelled relations `k`.
    #[must_use]
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// Number of distinct edges `|E|` over all relations.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Maximum fan-out `c = max |fₗ(x)|`; `O(1)`, maintained by the builder.
    #[must_use]
    pub fn max_fanout(&self) -> usize {
        self.max_fanout
    }

    /// Heap bytes held by the four CSR arrays, measured from live container
    /// capacities (allocator slack excluded) — the honest figure behind the
    /// `mem` report table and the server's session byte budgets.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.succ_offsets.capacity() * size_of::<u32>()
            + self.succ_targets.capacity() * size_of::<StateId>()
            + self.pred_offsets.capacity() * size_of::<u32>()
            + self.pred_targets.capacity() * size_of::<StateId>()
    }

    #[inline]
    fn slot(&self, label: usize, element: usize) -> usize {
        debug_assert!(label < self.num_labels && element < self.num_elements);
        label * self.num_elements + element
    }

    /// The successor list `fₗ(x)`, sorted and duplicate-free, as a slice
    /// into the flat target array.
    ///
    /// # Panics
    ///
    /// Panics if `label` or `element` is out of range.
    #[must_use]
    pub fn successors(&self, label: usize, element: usize) -> &[StateId] {
        assert!(label < self.num_labels, "label out of range");
        assert!(element < self.num_elements, "element out of range");
        let s = self.slot(label, element);
        &self.succ_targets[self.succ_offsets[s] as usize..self.succ_offsets[s + 1] as usize]
    }

    /// The predecessor list `{y | x ∈ fₗ(y)}`, sorted and duplicate-free, as
    /// a slice into the flat source array.
    ///
    /// # Panics
    ///
    /// Panics if `label` or `element` is out of range.
    #[must_use]
    pub fn predecessors(&self, label: usize, element: usize) -> &[StateId] {
        assert!(label < self.num_labels, "label out of range");
        assert!(element < self.num_elements, "element out of range");
        let s = self.slot(label, element);
        &self.pred_targets[self.pred_offsets[s] as usize..self.pred_offsets[s + 1] as usize]
    }

    /// Walks the successor CSR as packed edge triples, in the canonical
    /// sorted `(label, from, to)` order — the stream
    /// [`LabeledGraph::merged_with`] merges new edges into.
    fn packed_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        let n = self.num_elements;
        // With n == 0 the range is empty, so the divisions below never run.
        (0..self.num_labels * n).flat_map(move |slot| {
            let label = LabelId::from_index(slot / n);
            let from = StateId::from_index(slot % n);
            self.succ_targets
                [self.succ_offsets[slot] as usize..self.succ_offsets[slot + 1] as usize]
                .iter()
                .map(move |&to| (label, from, to))
        })
    }

    /// Iterates over every edge as `(label, from, to)` indices, in sorted
    /// order.  Allocation-free: this widens the packed CSR walk.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        self.packed_edges()
            .map(|(l, from, to)| (l.index(), from.index(), to.index()))
    }

    /// Returns a new graph containing this graph's edges plus `extra`,
    /// deduplicated, without re-sorting the existing edge list: `extra` is
    /// sorted (`O(p log p)`) and then merged with the already-sorted CSR walk
    /// (`O(m + p)`).
    ///
    /// # Panics
    ///
    /// Panics if any extra edge mentions an out-of-range label or element.
    #[must_use]
    pub fn merged_with(&self, extra: &[(usize, usize, usize)]) -> LabeledGraph {
        let mut fresh: Vec<Edge> = extra
            .iter()
            .map(|&(l, from, to)| {
                assert!(l < self.num_labels, "label out of range");
                assert!(from < self.num_elements, "source element out of range");
                assert!(to < self.num_elements, "target element out of range");
                (
                    LabelId::from_index(l),
                    StateId::from_index(from),
                    StateId::from_index(to),
                )
            })
            .collect();
        fresh.sort_unstable();
        fresh.dedup();
        let mut merged = Vec::with_capacity(self.num_edges + fresh.len());
        let mut old = self.packed_edges().peekable();
        let mut new = fresh.into_iter().peekable();
        loop {
            match (old.peek(), new.peek()) {
                (Some(&a), Some(&b)) => {
                    if a < b {
                        merged.push(a);
                        old.next();
                    } else if b < a {
                        merged.push(b);
                        new.next();
                    } else {
                        merged.push(a);
                        old.next();
                        new.next();
                    }
                }
                (Some(&a), None) => {
                    merged.push(a);
                    old.next();
                }
                (None, Some(&b)) => {
                    merged.push(b);
                    new.next();
                }
                (None, None) => break,
            }
        }
        layout(self.num_elements, self.num_labels, &merged)
    }

    /// Returns a new graph with `removals` deleted and `additions` merged in,
    /// in one relayout: removals are applied first, then additions (so an
    /// edge named in both ends up present).  Like
    /// [`LabeledGraph::merged_with`], the existing edge list is never
    /// re-sorted — removals are dropped during the sorted CSR walk and
    /// additions ride the same two-way merge, `O(m + p log p + r log r)` for
    /// `p` additions and `r` removals.
    ///
    /// Removing an edge that is not present is a no-op, mirroring how adding
    /// a duplicate edge is.
    ///
    /// # Panics
    ///
    /// Panics if any edge mentions an out-of-range label or element.
    #[must_use]
    pub fn edited_with(
        &self,
        additions: &[(usize, usize, usize)],
        removals: &[(usize, usize, usize)],
    ) -> LabeledGraph {
        let pack = |edges: &[(usize, usize, usize)]| -> Vec<Edge> {
            let mut packed: Vec<Edge> = edges
                .iter()
                .map(|&(l, from, to)| {
                    assert!(l < self.num_labels, "label out of range");
                    assert!(from < self.num_elements, "source element out of range");
                    assert!(to < self.num_elements, "target element out of range");
                    (
                        LabelId::from_index(l),
                        StateId::from_index(from),
                        StateId::from_index(to),
                    )
                })
                .collect();
            packed.sort_unstable();
            packed.dedup();
            packed
        };
        let gone = pack(removals);
        let fresh = pack(additions);
        let mut merged = Vec::with_capacity(self.num_edges + fresh.len());
        let mut old = self
            .packed_edges()
            .filter(|e| gone.binary_search(e).is_err())
            .peekable();
        let mut new = fresh.into_iter().peekable();
        loop {
            match (old.peek(), new.peek()) {
                (Some(&a), Some(&b)) => {
                    if a < b {
                        merged.push(a);
                        old.next();
                    } else if b < a {
                        merged.push(b);
                        new.next();
                    } else {
                        merged.push(a);
                        old.next();
                        new.next();
                    }
                }
                (Some(&a), None) => {
                    merged.push(a);
                    old.next();
                }
                (None, Some(&b)) => {
                    merged.push(b);
                    new.next();
                }
                (None, None) => break,
            }
        }
        layout(self.num_elements, self.num_labels, &merged)
    }

    /// Whether `to ∈ fₗ(from)` — a binary search over the sorted successor
    /// slice, `O(log c)`.
    ///
    /// # Panics
    ///
    /// Panics if `label`, `from` or `to` is out of range.
    #[must_use]
    pub fn has_edge(&self, label: usize, from: usize, to: usize) -> bool {
        assert!(to < self.num_elements, "target element out of range");
        self.successors(label, from)
            .binary_search(&StateId::from_index(to))
            .is_ok()
    }
}

/// Lays out a sorted, duplicate-free edge list as a [`LabeledGraph`] in
/// `O(m + k·n)`.  Shared by [`GraphBuilder::build`] (which sorts first) and
/// [`LabeledGraph::merged_with`] (which merges two sorted streams).
fn layout(n: usize, k: usize, edges: &[Edge]) -> LabeledGraph {
    debug_assert!(
        edges.windows(2).all(|w| w[0] < w[1]),
        "edges sorted+deduped"
    );
    // Offsets are u32 positions into the target arrays; the ground-set check
    // bounds n and k but not m, so the edge count gets its own check here.
    let _ = ids::narrow(edges.len());
    let slots = k * n;

    // Successors: edges are sorted by (label, from, to), so the target
    // column *is* the flat successor array once per-slot counts are
    // prefix-summed into offsets.
    let mut succ_offsets = vec![0u32; slots + 1];
    for &(l, from, _) in edges {
        succ_offsets[l.index() * n + from.index() + 1] += 1;
    }
    let mut max_fanout: u32 = 0;
    for i in 0..slots {
        max_fanout = max_fanout.max(succ_offsets[i + 1]);
        succ_offsets[i + 1] += succ_offsets[i];
    }
    let succ_targets: Vec<StateId> = edges.iter().map(|&(_, _, to)| to).collect();

    // Predecessors: count per (label, to) slot, prefix-sum, then place
    // sources with a moving cursor.  Scanning the sorted edge list keeps
    // each predecessor list sorted by source.
    let mut pred_offsets = vec![0u32; slots + 1];
    for &(l, _, to) in edges {
        pred_offsets[l.index() * n + to.index() + 1] += 1;
    }
    for i in 0..slots {
        pred_offsets[i + 1] += pred_offsets[i];
    }
    let mut cursor = pred_offsets.clone();
    let mut pred_targets = vec![StateId::from_index(0); edges.len()];
    for &(l, from, to) in edges {
        let s = l.index() * n + to.index();
        pred_targets[cursor[s] as usize] = from;
        cursor[s] += 1;
    }

    LabeledGraph {
        num_elements: n,
        num_labels: k,
        succ_offsets,
        num_edges: succ_targets.len(),
        succ_targets,
        pred_offsets,
        pred_targets,
        max_fanout: max_fanout as usize,
    }
}

/// Accumulates a flat edge list and lays it out as a [`LabeledGraph`].
///
/// ```
/// use ccs_partition::{GraphBuilder, StateId};
/// let mut b = GraphBuilder::new(3, 1);
/// b.add_edge(0, 0, 2);
/// b.add_edge(0, 0, 1);
/// b.add_edge(0, 0, 2); // duplicate parallel edge: removed at build time
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.successors(0, 0), &[StateId::from_index(1), StateId::from_index(2)]);
/// assert_eq!(g.predecessors(0, 2), &[StateId::from_index(0)]);
/// assert_eq!(g.max_fanout(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphBuilder {
    num_elements: usize,
    num_labels: usize,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Creates a builder for a graph over `num_elements` elements and
    /// `num_labels` relations.
    ///
    /// # Panics
    ///
    /// Panics if either count exceeds the packed id range; use
    /// [`GraphBuilder::try_new`] at ingestion boundaries that must fail
    /// cleanly instead.
    #[must_use]
    pub fn new(num_elements: usize, num_labels: usize) -> Self {
        match GraphBuilder::try_new(num_elements, num_labels) {
            Ok(b) => b,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a builder, reporting an [`IdOverflow`] when the ground set or
    /// label alphabet cannot be addressed by packed 32-bit ids — the checked
    /// ingestion entry point.  Once construction succeeds, no id conversion
    /// in [`GraphBuilder::add_edge`] or [`GraphBuilder::build`] can fail.
    pub fn try_new(num_elements: usize, num_labels: usize) -> Result<Self, IdOverflow> {
        ids::check_ground_set(num_elements)?;
        ids::check_ground_set(num_labels)?;
        Ok(GraphBuilder {
            num_elements,
            num_labels,
            edges: Vec::new(),
        })
    }

    /// Like [`GraphBuilder::new`], pre-allocating room for `edges` edges.
    ///
    /// # Panics
    ///
    /// Panics if either count exceeds the packed id range.
    #[must_use]
    pub fn with_edge_capacity(num_elements: usize, num_labels: usize, edges: usize) -> Self {
        let mut b = GraphBuilder::new(num_elements, num_labels);
        b.edges.reserve(edges);
        b
    }

    /// Like [`GraphBuilder::try_new`], pre-allocating room for `edges` edges.
    pub fn try_with_edge_capacity(
        num_elements: usize,
        num_labels: usize,
        edges: usize,
    ) -> Result<Self, IdOverflow> {
        let mut b = GraphBuilder::try_new(num_elements, num_labels)?;
        b.edges.reserve(edges);
        Ok(b)
    }

    /// Number of elements `n`.
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// Number of labelled relations `k`.
    #[must_use]
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// Number of recorded edges, duplicates included (deduplication happens
    /// at [`GraphBuilder::build`] time).
    #[must_use]
    pub fn num_recorded_edges(&self) -> usize {
        self.edges.len()
    }

    /// Reserves room for at least `additional` further edges.
    pub fn reserve_edges(&mut self, additional: usize) {
        self.edges.reserve(additional);
    }

    /// Records `to ∈ fₗ(from)`.
    ///
    /// # Panics
    ///
    /// Panics if `label`, `from` or `to` is out of range.
    pub fn add_edge(&mut self, label: usize, from: usize, to: usize) {
        assert!(label < self.num_labels, "label out of range");
        assert!(from < self.num_elements, "source element out of range");
        assert!(to < self.num_elements, "target element out of range");
        // The range asserts against the checked ground set make these packs
        // infallible.
        self.edges.push((
            LabelId::from_index(label),
            StateId::from_index(from),
            StateId::from_index(to),
        ));
    }

    /// Records a whole batch of `(label, from, to)` edges — the streaming
    /// entry point used by saturation and the incremental `Instance` path,
    /// so edge producers never materialize an intermediate per-element
    /// adjacency structure.
    ///
    /// # Panics
    ///
    /// Panics if any edge mentions an out-of-range label or element.
    pub fn extend_edges<I>(&mut self, edges: I)
    where
        I: IntoIterator<Item = (usize, usize, usize)>,
    {
        let iter = edges.into_iter();
        self.edges.reserve(iter.size_hint().0);
        for (label, from, to) in iter {
            self.add_edge(label, from, to);
        }
    }

    /// Sorts and deduplicates the edge list and lays out both CSR
    /// directions.
    #[must_use]
    pub fn build(self) -> LabeledGraph {
        let GraphBuilder {
            num_elements: n,
            num_labels: k,
            mut edges,
        } = self;
        edges.sort_unstable();
        edges.dedup();
        layout(n, k, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: usize) -> StateId {
        StateId::from_index(i)
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = LabeledGraph::empty(4, 2);
        assert_eq!(g.num_elements(), 4);
        assert_eq!(g.num_labels(), 2);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_fanout(), 0);
        for l in 0..2 {
            for x in 0..4 {
                assert!(g.successors(l, x).is_empty());
                assert!(g.predecessors(l, x).is_empty());
            }
        }
    }

    #[test]
    fn lists_are_sorted_and_deduped() {
        let mut b = GraphBuilder::new(5, 2);
        b.add_edge(1, 3, 0);
        b.add_edge(0, 0, 4);
        b.add_edge(0, 0, 1);
        b.add_edge(0, 0, 4); // duplicate
        b.add_edge(0, 2, 4);
        let g = b.build();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.successors(0, 0), &[s(1), s(4)]);
        assert_eq!(g.successors(1, 3), &[s(0)]);
        assert_eq!(g.predecessors(0, 4), &[s(0), s(2)]);
        assert_eq!(g.predecessors(1, 0), &[s(3)]);
        assert_eq!(g.max_fanout(), 2);
    }

    #[test]
    fn labels_do_not_bleed_into_each_other() {
        let mut b = GraphBuilder::new(3, 3);
        b.add_edge(0, 1, 2);
        b.add_edge(1, 1, 0);
        b.add_edge(2, 1, 1);
        let g = b.build();
        assert_eq!(g.successors(0, 1), &[s(2)]);
        assert_eq!(g.successors(1, 1), &[s(0)]);
        assert_eq!(g.successors(2, 1), &[s(1)]);
        assert!(g.successors(0, 0).is_empty());
        assert_eq!(g.predecessors(2, 1), &[s(1)]);
        assert!(g.predecessors(0, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn successors_check_label_range() {
        // The flat slot index of an out-of-range label can still fall inside
        // the offset table, so the explicit assert matters.
        let g = LabeledGraph::empty(4, 2);
        let _ = g.successors(2, 0);
    }

    #[test]
    #[should_panic(expected = "element out of range")]
    fn predecessors_check_element_range() {
        let g = LabeledGraph::empty(4, 2);
        let _ = g.predecessors(1, 4);
    }

    #[test]
    #[should_panic(expected = "source element out of range")]
    fn builder_checks_source() {
        let mut b = GraphBuilder::new(2, 1);
        b.add_edge(0, 2, 0);
    }

    #[test]
    fn oversize_ground_sets_are_rejected_cleanly() {
        let err = GraphBuilder::try_new(crate::ids::MAX_ELEMENTS + 1, 1)
            .expect_err("oversize ground set must not build");
        assert_eq!(err.index, crate::ids::MAX_ELEMENTS);
        assert!(GraphBuilder::try_with_edge_capacity(4, usize::MAX, 0).is_err());
        assert!(GraphBuilder::try_new(16, 2).is_ok());
    }

    #[test]
    #[should_panic(expected = "exceeds the packed 32-bit id range")]
    fn oversize_ground_sets_panic_on_the_infallible_path() {
        let _ = GraphBuilder::new(crate::ids::MAX_ELEMENTS + 1, 1);
    }

    #[test]
    fn edges_iterates_in_sorted_order() {
        let mut b = GraphBuilder::new(4, 2);
        b.extend_edges([(1, 3, 0), (0, 0, 2), (0, 0, 1), (0, 0, 2)]);
        let g = b.build();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 0, 1), (0, 0, 2), (1, 3, 0)]);
        assert!(LabeledGraph::empty(0, 3).edges().next().is_none());
    }

    #[test]
    fn merged_with_agrees_with_a_full_rebuild() {
        let mut b = GraphBuilder::new(5, 2);
        b.extend_edges([(0, 0, 1), (0, 2, 3), (1, 4, 0)]);
        let base = b.build();
        let extra = [(0, 0, 1), (0, 0, 4), (1, 1, 1), (0, 0, 4), (0, 2, 2)];
        let merged = base.merged_with(&extra);

        let mut full = GraphBuilder::new(5, 2);
        full.extend_edges(base.edges());
        full.extend_edges(extra);
        assert_eq!(merged, full.build());
        assert_eq!(merged.num_edges(), 6); // duplicates collapse
        assert_eq!(merged.successors(0, 0), &[s(1), s(4)]);
        assert_eq!(merged.predecessors(0, 4), &[s(0)]);
        assert_eq!(merged.max_fanout(), 2);
    }

    #[test]
    fn merged_with_empty_batch_is_identity() {
        let mut b = GraphBuilder::new(3, 1);
        b.add_edge(0, 0, 2);
        let g = b.build();
        assert_eq!(g.merged_with(&[]), g);
    }

    #[test]
    #[should_panic(expected = "target element out of range")]
    fn merged_with_checks_ranges() {
        let g = LabeledGraph::empty(2, 1);
        let _ = g.merged_with(&[(0, 0, 2)]);
    }

    #[test]
    fn edited_with_agrees_with_a_full_rebuild() {
        let mut b = GraphBuilder::new(5, 2);
        b.extend_edges([(0, 0, 1), (0, 2, 3), (1, 4, 0), (1, 1, 1)]);
        let base = b.build();
        let additions = [(0, 0, 4), (0, 2, 2), (0, 0, 4)];
        let removals = [(0, 2, 3), (1, 4, 0), (1, 2, 2)]; // last one absent: no-op
        let edited = base.edited_with(&additions, &removals);

        let mut full = GraphBuilder::new(5, 2);
        full.extend_edges([(0, 0, 1), (1, 1, 1), (0, 0, 4), (0, 2, 2)]);
        assert_eq!(edited, full.build());
        assert_eq!(edited.num_edges(), 4);
        assert!(edited.predecessors(0, 3).is_empty());
        assert_eq!(edited.successors(0, 0), &[s(1), s(4)]);
    }

    #[test]
    fn edited_with_lets_additions_win_over_removals() {
        let mut b = GraphBuilder::new(3, 1);
        b.add_edge(0, 0, 1);
        let g = b.build();
        // Removals apply first, additions second: the edge survives.
        let edited = g.edited_with(&[(0, 0, 1)], &[(0, 0, 1)]);
        assert_eq!(edited, g);
        // Pure removal of everything leaves the empty graph.
        assert_eq!(g.edited_with(&[], &[(0, 0, 1)]), LabeledGraph::empty(3, 1));
    }

    #[test]
    #[should_panic(expected = "source element out of range")]
    fn edited_with_checks_removal_ranges() {
        let g = LabeledGraph::empty(2, 1);
        let _ = g.edited_with(&[], &[(0, 2, 0)]);
    }

    #[test]
    fn has_edge_matches_the_successor_lists() {
        let mut b = GraphBuilder::new(4, 2);
        b.extend_edges([(0, 0, 1), (0, 0, 3), (1, 2, 0)]);
        let g = b.build();
        assert!(g.has_edge(0, 0, 1));
        assert!(g.has_edge(0, 0, 3));
        assert!(g.has_edge(1, 2, 0));
        assert!(!g.has_edge(0, 0, 2));
        assert!(!g.has_edge(1, 0, 1));
    }

    #[test]
    fn max_fanout_tracks_the_densest_slot() {
        let mut b = GraphBuilder::with_edge_capacity(6, 2, 8);
        for to in 1..6 {
            b.add_edge(0, 0, to);
        }
        b.add_edge(1, 2, 3);
        assert_eq!(b.num_recorded_edges(), 6);
        let g = b.build();
        assert_eq!(g.max_fanout(), 5);
    }

    #[test]
    fn resident_bytes_reflect_the_packed_layout() {
        let mut b = GraphBuilder::new(8, 1);
        for i in 0..7 {
            b.add_edge(0, i, i + 1);
        }
        let g = b.build();
        // Two offset tables of 9 u32 entries and two target arrays of 7
        // packed ids: all 32-bit.
        assert_eq!(g.resident_bytes(), (9 + 9 + 7 + 7) * 4);
    }
}
