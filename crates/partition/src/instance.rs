/// An instance of the generalized partitioning problem (Section 3).
///
/// The ground set is `0..num_elements()`; the `k` functions `fₗ : S → 2^S`
/// are given as labelled edge sets (`fₗ(x) = {y | (x, y) ∈ Eₗ}`); the initial
/// partition `π` is a block assignment (all elements default to block `0`).
///
/// ```
/// use ccs_partition::Instance;
/// let mut inst = Instance::new(3, 2);
/// inst.set_initial_block(2, 1);    // element 2 starts in its own block
/// inst.add_edge(0, 0, 1);          // f₀(0) ∋ 1
/// inst.add_edge(1, 1, 2);          // f₁(1) ∋ 2
/// assert_eq!(inst.num_edges(), 2);
/// assert_eq!(inst.successors(0, 0), &[1]);
/// assert_eq!(inst.predecessors(1, 2), &[1]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance {
    num_elements: usize,
    num_labels: usize,
    initial_block: Vec<usize>,
    /// Per label, per element: successor list.
    succ: Vec<Vec<Vec<usize>>>,
    /// Per label, per element: predecessor list.
    pred: Vec<Vec<Vec<usize>>>,
    num_edges: usize,
}

impl Instance {
    /// Creates an instance over `num_elements` elements and `num_labels`
    /// relations, with every element initially in block `0` and no edges.
    #[must_use]
    pub fn new(num_elements: usize, num_labels: usize) -> Self {
        Instance {
            num_elements,
            num_labels,
            initial_block: vec![0; num_elements],
            succ: vec![vec![Vec::new(); num_elements]; num_labels],
            pred: vec![vec![Vec::new(); num_elements]; num_labels],
            num_edges: 0,
        }
    }

    /// Number of elements `n = |S|`.
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// Number of relations (functions) `k`.
    #[must_use]
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// Total number of edges `m` over all relations.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Places `element` into initial block `block`.
    ///
    /// # Panics
    ///
    /// Panics if `element` is out of range.
    pub fn set_initial_block(&mut self, element: usize, block: usize) {
        assert!(element < self.num_elements, "element out of range");
        self.initial_block[element] = block;
    }

    /// The initial block assignment.
    #[must_use]
    pub fn initial_blocks(&self) -> &[usize] {
        &self.initial_block
    }

    /// Adds `to` to `f_label(from)`.  Duplicate edges are allowed and treated
    /// as a single edge by the solvers (the `fₗ` are set-valued), but they do
    /// count toward [`Instance::num_edges`].
    ///
    /// # Panics
    ///
    /// Panics if `label`, `from` or `to` is out of range.
    pub fn add_edge(&mut self, label: usize, from: usize, to: usize) {
        assert!(label < self.num_labels, "label out of range");
        assert!(from < self.num_elements, "source element out of range");
        assert!(to < self.num_elements, "target element out of range");
        self.succ[label][from].push(to);
        self.pred[label][to].push(from);
        self.num_edges += 1;
    }

    /// The successor list `fₗ(x)` (unsorted, possibly with duplicates).
    #[must_use]
    pub fn successors(&self, label: usize, element: usize) -> &[usize] {
        &self.succ[label][element]
    }

    /// The predecessor list `{y | x ∈ fₗ(y)}`.
    #[must_use]
    pub fn predecessors(&self, label: usize, element: usize) -> &[usize] {
        &self.pred[label][element]
    }

    /// Maximum fan-out `c = max |fₗ(x)|`, the parameter of the
    /// Kanellakis–Smolka `O(c²·n·log n)` bound.
    #[must_use]
    pub fn max_fanout(&self) -> usize {
        self.succ
            .iter()
            .flat_map(|per_label| per_label.iter().map(Vec::len))
            .max()
            .unwrap_or(0)
    }

    /// Verifies that `partition` (given as a block assignment over the same
    /// ground set) satisfies conditions (1) and (2) of the generalized
    /// partitioning problem: it refines the initial partition and is stable
    /// with respect to every one of its own blocks under every relation.
    ///
    /// This is a correctness oracle for the solvers (it does *not* check
    /// coarseness).
    #[must_use]
    pub fn is_consistent_stable(&self, partition: &crate::Partition) -> bool {
        if partition.num_elements() != self.num_elements {
            return false;
        }
        // (1) consistency with the initial partition.
        let initial = crate::Partition::from_assignment(&self.initial_block);
        if !partition.refines(&initial) {
            return false;
        }
        // (2) stability: within a block, all elements hit the same set of blocks.
        for block in partition.blocks() {
            for label in 0..self.num_labels {
                let signature = |x: usize| {
                    let mut hit: Vec<usize> = self
                        .successors(label, x)
                        .iter()
                        .map(|&y| partition.block_of(y))
                        .collect();
                    hit.sort_unstable();
                    hit.dedup();
                    hit
                };
                let Some(&first) = block.first() else {
                    continue;
                };
                let expected = signature(first);
                if block.iter().any(|&x| signature(x) != expected) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Partition;

    #[test]
    fn construction_and_queries() {
        let mut inst = Instance::new(4, 2);
        inst.add_edge(0, 0, 1);
        inst.add_edge(0, 0, 2);
        inst.add_edge(1, 3, 0);
        assert_eq!(inst.num_elements(), 4);
        assert_eq!(inst.num_labels(), 2);
        assert_eq!(inst.num_edges(), 3);
        assert_eq!(inst.successors(0, 0), &[1, 2]);
        assert_eq!(inst.predecessors(0, 2), &[0]);
        assert_eq!(inst.predecessors(1, 0), &[3]);
        assert_eq!(inst.max_fanout(), 2);
    }

    #[test]
    fn empty_instance_has_zero_fanout() {
        let inst = Instance::new(3, 1);
        assert_eq!(inst.max_fanout(), 0);
        assert_eq!(inst.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn add_edge_checks_label() {
        let mut inst = Instance::new(2, 1);
        inst.add_edge(1, 0, 1);
    }

    #[test]
    #[should_panic(expected = "target element out of range")]
    fn add_edge_checks_target() {
        let mut inst = Instance::new(2, 1);
        inst.add_edge(0, 0, 5);
    }

    #[test]
    fn initial_blocks_default_to_zero() {
        let mut inst = Instance::new(3, 1);
        assert_eq!(inst.initial_blocks(), &[0, 0, 0]);
        inst.set_initial_block(1, 4);
        assert_eq!(inst.initial_blocks(), &[0, 4, 0]);
    }

    #[test]
    fn stability_oracle_accepts_stable_partition() {
        // 0 -> 1, 2 -> 3 under one relation; {0,2},{1,3} is stable.
        let mut inst = Instance::new(4, 1);
        inst.add_edge(0, 0, 1);
        inst.add_edge(0, 2, 3);
        let stable = Partition::from_assignment(&[0, 1, 0, 1]);
        assert!(inst.is_consistent_stable(&stable));
        // The trivial partition is not stable (0 reaches the block, 1 does not).
        let trivial = Partition::trivial(4);
        assert!(!inst.is_consistent_stable(&trivial));
    }

    #[test]
    fn stability_oracle_checks_initial_consistency() {
        let mut inst = Instance::new(2, 1);
        inst.set_initial_block(0, 0);
        inst.set_initial_block(1, 1);
        // A coarser partition than the initial one is inconsistent.
        assert!(!inst.is_consistent_stable(&Partition::trivial(2)));
        assert!(inst.is_consistent_stable(&Partition::discrete(2)));
        // Wrong ground set.
        assert!(!inst.is_consistent_stable(&Partition::discrete(3)));
    }
}
