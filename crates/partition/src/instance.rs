use std::sync::OnceLock;

use crate::graph::{GraphBuilder, LabeledGraph};
use crate::ids::{IdOverflow, StateId};

/// An instance of the generalized partitioning problem (Section 3).
///
/// The ground set is `0..num_elements()`; the `k` functions `fₗ : S → 2^S`
/// are given as labelled edge sets (`fₗ(x) = {y | (x, y) ∈ Eₗ}`); the initial
/// partition `π` is a block assignment (all elements default to block `0`).
///
/// Internally the relations live in a flat CSR [`LabeledGraph`]: a *base*
/// layout plus a small list of *pending* edges recorded since the base was
/// built.  A query sees `base ∪ pending` — computed lazily by the sorted
/// merge of [`LabeledGraph::merged_with`] (`O(m + p log p)` for `p` pending
/// edges) and folded back into the base on the next mutation, so
/// interleaving [`Instance::add_edge`] with solver queries never re-sorts
/// the full edge list.  Successor and predecessor queries are slice views
/// into contiguous storage, and [`Instance::num_edges`] /
/// [`Instance::max_fanout`] are `O(1)` field reads of layout-computed
/// values.  All per-element arrays are 32-bit ([`StateId`] targets, `u32`
/// offsets and initial-block ids); ground sets beyond the packed id range
/// are rejected by [`Instance::try_new`] with an [`IdOverflow`].
///
/// ```
/// use ccs_partition::{Instance, StateId};
/// let mut inst = Instance::new(3, 2);
/// inst.set_initial_block(2, 1);    // element 2 starts in its own block
/// inst.add_edge(0, 0, 1);          // f₀(0) ∋ 1
/// inst.add_edge(1, 1, 2);          // f₁(1) ∋ 2
/// inst.add_edge(0, 0, 1);          // parallel duplicate: ignored
/// assert_eq!(inst.num_edges(), 2);
/// assert_eq!(inst.successors(0, 0), &[StateId::from_index(1)]);
/// assert_eq!(inst.predecessors(1, 2), &[StateId::from_index(1)]);
/// ```
#[derive(Clone, Debug)]
pub struct Instance {
    initial_block: Vec<u32>,
    /// Edges already laid out as a CSR graph.
    base: LabeledGraph,
    /// Edges recorded since `base` was laid out (duplicates allowed).
    pending: Vec<(usize, usize, usize)>,
    /// Lazily merged `base ∪ pending`; folded into `base` on mutation.
    merged: OnceLock<LabeledGraph>,
}

impl Instance {
    /// Creates an instance over `num_elements` elements and `num_labels`
    /// relations, with every element initially in block `0` and no edges.
    ///
    /// # Panics
    ///
    /// Panics if either count exceeds the packed 32-bit id range; use
    /// [`Instance::try_new`] at ingestion boundaries that must fail cleanly.
    #[must_use]
    pub fn new(num_elements: usize, num_labels: usize) -> Self {
        Instance::from_graph(LabeledGraph::empty(num_elements, num_labels))
    }

    /// Creates an instance, reporting an [`IdOverflow`] when the ground set
    /// or label alphabet cannot be addressed by packed 32-bit ids — the
    /// checked ingestion entry point mirroring [`GraphBuilder::try_new`].
    pub fn try_new(num_elements: usize, num_labels: usize) -> Result<Self, IdOverflow> {
        GraphBuilder::try_new(num_elements, num_labels).map(|b| Instance::from_graph(b.build()))
    }

    /// Wraps an already-populated [`GraphBuilder`], with every element
    /// initially in block `0`.
    #[must_use]
    pub fn from_builder(builder: GraphBuilder) -> Self {
        Instance::from_graph(builder.build())
    }

    /// Adopts an already-built CSR graph without any edge-list round-trip —
    /// the zero-copy entry point for producers (saturation, workload
    /// generators) that stream their edges straight into a
    /// [`GraphBuilder`] and build once.  Every element starts in block `0`.
    #[must_use]
    pub fn from_graph(graph: LabeledGraph) -> Self {
        Instance {
            initial_block: vec![0; graph.num_elements()],
            base: graph,
            pending: Vec::new(),
            merged: OnceLock::new(),
        }
    }

    /// Number of elements `n = |S|`.
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.base.num_elements()
    }

    /// Number of relations (functions) `k`.
    #[must_use]
    pub fn num_labels(&self) -> usize {
        self.base.num_labels()
    }

    /// Number of distinct edges `m = |E|` over all relations.  Parallel
    /// duplicates passed to [`Instance::add_edge`] are removed by the builder
    /// and do not count.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.graph().num_edges()
    }

    /// Places `element` into initial block `block`.
    ///
    /// # Panics
    ///
    /// Panics if `element` is out of range or `block` exceeds `u32::MAX`
    /// (block ids are stored compactly; a ground set that fits 32-bit ids
    /// never needs more blocks than that).
    pub fn set_initial_block(&mut self, element: usize, block: usize) {
        assert!(element < self.num_elements(), "element out of range");
        self.initial_block[element] =
            u32::try_from(block).expect("initial block id exceeds the 32-bit block range");
    }

    /// The initial block assignment, as dense 32-bit block ids.
    #[must_use]
    pub fn initial_blocks(&self) -> &[u32] {
        &self.initial_block
    }

    /// Adds `to` to `f_label(from)`.  The `fₗ` are set-valued, so duplicate
    /// parallel edges are deduplicated by the CSR layout.
    ///
    /// Repeated `add_edge`/solve interleavings stay cheap: if a query has
    /// already merged the pending edges, that merged layout becomes the new
    /// base (an `O(1)` move), so each query pays one sorted merge over the
    /// edges added since the previous query — never a full re-sort.
    ///
    /// # Panics
    ///
    /// Panics if `label`, `from` or `to` is out of range.
    pub fn add_edge(&mut self, label: usize, from: usize, to: usize) {
        assert!(label < self.num_labels(), "label out of range");
        assert!(from < self.num_elements(), "source element out of range");
        assert!(to < self.num_elements(), "target element out of range");
        if let Some(merged) = self.merged.take() {
            // A query materialized base ∪ pending; promote it so the
            // already-merged edges are never merged again.
            self.base = merged;
            self.pending.clear();
        }
        self.pending.push((label, from, to));
    }

    /// Reserves room for at least `additional` further edges.
    pub fn reserve_edges(&mut self, additional: usize) {
        self.pending.reserve(additional);
    }

    /// Applies a whole edge batch — removals first, then additions — as one
    /// first-class mutation.
    ///
    /// This is the batched sibling of [`Instance::add_edge`], and the entry
    /// point the incremental engine
    /// ([`DeltaRefiner`](crate::incremental::DeltaRefiner)) drives.  The
    /// whole batch collapses into at most **one** relayout however many
    /// edges it carries: a pure-addition batch just extends the pending
    /// list (merged lazily by the next query, exactly like `add_edge`),
    /// while a batch with removals folds `base ∪ pending` and the edits
    /// into a single [`LabeledGraph::edited_with`] pass — it never pays one
    /// merge per edge.
    ///
    /// Removing an absent edge is a no-op, mirroring duplicate additions.
    ///
    /// # Panics
    ///
    /// Panics if any edge mentions an out-of-range label or element.
    pub fn apply_delta(
        &mut self,
        additions: &[(usize, usize, usize)],
        removals: &[(usize, usize, usize)],
    ) {
        for &(label, from, to) in additions.iter().chain(removals) {
            assert!(label < self.num_labels(), "label out of range");
            assert!(from < self.num_elements(), "source element out of range");
            assert!(to < self.num_elements(), "target element out of range");
        }
        if removals.is_empty() {
            if let Some(merged) = self.merged.take() {
                self.base = merged;
                self.pending.clear();
            }
            self.pending.extend_from_slice(additions);
        } else {
            // Removals force a relayout; collapse pending edges into the
            // same single `edited_with` pass instead of merging them first.
            let edited = if self.pending.is_empty() {
                self.base.edited_with(additions, removals)
            } else {
                let mut combined = self.pending.clone();
                combined.extend_from_slice(additions);
                // A pending edge may itself be removed by this batch;
                // removals-first ordering means a pending edge named only in
                // `removals` must not survive, while one re-added here does.
                // `edited_with` applies removals before additions, so feeding
                // pending through the additions side keeps exactly the
                // re-added ones — *except* pending edges absent from
                // `additions` that are also being removed, which must drop.
                let doomed: Vec<(usize, usize, usize)> = removals
                    .iter()
                    .copied()
                    .filter(|e| !additions.contains(e))
                    .collect();
                combined.retain(|e| !doomed.contains(e));
                self.base.edited_with(&combined, removals)
            };
            self.base = edited;
            self.pending.clear();
            self.merged = OnceLock::new();
        }
    }

    /// Whether `to ∈ fₗ(from)` — a binary search over the sorted successor
    /// slice, `O(log c)`.
    ///
    /// # Panics
    ///
    /// Panics if `label`, `from` or `to` is out of range.
    #[must_use]
    pub fn has_edge(&self, label: usize, from: usize, to: usize) -> bool {
        self.graph().has_edge(label, from, to)
    }

    /// The flat CSR view of the relations: the base layout when nothing is
    /// pending, otherwise the lazily merged `base ∪ pending`.
    #[must_use]
    pub fn graph(&self) -> &LabeledGraph {
        if self.pending.is_empty() {
            &self.base
        } else {
            self.merged
                .get_or_init(|| self.base.merged_with(&self.pending))
        }
    }

    /// The successor list `fₗ(x)`, sorted and duplicate-free — a slice of
    /// packed [`StateId`]s into the flat CSR target array.
    #[must_use]
    pub fn successors(&self, label: usize, element: usize) -> &[StateId] {
        self.graph().successors(label, element)
    }

    /// The predecessor list `{y | x ∈ fₗ(y)}`, sorted and duplicate-free — a
    /// slice of packed [`StateId`]s into the flat CSR source array.
    #[must_use]
    pub fn predecessors(&self, label: usize, element: usize) -> &[StateId] {
        self.graph().predecessors(label, element)
    }

    /// Maximum fan-out `c = max |fₗ(x)|`, the parameter of the
    /// Kanellakis–Smolka `O(c²·n·log n)` bound.  `O(1)`: the value is
    /// computed by the builder, not by a rescan.
    #[must_use]
    pub fn max_fanout(&self) -> usize {
        self.graph().max_fanout()
    }

    /// Heap bytes held by the instance (initial assignment, base CSR,
    /// pending edges, and the lazily merged layout if materialized),
    /// measured from live container capacities.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.initial_block.capacity() * size_of::<u32>()
            + self.base.resident_bytes()
            + self.pending.capacity() * size_of::<(usize, usize, usize)>()
            + self.merged.get().map_or(0, LabeledGraph::resident_bytes)
    }

    /// Verifies that `partition` (given as a block assignment over the same
    /// ground set) satisfies conditions (1) and (2) of the generalized
    /// partitioning problem: it refines the initial partition and is stable
    /// with respect to every one of its own blocks under every relation.
    ///
    /// This is a correctness oracle for the solvers (it does *not* check
    /// coarseness).
    #[must_use]
    pub fn is_consistent_stable(&self, partition: &crate::Partition) -> bool {
        if partition.num_elements() != self.num_elements() {
            return false;
        }
        // (1) consistency with the initial partition.
        let initial = crate::Partition::from_assignment(&self.initial_block);
        if !partition.refines(&initial) {
            return false;
        }
        // (2) stability: within a block, all elements hit the same set of blocks.
        for block in partition.blocks() {
            for label in 0..self.num_labels() {
                let signature = |x: usize| {
                    let mut hit: Vec<usize> = self
                        .successors(label, x)
                        .iter()
                        .map(|&y| partition.block_of(y.index()))
                        .collect();
                    hit.sort_unstable();
                    hit.dedup();
                    hit
                };
                let Some(&first) = block.first() else {
                    continue;
                };
                let expected = signature(first.index());
                if block.iter().any(|&x| signature(x.index()) != expected) {
                    return false;
                }
            }
        }
        true
    }
}

impl PartialEq for Instance {
    /// Two instances are equal iff they have the same ground set, initial
    /// partition, and edge *sets* (duplicates and insertion order are
    /// canonicalized away by the CSR build).
    fn eq(&self, other: &Self) -> bool {
        self.initial_block == other.initial_block && self.graph() == other.graph()
    }
}

impl Eq for Instance {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Partition;

    fn s(i: usize) -> StateId {
        StateId::from_index(i)
    }

    #[test]
    fn construction_and_queries() {
        let mut inst = Instance::new(4, 2);
        inst.add_edge(0, 0, 1);
        inst.add_edge(0, 0, 2);
        inst.add_edge(1, 3, 0);
        assert_eq!(inst.num_elements(), 4);
        assert_eq!(inst.num_labels(), 2);
        assert_eq!(inst.num_edges(), 3);
        assert_eq!(inst.successors(0, 0), &[s(1), s(2)]);
        assert_eq!(inst.predecessors(0, 2), &[s(0)]);
        assert_eq!(inst.predecessors(1, 0), &[s(3)]);
        assert_eq!(inst.max_fanout(), 2);
    }

    #[test]
    fn empty_instance_has_zero_fanout() {
        let inst = Instance::new(3, 1);
        assert_eq!(inst.max_fanout(), 0);
        assert_eq!(inst.num_edges(), 0);
    }

    #[test]
    fn oversize_ground_sets_fail_cleanly() {
        let err = Instance::try_new(crate::ids::MAX_ELEMENTS + 1, 1)
            .expect_err("oversize ground set must not build");
        assert_eq!(err.index, crate::ids::MAX_ELEMENTS);
        assert!(Instance::try_new(8, 2).is_ok());
    }

    #[test]
    fn duplicate_parallel_edges_count_once() {
        // Regression test: `num_edges` used to count parallel duplicates
        // toward `m`; with builder-time dedup it reports the true `|E|`.
        let mut inst = Instance::new(3, 2);
        inst.add_edge(0, 0, 1);
        inst.add_edge(0, 0, 1);
        inst.add_edge(0, 0, 1);
        inst.add_edge(1, 0, 1);
        assert_eq!(inst.num_edges(), 2);
        assert_eq!(inst.successors(0, 0), &[s(1)]);
        assert_eq!(inst.predecessors(0, 1), &[s(0)]);
        assert_eq!(inst.max_fanout(), 1);
    }

    #[test]
    fn mutation_after_query_rebuilds_the_graph() {
        let mut inst = Instance::new(3, 1);
        inst.add_edge(0, 0, 1);
        assert_eq!(inst.num_edges(), 1);
        assert_eq!(inst.max_fanout(), 1);
        inst.add_edge(0, 0, 2);
        assert_eq!(inst.num_edges(), 2);
        assert_eq!(inst.successors(0, 0), &[s(1), s(2)]);
        assert_eq!(inst.max_fanout(), 2);
    }

    /// Regression test for the incremental build path: interleaving
    /// `add_edge` with solver queries must go through the merge (not a full
    /// rebuild) and still agree — on `num_edges` and on the solved partition
    /// — with a fresh instance given all edges up front.
    #[test]
    fn interleaved_add_edge_and_solve_matches_batch_construction() {
        use crate::{solve, Algorithm};
        let n = 12;
        let mut inst = Instance::new(n, 2);
        let mut edges_so_far: Vec<(usize, usize, usize)> = Vec::new();
        for i in 0..n - 1 {
            let label = i % 2;
            inst.add_edge(label, i, i + 1);
            inst.add_edge(label, i, i + 1); // parallel duplicate
            inst.add_edge(label, n - 1, i);
            edges_so_far.push((label, i, i + 1));
            edges_so_far.push((label, n - 1, i));

            let mut fresh = Instance::new(n, 2);
            for &(l, f, t) in &edges_so_far {
                fresh.add_edge(l, f, t);
            }
            let merged = solve(&inst, Algorithm::PaigeTarjan);
            assert_eq!(inst.num_edges(), edges_so_far.len(), "round {i}");
            assert_eq!(inst.graph(), fresh.graph(), "round {i}");
            assert_eq!(merged, solve(&fresh, Algorithm::PaigeTarjan), "round {i}");
            assert_eq!(
                merged,
                solve(&inst, Algorithm::KanellakisSmolka),
                "round {i}"
            );
        }
    }

    #[test]
    fn apply_delta_matches_batch_construction() {
        let mut inst = Instance::new(5, 2);
        inst.add_edge(0, 0, 1);
        inst.add_edge(0, 1, 2);
        inst.add_edge(1, 2, 3);
        inst.apply_delta(&[(0, 3, 4), (1, 4, 0)], &[(0, 1, 2), (1, 0, 0)]);
        let mut fresh = Instance::new(5, 2);
        for (l, f, t) in [(0, 0, 1), (1, 2, 3), (0, 3, 4), (1, 4, 0)] {
            fresh.add_edge(l, f, t);
        }
        assert_eq!(inst, fresh);
        assert!(inst.has_edge(0, 3, 4));
        assert!(!inst.has_edge(0, 1, 2));
    }

    #[test]
    fn apply_delta_lets_additions_win_over_removals() {
        let mut inst = Instance::new(3, 1);
        inst.add_edge(0, 0, 1);
        // The same edge named on both sides: removals first, so it survives.
        inst.apply_delta(&[(0, 0, 1), (0, 1, 2)], &[(0, 0, 1)]);
        assert!(inst.has_edge(0, 0, 1));
        assert!(inst.has_edge(0, 1, 2));
        assert_eq!(inst.num_edges(), 2);
    }

    #[test]
    fn apply_delta_removes_pending_edges_too() {
        // An edge still sitting in the pending list (never laid out) must be
        // just as removable as one already in the base CSR.
        let mut inst = Instance::new(4, 1);
        inst.add_edge(0, 0, 1);
        let _ = inst.graph(); // lay out the base
        inst.add_edge(0, 1, 2); // pending only
        inst.add_edge(0, 2, 3); // pending only
        inst.apply_delta(&[(0, 3, 0)], &[(0, 1, 2), (0, 0, 1)]);
        let mut fresh = Instance::new(4, 1);
        fresh.add_edge(0, 2, 3);
        fresh.add_edge(0, 3, 0);
        assert_eq!(inst, fresh);
    }

    /// Regression test for repeated solve/mutate/solve cycles: each query
    /// after a mutation must pay exactly one sorted merge over the edges of
    /// that batch (the previous merged layout is promoted to the base, so
    /// chains of batches never re-merge already-merged edges), and the
    /// result must stay identical to a from-scratch build at every step.
    #[test]
    fn repeated_solve_mutate_solve_cycles_stay_incremental() {
        use crate::{solve, Algorithm};
        let n = 16;
        let mut inst = Instance::new(n, 2);
        let mut live: Vec<(usize, usize, usize)> = Vec::new();
        for round in 0..10 {
            let adds = [
                (round % 2, round % n, (round + 1) % n),
                ((round + 1) % 2, (round + 3) % n, round % n),
            ];
            let removals: Vec<(usize, usize, usize)> = if round % 3 == 2 {
                vec![live[round / 3]]
            } else {
                Vec::new()
            };
            inst.apply_delta(&adds, &removals);
            live.retain(|e| !removals.contains(e));
            for e in adds {
                if !live.contains(&e) {
                    live.push(e);
                }
            }
            // After a removal batch the pending list must be folded away —
            // the next query sees the base directly, no merge at all.
            if !removals.is_empty() {
                assert!(inst.pending.is_empty(), "round {round}");
            } else {
                // Addition batches stay pending until a query merges them,
                // and the previous round's merge was promoted to the base:
                // only this batch's edges are pending.
                assert!(inst.pending.len() <= adds.len(), "round {round}");
            }
            let mut fresh = Instance::new(n, 2);
            for &(l, f, t) in &live {
                fresh.add_edge(l, f, t);
            }
            let solved = solve(&inst, Algorithm::KanellakisSmolka);
            assert_eq!(inst.graph(), fresh.graph(), "round {round}");
            assert_eq!(
                solved,
                solve(&fresh, Algorithm::PaigeTarjan),
                "round {round}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "source element out of range")]
    fn apply_delta_checks_removal_ranges() {
        let mut inst = Instance::new(2, 1);
        inst.apply_delta(&[], &[(0, 9, 0)]);
    }

    #[test]
    fn from_graph_adopts_a_prebuilt_layout() {
        let mut b = crate::GraphBuilder::new(4, 1);
        b.extend_edges([(0, 0, 1), (0, 1, 2), (0, 2, 3)]);
        let graph = b.build();
        let mut inst = Instance::from_graph(graph.clone());
        assert_eq!(inst.graph(), &graph);
        assert_eq!(inst.num_edges(), 3);
        // Mutation after adoption still works through the merge path.
        inst.add_edge(0, 3, 0);
        assert_eq!(inst.num_edges(), 4);
        assert_eq!(inst.successors(0, 3), &[s(0)]);
    }

    #[test]
    fn equality_ignores_duplicates_and_insertion_order() {
        let mut a = Instance::new(3, 1);
        a.add_edge(0, 0, 2);
        a.add_edge(0, 0, 1);
        let mut b = Instance::new(3, 1);
        b.add_edge(0, 0, 1);
        b.add_edge(0, 0, 2);
        b.add_edge(0, 0, 2);
        assert_eq!(a, b);
        b.add_edge(0, 1, 2);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn add_edge_checks_label() {
        let mut inst = Instance::new(2, 1);
        inst.add_edge(1, 0, 1);
    }

    #[test]
    #[should_panic(expected = "target element out of range")]
    fn add_edge_checks_target() {
        let mut inst = Instance::new(2, 1);
        inst.add_edge(0, 0, 5);
    }

    #[test]
    fn initial_blocks_default_to_zero() {
        let mut inst = Instance::new(3, 1);
        assert_eq!(inst.initial_blocks(), &[0, 0, 0]);
        inst.set_initial_block(1, 4);
        assert_eq!(inst.initial_blocks(), &[0, 4, 0]);
    }

    #[test]
    fn from_builder_round_trip() {
        let mut b = crate::GraphBuilder::new(3, 1);
        b.add_edge(0, 0, 1);
        b.add_edge(0, 1, 2);
        let inst = Instance::from_builder(b);
        assert_eq!(inst.num_elements(), 3);
        assert_eq!(inst.num_edges(), 2);
        assert_eq!(inst.initial_blocks(), &[0, 0, 0]);
        assert_eq!(inst.successors(0, 1), &[s(2)]);
    }

    #[test]
    fn stability_oracle_accepts_stable_partition() {
        // 0 -> 1, 2 -> 3 under one relation; {0,2},{1,3} is stable.
        let mut inst = Instance::new(4, 1);
        inst.add_edge(0, 0, 1);
        inst.add_edge(0, 2, 3);
        let stable = Partition::from_assignment(&[0, 1, 0, 1]);
        assert!(inst.is_consistent_stable(&stable));
        // The trivial partition is not stable (0 reaches the block, 1 does not).
        let trivial = Partition::trivial(4);
        assert!(!inst.is_consistent_stable(&trivial));
    }

    #[test]
    fn stability_oracle_checks_initial_consistency() {
        let mut inst = Instance::new(2, 1);
        inst.set_initial_block(0, 0);
        inst.set_initial_block(1, 1);
        // A coarser partition than the initial one is inconsistent.
        assert!(!inst.is_consistent_stable(&Partition::trivial(2)));
        assert!(inst.is_consistent_stable(&Partition::discrete(2)));
        // Wrong ground set.
        assert!(!inst.is_consistent_stable(&Partition::discrete(3)));
    }
}
