//! The Paige–Tarjan relational coarsest partition algorithm (Theorem 3.1),
//! generalized to labelled relations.
//!
//! The algorithm maintains two partitions: the fine partition `Q` (the
//! answer under construction) and a coarser partition `X` whose blocks are
//! unions of `Q`-blocks, with the invariant that `Q` is *stable* with respect
//! to every `X`-block under every relation.  A compound `X`-block `S`
//! (containing at least two `Q`-blocks) is processed by extracting a
//! `Q`-block `B` of size at most `|S|/2` ("process the smaller half") and
//! performing, per relation, a three-way split of every `Q`-block `D`:
//!
//! 1. elements with successors in `B` only,
//! 2. elements with successors in both `B` and `S \ B`,
//! 3. elements with successors in `S \ B` only (or none).
//!
//! Split 3 is computed *without scanning* `S \ B` by keeping, for every
//! element and relation, the count of its successors inside each `X`-block.
//! Every element is scanned only when the half it belongs to is extracted, so
//! each element is scanned `O(log n)` times and the total running time is
//! `O(m log n + n)` (Paige & Tarjan 1987), which the paper combines with
//! Lemma 3.1 to decide strong equivalence within the same bound.

use std::collections::HashMap;

use crate::ids::{self, StateId};
use crate::{Instance, Partition};

/// Runs the Paige–Tarjan algorithm and returns the coarsest consistent
/// stable partition.
#[must_use]
pub fn refine(instance: &Instance) -> Partition {
    let n = instance.num_elements();
    if n == 0 {
        return Partition::from_assignment::<usize>(&[]);
    }
    let num_labels = instance.num_labels();
    // Hoist the CSR view out of the hot loops.
    let graph = instance.graph();

    // --- Initial fine partition Q: the initial partition refined by the
    // per-label "has at least one outgoing edge" signature, so that Q is
    // stable with respect to the single initial X-block (the whole set).
    // All live state is 32-bit: elements are packed `StateId`s, Q-/X-block
    // ids raw `u32`s, and the edge counters `u32` values keyed by 12-byte
    // `(label, element, x_block)` triples — half the former key size, which
    // matters because `counts` is the algorithm's largest structure.
    let mut block_of: Vec<u32> = vec![0; n];
    let mut q_blocks: Vec<Vec<StateId>> = Vec::new();
    {
        let mut sig_to_block: HashMap<(u32, Vec<bool>), u32> = HashMap::new();
        for (x, block) in block_of.iter_mut().enumerate() {
            let sig: Vec<bool> = (0..num_labels)
                .map(|l| !graph.successors(l, x).is_empty())
                .collect();
            let key = (instance.initial_blocks()[x], sig);
            let fresh = ids::narrow(sig_to_block.len());
            let id = *sig_to_block.entry(key).or_insert(fresh);
            if id as usize == q_blocks.len() {
                q_blocks.push(Vec::new());
            }
            *block = id;
            q_blocks[id as usize].push(StateId::from_index(x));
        }
    }

    // --- X partition: initially one block containing every Q-block.
    let mut x_of_q: Vec<u32> = vec![0; q_blocks.len()];
    let mut x_blocks: Vec<Vec<u32>> = vec![(0..ids::narrow(q_blocks.len())).collect()];

    // counts[(label, element, x_block)] = number of edges from `element`
    // under `label` into `x_block`.
    let mut counts: HashMap<(u32, StateId, u32), u32> = HashMap::new();
    for l in 0..num_labels {
        for x in 0..n {
            let d = graph.successors(l, x).len();
            if d > 0 {
                counts.insert((ids::narrow(l), StateId::from_index(x), 0), ids::narrow(d));
            }
        }
    }

    // Worklist of compound X-blocks.
    let mut worklist: Vec<u32> = Vec::new();
    let mut on_worklist: Vec<bool> = vec![false; 1];
    if x_blocks[0].len() >= 2 {
        worklist.push(0);
        on_worklist[0] = true;
    }

    // Epoch-stamped "Q-block already marked affected" scratch, one epoch per
    // (splitter, label) round.
    let mut affected_stamp: Vec<u64> = vec![0; q_blocks.len()];
    let mut epoch: u64 = 0;

    while let Some(s) = worklist.pop() {
        on_worklist[s as usize] = false;
        if x_blocks[s as usize].len() < 2 {
            continue;
        }
        // Choose B: the smaller of the first two Q-blocks of S.
        let (pos, b) = {
            let q0 = x_blocks[s as usize][0];
            let q1 = x_blocks[s as usize][1];
            if q_blocks[q0 as usize].len() <= q_blocks[q1 as usize].len() {
                (0, q0)
            } else {
                (1, q1)
            }
        };
        // Extract B from S into a fresh X-block.
        x_blocks[s as usize].swap_remove(pos);
        let xb = ids::narrow(x_blocks.len());
        x_blocks.push(vec![b]);
        on_worklist.push(false);
        x_of_q[b as usize] = xb;
        if x_blocks[s as usize].len() >= 2 && !on_worklist[s as usize] {
            on_worklist[s as usize] = true;
            worklist.push(s);
        }

        let b_elems = q_blocks[b as usize].clone();
        for label in 0..num_labels {
            let l32 = ids::narrow(label);
            epoch += 1;
            // Count, for every predecessor x of B under `label`, how many of
            // its successors lie in B.
            let mut cnt_b: HashMap<StateId, u32> = HashMap::new();
            for &y in &b_elems {
                for &x in graph.predecessors(label, y.index()) {
                    *cnt_b.entry(x).or_insert(0) += 1;
                }
            }
            if cnt_b.is_empty() {
                continue;
            }
            // Classify each predecessor: group 1 = successors only in B,
            // group 2 = successors in both B and S \ B.
            // Elements not in cnt_b that were in pre(S) form group 3 and are
            // never touched (that is the point of the counters).
            let mut affected_blocks: Vec<u32> = Vec::new();
            let mut group_of: HashMap<StateId, u8> = HashMap::new();
            for (&x, &into_b) in &cnt_b {
                let into_s = *counts
                    .get(&(l32, x, s))
                    .expect("x has an edge into B ⊆ old S, so a count for S must exist");
                let group = if into_b == into_s { 1 } else { 2 };
                group_of.insert(x, group);
                let d = block_of[x.index()];
                if affected_stamp[d as usize] != epoch {
                    affected_stamp[d as usize] = epoch;
                    affected_blocks.push(d);
                }
            }
            // Three-way split of every affected Q-block.
            for &d in &affected_blocks {
                let mut part1: Vec<StateId> = Vec::new();
                let mut part2: Vec<StateId> = Vec::new();
                let mut part3: Vec<StateId> = Vec::new();
                for &x in &q_blocks[d as usize] {
                    match group_of.get(&x) {
                        Some(1) => part1.push(x),
                        Some(2) => part2.push(x),
                        _ => part3.push(x),
                    }
                }
                let mut parts: Vec<Vec<StateId>> = [part1, part2, part3]
                    .into_iter()
                    .filter(|p| !p.is_empty())
                    .collect();
                if parts.len() < 2 {
                    continue;
                }
                // Keep the first non-empty part under the old id, create new
                // Q-blocks (in the same X-block) for the rest.
                let home_x = x_of_q[d as usize];
                q_blocks[d as usize] = parts.remove(0);
                for part in parts {
                    let new_q = ids::narrow(q_blocks.len());
                    for &x in &part {
                        block_of[x.index()] = new_q;
                    }
                    q_blocks.push(part);
                    x_of_q.push(home_x);
                    affected_stamp.push(0);
                    x_blocks[home_x as usize].push(new_q);
                }
                // The X-block that gained Q-blocks is now compound.
                if x_blocks[home_x as usize].len() >= 2 && !on_worklist[home_x as usize] {
                    on_worklist[home_x as usize] = true;
                    worklist.push(home_x);
                }
            }
            // Update the counters: edges into B now count toward the new
            // X-block `xb`; counts toward S shrink accordingly.
            for (&x, &into_b) in &cnt_b {
                counts.insert((l32, x, xb), into_b);
                let entry = counts
                    .get_mut(&(l32, x, s))
                    .expect("count for old S exists");
                *entry -= into_b;
                if *entry == 0 {
                    counts.remove(&(l32, x, s));
                }
            }
        }
    }

    Partition::from_assignment(&block_of)
}

#[cfg(test)]
// Test RNG draws narrow by `as` on purpose; the lint guards library code.
#[allow(clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use crate::{kanellakis_smolka, naive};

    fn cross_check(inst: &Instance) -> Partition {
        let pt = refine(inst);
        let ks = kanellakis_smolka::refine(inst);
        let nv = naive::refine(inst);
        assert_eq!(pt, ks, "paige-tarjan vs kanellakis-smolka");
        assert_eq!(pt, nv, "paige-tarjan vs naive");
        assert!(inst.is_consistent_stable(&pt));
        pt
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(0, 1);
        assert_eq!(refine(&inst).num_elements(), 0);
    }

    #[test]
    fn singleton_without_edges() {
        let inst = Instance::new(1, 1);
        assert_eq!(refine(&inst).num_blocks(), 1);
    }

    #[test]
    fn chain_is_fully_discriminated() {
        let mut inst = Instance::new(8, 1);
        for i in 0..7 {
            inst.add_edge(0, i, i + 1);
        }
        assert_eq!(cross_check(&inst).num_blocks(), 8);
    }

    #[test]
    fn parallel_cycles_collapse() {
        let mut inst = Instance::new(6, 1);
        for base in [0, 3] {
            inst.add_edge(0, base, base + 1);
            inst.add_edge(0, base + 1, base + 2);
            inst.add_edge(0, base + 2, base);
        }
        assert_eq!(cross_check(&inst).num_blocks(), 1);
    }

    #[test]
    fn initial_partition_is_respected() {
        let mut inst = Instance::new(6, 1);
        for base in [0, 3] {
            inst.add_edge(0, base, base + 1);
            inst.add_edge(0, base + 1, base + 2);
            inst.add_edge(0, base + 2, base);
        }
        inst.set_initial_block(4, 1);
        let p = cross_check(&inst);
        // Breaking the symmetry of one cycle separates everything in it, and
        // the blocks of the two cycles can no longer be merged.
        assert!(p.num_blocks() > 1);
        assert!(!p.same_block(1, 4));
    }

    #[test]
    fn multi_label_and_nondeterminism() {
        let mut inst = Instance::new(7, 2);
        inst.add_edge(0, 0, 1);
        inst.add_edge(0, 0, 2);
        inst.add_edge(1, 1, 3);
        inst.add_edge(1, 2, 4);
        inst.add_edge(0, 5, 1);
        inst.add_edge(0, 5, 2);
        inst.add_edge(0, 6, 2);
        let p = cross_check(&inst);
        // 1 and 2 are equivalent (both have a single `1`-labelled edge to a
        // dead element), so 0, 5 and 6 all reach the same set of blocks.
        assert!(p.same_block(1, 2));
        assert!(p.same_block(0, 5));
        assert!(p.same_block(0, 6));
    }

    #[test]
    fn counts_matter_for_stability_not_equivalence() {
        // 0 has two edges into the cycle {2,3}, 1 has one: still equivalent,
        // since only non-emptiness of fₗ(a) ∩ E_j matters.
        let mut inst = Instance::new(4, 1);
        inst.add_edge(0, 0, 2);
        inst.add_edge(0, 0, 3);
        inst.add_edge(0, 1, 2);
        inst.add_edge(0, 2, 3);
        inst.add_edge(0, 3, 2);
        let p = cross_check(&inst);
        assert!(p.same_block(0, 1));
    }

    #[test]
    fn random_instances_agree_with_reference_algorithms() {
        // Deterministic pseudo-random instances (linear congruential) so the
        // test needs no external dependency.
        let mut seed: u64 = 0x2545F491_4F6CDD1D;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..25 {
            let n = 2 + (next() % 14) as usize;
            let labels = 1 + (next() % 3) as usize;
            let edges = (next() % (3 * n as u64)) as usize;
            let mut inst = Instance::new(n, labels);
            for _ in 0..edges {
                let l = (next() % labels as u64) as usize;
                let from = (next() % n as u64) as usize;
                let to = (next() % n as u64) as usize;
                inst.add_edge(l, from, to);
            }
            if case % 3 == 0 {
                // Sometimes impose a non-trivial initial partition.
                for x in 0..n {
                    inst.set_initial_block(x, x % 2);
                }
            }
            cross_check(&inst);
        }
    }
}
