//! Sharded parallel smaller-half refinement —
//! [`Algorithm::KanellakisSmolkaParallel`](crate::Algorithm::KanellakisSmolkaParallel).
//!
//! [`refine`] runs the same smaller-half splitter-worklist algorithm as
//! [`kanellakis_smolka::refine`], but
//! shards the pending-splitter worklist across a pool of scoped worker
//! threads (std only — no external thread-pool crate).  Execution proceeds
//! in *rounds*, each with three phases:
//!
//! 1. **Prologue** (sequential): drain the worklist of compound splitter
//!    groups, extracting the smaller fragment `B` of each popped group as an
//!    active splitter exactly as the sequential engine does.  A group with
//!    `k` blocks yields `k - 1` extractions in one round; every extracted
//!    fragment is at most half of its group at extraction time, so the
//!    paper's `O(log n)` extractions-per-element charge is preserved.
//! 2. **Scan** (parallel): the round's tasks — one `(B, co-fragment group)`
//!    pair per extraction — are pulled from a shared atomic cursor by the
//!    workers.  Each worker classifies the predecessors of its splitters
//!    with a thread-local epoch-stamped touched buffer, deciding "does `x`
//!    also reach the co-fragment?" by a fan-out-bounded successor scan
//!    against a frozen element→group snapshot.  Per-task results are
//!    byte-identical no matter which worker runs them or in what order, so
//!    dynamic load balancing does not perturb the outcome.
//! 3. **Merge barrier** (sequential): hit lists are applied in task order,
//!    performing the same three-way split (`B` only / both / co-fragment
//!    only) and the same group bookkeeping as the sequential engine, and
//!    enqueueing groups that turned compound for the next round.
//!
//! # Why the round structure is sound
//!
//! Within a round, splits never move a block between splitter groups (split
//! fragments stay in their home group), and all extractions — the only
//! operation that does move blocks — happen in the prologue, before any scan
//! reads the element→group snapshot.  The classification a worker computes
//! against the frozen snapshot is therefore exactly the classification the
//! sequential engine would compute at merge-application time.  Every merge
//! step splits a block by "reaches `B`" × "reaches the co-fragment", where
//! both sets are unions of current blocks; since the coarsest stable
//! partition refines every intermediate partition, elements of a common
//! final block are never separated, and the three-way split re-establishes
//! stability with respect to both fragments just as in the sequential
//! argument (see the [`kanellakis_smolka`] module docs).  The merge is applied in deterministic task order, so the whole
//! engine is deterministic: for any thread count it produces block-for-block
//! the partition of the sequential smaller-half engine (checked across all
//! workload families by `tests/parallel_determinism.rs`).
//!
//! # Knobs
//!
//! * `threads` — worker count; [`default_threads`] reads `CCS_THREADS` and
//!   falls back to [`std::thread::available_parallelism`].
//! * sequential fallback — below [`sequential_threshold`] states (default
//!   [`DEFAULT_SEQUENTIAL_THRESHOLD`], override with `CCS_PAR_THRESHOLD`)
//!   the per-round coordination would dominate, so [`refine`] delegates to
//!   the sequential engine outright.  Single-task rounds are likewise
//!   scanned inline on the coordinating thread without a pool round-trip.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

use crate::graph::LabeledGraph;
use crate::ids::{self, StateId};
use crate::{kanellakis_smolka, Instance, Partition};

/// Default state-count threshold below which [`refine`] falls back to the
/// sequential smaller-half engine.
pub const DEFAULT_SEQUENTIAL_THRESHOLD: usize = 512;

/// The state-count threshold below which [`refine`] runs sequentially:
/// `CCS_PAR_THRESHOLD` if set to a number, otherwise
/// [`DEFAULT_SEQUENTIAL_THRESHOLD`].
#[must_use]
pub fn sequential_threshold() -> usize {
    std::env::var("CCS_PAR_THRESHOLD")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEQUENTIAL_THRESHOLD)
}

/// The default worker count: `CCS_THREADS` if set to a positive number,
/// otherwise [`std::thread::available_parallelism`] (or 1 if unknown).
#[must_use]
pub fn default_threads() -> usize {
    std::env::var("CCS_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

/// Runs `f` over every index in `0..num_tasks` across `threads` scoped
/// workers and returns the results **in index order** — the deterministic
/// fan-out/merge-barrier primitive the refinement rounds are built on,
/// exposed for other frozen-snapshot parallel scans (the subset-automaton
/// frontier exploration in `ccs-equiv` shards through this).
///
/// Workers pull indices from a shared atomic cursor, so load balancing is
/// dynamic, but the output is independent of scheduling as long as `f(i)` is
/// a pure function of `i` and whatever frozen shared state it reads.  Each
/// worker owns one scratch value built by `init` and threads it through
/// every task it runs — the same thread-local reusable-buffer pattern as the
/// epoch-stamped scan buffers of [`refine`].  With one thread (or fewer than
/// two tasks) everything runs inline on the caller's thread, with no pool.
pub fn sharded_map_with<S, T, I, F>(num_tasks: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if threads <= 1 || num_tasks < 2 {
        let mut scratch = init();
        return (0..num_tasks).map(|i| f(&mut scratch, i)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(num_tasks);
    slots.resize_with(num_tasks, || None);
    std::thread::scope(|scope| {
        let (tx, rx) = channel::<(usize, T)>();
        for _ in 0..threads.min(num_tasks) {
            let tx = tx.clone();
            let (cursor, init, f) = (&cursor, &init, &f);
            scope.spawn(move || {
                let mut scratch = init();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= num_tasks {
                        return;
                    }
                    let out = f(&mut scratch, i);
                    if tx.send((i, out)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(tx);
        while let Ok((i, out)) = rx.recv() {
            slots[i] = Some(out);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every task index was scanned exactly once"))
        .collect()
}

/// One extraction of the round's prologue: a snapshot of the active
/// splitter block `B` and the group id of its still-pending co-fragment.
/// Compact ids keep the per-task snapshots (and the hit lists flowing back
/// over the channels) at half their former size.
struct Task {
    splitter: Vec<StateId>,
    co_group: u32,
}

/// Scan output for one task: per label, the deduplicated predecessors of the
/// splitter, each tagged with whether it also reaches the co-fragment group.
type TaskHits = Vec<Vec<(StateId, bool)>>;

/// The shared descriptor of one parallel round.
struct Round {
    tasks: Vec<Task>,
    /// Frozen element → splitter-group snapshot (valid for the whole round:
    /// merges never move elements between groups).
    elem_group: Vec<u32>,
    /// Work-stealing cursor into `tasks`.
    next: AtomicUsize,
    num_labels: usize,
}

enum WorkerMsg {
    Scanned { task: usize, hits: TaskHits },
    RoundDone,
}

/// Classifies the predecessors of one splitter under every label.
///
/// `stamp`/`epoch` are the caller's thread-local touched buffer: one epoch
/// per `(task, label)` makes the per-edge duplicate check `O(1)` without
/// clearing between tasks.  The output is independent of which thread runs
/// the scan — iteration follows the splitter snapshot and the CSR
/// predecessor order, both fixed per task.
fn scan_task(
    graph: &LabeledGraph,
    task: &Task,
    elem_group: &[u32],
    num_labels: usize,
    stamp: &mut [u64],
    epoch: &mut u64,
) -> TaskHits {
    let mut hits = Vec::with_capacity(num_labels);
    for label in 0..num_labels {
        *epoch += 1;
        let mut label_hits = Vec::new();
        for &y in &task.splitter {
            for &x in graph.predecessors(label, y.index()) {
                if stamp[x.index()] == *epoch {
                    continue;
                }
                stamp[x.index()] = *epoch;
                // Does x also reach the co-fragment S \ B?  Decided by
                // scanning x's ≤ c successors against the frozen group
                // snapshot — the co-fragment itself is never scanned.
                let in_rest = graph
                    .successors(label, x.index())
                    .iter()
                    .any(|&z| elem_group[z.index()] == task.co_group);
                label_hits.push((x, in_rest));
            }
        }
        hits.push(label_hits);
    }
    hits
}

/// Worker body: pull tasks from the round cursor, scan, publish, repeat
/// until the round channel closes.
fn worker_loop(graph: &LabeledGraph, rounds: &Receiver<Arc<Round>>, out: &Sender<WorkerMsg>) {
    let mut stamp = vec![0u64; graph.num_elements()];
    let mut epoch = 0u64;
    while let Ok(round) = rounds.recv() {
        loop {
            let t = round.next.fetch_add(1, Ordering::Relaxed);
            if t >= round.tasks.len() {
                break;
            }
            let hits = scan_task(
                graph,
                &round.tasks[t],
                &round.elem_group,
                round.num_labels,
                &mut stamp,
                &mut epoch,
            );
            if out.send(WorkerMsg::Scanned { task: t, hits }).is_err() {
                return;
            }
        }
        // Drop our handle on the round *before* signalling completion, so
        // the coordinator can reclaim the round exclusively afterwards.
        drop(round);
        if out.send(WorkerMsg::RoundDone).is_err() {
            return;
        }
    }
}

/// Runs the sharded parallel smaller-half refinement with the default
/// sequential-fallback threshold (see [`sequential_threshold`]) and returns
/// the coarsest consistent stable partition.
///
/// Deterministic: for every `threads ≥ 1` the result is block-for-block
/// identical to [`kanellakis_smolka::refine`].
#[must_use]
pub fn refine(instance: &Instance, threads: usize) -> Partition {
    refine_with_threshold(instance, threads, sequential_threshold())
}

/// [`refine`] with an explicit sequential-fallback threshold: instances with
/// fewer than `threshold` states run on the sequential engine.  Pass `0` to
/// force the parallel path (the determinism suite does this so small
/// workloads still exercise the sharded rounds).
#[must_use]
pub fn refine_with_threshold(instance: &Instance, threads: usize, threshold: usize) -> Partition {
    let n = instance.num_elements();
    if n == 0 {
        return Partition::from_assignment::<usize>(&[]);
    }
    if threads <= 1 || n < threshold {
        return kanellakis_smolka::refine(instance);
    }
    let num_labels = instance.num_labels();
    let graph = instance.graph();

    // Identical seed to the sequential engine (part of the determinism
    // contract): initial partition refined by per-label successor presence.
    // As there, all live state and worker buffers are 32-bit ids.
    let (mut block_of, mut blocks) = kanellakis_smolka::initial_fine_partition(instance, graph);

    // Splitter groups, exactly as in the sequential engine: unions of blocks
    // (split siblings stay together); a compound group is pending work.
    let mut group_of: Vec<u32> = vec![0; blocks.len()];
    let mut groups: Vec<Vec<u32>> = vec![(0..ids::narrow(blocks.len())).collect()];
    let mut worklist: Vec<u32> = Vec::new();
    let mut on_worklist: Vec<bool> = vec![false];
    if groups[0].len() >= 2 {
        worklist.push(0);
        on_worklist[0] = true;
    }

    // Element → group of its block, maintained incrementally: only prologue
    // extractions move blocks between groups, so merges leave it untouched.
    let mut elem_group: Vec<u32> = vec![0; n];

    // Merge-side epoch-stamped scratch (one epoch per applied (task, label)).
    let mut elem_stamp: Vec<u64> = vec![0; n];
    let mut elem_in_rest: Vec<bool> = vec![false; n];
    let mut touched_stamp: Vec<u64> = vec![0; blocks.len()];
    let mut epoch: u64 = 0;

    // Coordinator-side scan scratch for single-task rounds.
    let mut inline_stamp: Vec<u64> = vec![0; n];
    let mut inline_epoch: u64 = 0;

    std::thread::scope(|scope| {
        let (result_tx, result_rx) = channel::<WorkerMsg>();
        let mut round_txs: Vec<Sender<Arc<Round>>> = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (tx, rx) = channel::<Arc<Round>>();
            round_txs.push(tx);
            let result_tx = result_tx.clone();
            scope.spawn(move || worker_loop(graph, &rx, &result_tx));
        }
        drop(result_tx);

        while !worklist.is_empty() {
            // --- Prologue: drain every pending group, extracting smaller
            // fragments.  Re-pushed groups are popped again within the same
            // drain, so a k-block group contributes k-1 tasks to the round.
            let mut tasks: Vec<Task> = Vec::new();
            while let Some(s) = worklist.pop() {
                on_worklist[s as usize] = false;
                if groups[s as usize].len() < 2 {
                    continue;
                }
                // Smaller of the group's first two blocks — the same rule as
                // the sequential engine, and still at most half the group.
                let (pos, b) = {
                    let b0 = groups[s as usize][0];
                    let b1 = groups[s as usize][1];
                    if blocks[b0 as usize].len() <= blocks[b1 as usize].len() {
                        (0, b0)
                    } else {
                        (1, b1)
                    }
                };
                groups[s as usize].swap_remove(pos);
                let own_group = ids::narrow(groups.len());
                group_of[b as usize] = own_group;
                for &x in &blocks[b as usize] {
                    elem_group[x.index()] = own_group;
                }
                groups.push(vec![b]);
                on_worklist.push(false);
                if groups[s as usize].len() >= 2 {
                    on_worklist[s as usize] = true;
                    worklist.push(s);
                }
                tasks.push(Task {
                    splitter: blocks[b as usize].clone(),
                    co_group: s,
                });
            }

            // --- Scan: inline for singleton rounds, sharded otherwise.
            let num_tasks = tasks.len();
            let mut all_hits: Vec<Option<TaskHits>> = Vec::new();
            if num_tasks == 1 {
                all_hits.push(Some(scan_task(
                    graph,
                    &tasks[0],
                    &elem_group,
                    num_labels,
                    &mut inline_stamp,
                    &mut inline_epoch,
                )));
            } else {
                all_hits.resize_with(num_tasks, || None);
                let round = Arc::new(Round {
                    tasks,
                    elem_group: std::mem::take(&mut elem_group),
                    next: AtomicUsize::new(0),
                    num_labels,
                });
                for tx in &round_txs {
                    tx.send(Arc::clone(&round)).expect("worker thread alive");
                }
                let mut pending_tasks = num_tasks;
                let mut pending_workers = threads;
                while pending_tasks > 0 || pending_workers > 0 {
                    match result_rx.recv().expect("worker thread alive") {
                        WorkerMsg::Scanned { task, hits } => {
                            all_hits[task] = Some(hits);
                            pending_tasks -= 1;
                        }
                        WorkerMsg::RoundDone => pending_workers -= 1,
                    }
                }
                // Every worker has dropped its handle; take the snapshot
                // back for the next prologue's incremental updates.
                let round = Arc::try_unwrap(round)
                    .ok()
                    .expect("all workers signalled RoundDone");
                elem_group = round.elem_group;
            }

            // --- Merge barrier: apply hit lists in deterministic task
            // order, with the sequential engine's three-way split.
            for hits in all_hits.into_iter().map(|h| h.expect("task scanned")) {
                for label_hits in hits {
                    if label_hits.is_empty() {
                        continue;
                    }
                    epoch += 1;
                    let mut touched: Vec<u32> = Vec::new();
                    for &(x, in_rest) in &label_hits {
                        elem_stamp[x.index()] = epoch;
                        elem_in_rest[x.index()] = in_rest;
                        let d = block_of[x.index()];
                        if touched_stamp[d as usize] != epoch {
                            touched_stamp[d as usize] = epoch;
                            touched.push(d);
                        }
                    }
                    for &d in &touched {
                        let mut only_b: Vec<StateId> = Vec::new();
                        let mut both: Vec<StateId> = Vec::new();
                        let mut rest: Vec<StateId> = Vec::new();
                        for &x in &blocks[d as usize] {
                            if elem_stamp[x.index()] != epoch {
                                rest.push(x);
                            } else if elem_in_rest[x.index()] {
                                both.push(x);
                            } else {
                                only_b.push(x);
                            }
                        }
                        let mut parts: Vec<Vec<StateId>> = [only_b, both, rest]
                            .into_iter()
                            .filter(|p| !p.is_empty())
                            .collect();
                        if parts.len() < 2 {
                            continue;
                        }
                        // First part keeps the old id; fresh fragments stay
                        // in the sibling's home group.
                        let home = group_of[d as usize];
                        blocks[d as usize] = parts.remove(0);
                        for part in parts {
                            let new_id = ids::narrow(blocks.len());
                            for &x in &part {
                                block_of[x.index()] = new_id;
                            }
                            blocks.push(part);
                            group_of.push(home);
                            touched_stamp.push(0);
                            groups[home as usize].push(new_id);
                        }
                        if !on_worklist[home as usize] {
                            on_worklist[home as usize] = true;
                            worklist.push(home);
                        }
                    }
                }
            }
        }
        // Dropping `round_txs` here closes the round channels; the workers'
        // `recv` fails and they exit before the scope joins them.
    });

    Partition::from_assignment(&block_of)
}

#[cfg(test)]
// Test RNG draws narrow by `as` on purpose; the lint guards library code.
#[allow(clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use crate::{kanellakis_smolka, naive};

    /// Forces the parallel path (threshold 0) at several thread counts and
    /// checks block-for-block agreement with the sequential engines.
    fn cross_check(inst: &Instance) -> Partition {
        let sequential = kanellakis_smolka::refine(inst);
        for threads in [1, 2, 3, 8] {
            let parallel = refine_with_threshold(inst, threads, 0);
            assert_eq!(parallel, sequential, "{threads} threads");
            assert_eq!(parallel.blocks(), sequential.blocks(), "{threads} threads");
        }
        assert_eq!(sequential, naive::refine(inst), "sequential vs naive");
        assert!(inst.is_consistent_stable(&sequential));
        sequential
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(0, 2);
        assert_eq!(refine_with_threshold(&inst, 4, 0).num_elements(), 0);
    }

    #[test]
    fn single_element() {
        let inst = Instance::new(1, 1);
        assert_eq!(cross_check(&inst).num_blocks(), 1);
    }

    #[test]
    fn chain_fully_discriminates() {
        let mut inst = Instance::new(9, 1);
        for i in 0..8 {
            inst.add_edge(0, i, i + 1);
        }
        assert_eq!(cross_check(&inst).num_blocks(), 9);
    }

    #[test]
    fn respects_initial_partition() {
        let mut inst = Instance::new(4, 1);
        inst.add_edge(0, 0, 1);
        inst.add_edge(0, 2, 3);
        inst.set_initial_block(1, 1);
        let p = cross_check(&inst);
        assert!(!p.same_block(1, 3));
        assert!(!p.same_block(0, 2));
    }

    #[test]
    fn elements_reaching_both_halves_are_handled() {
        // The family the plain smaller-half rule gets wrong (see the
        // sequential tests): the three-way split must separate 0 and 1.
        let mut inst = Instance::new(5, 1);
        inst.add_edge(0, 0, 2);
        inst.add_edge(0, 0, 3);
        inst.add_edge(0, 1, 2);
        inst.add_edge(0, 2, 4);
        inst.add_edge(0, 4, 2);
        let p = cross_check(&inst);
        assert!(!p.same_block(0, 1));
    }

    #[test]
    fn below_threshold_falls_back_to_sequential() {
        let mut inst = Instance::new(6, 1);
        for i in 0..5 {
            inst.add_edge(0, i, i + 1);
        }
        // threshold > n: the fallback must still give the canonical answer.
        let p = refine_with_threshold(&inst, 4, 1_000_000);
        assert_eq!(p, kanellakis_smolka::refine(&inst));
    }

    #[test]
    fn random_instances_agree_across_thread_counts() {
        let mut seed: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..25 {
            let n = 2 + (next() % 48) as usize;
            let labels = 1 + (next() % 3) as usize;
            let edges = (next() % (4 * n as u64)) as usize;
            let mut inst = Instance::new(n, labels);
            for _ in 0..edges {
                let l = (next() % labels as u64) as usize;
                let from = (next() % n as u64) as usize;
                let to = (next() % n as u64) as usize;
                inst.add_edge(l, from, to);
            }
            if case % 3 == 0 {
                for x in 0..n {
                    inst.set_initial_block(x, x % 2);
                }
            }
            cross_check(&inst);
        }
    }

    #[test]
    fn sharded_map_preserves_index_order_and_reuses_scratch() {
        for threads in [1, 2, 3, 8] {
            let got = sharded_map_with(
                100,
                threads,
                || 0usize,
                |seen, i| {
                    *seen += 1; // per-worker scratch: counts this worker's tasks
                    i * i
                },
            );
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "{threads} threads");
        }
        assert_eq!(
            sharded_map_with(0, 4, || (), |(), i| i),
            Vec::<usize>::new()
        );
        assert_eq!(sharded_map_with(1, 4, || (), |(), i| i), vec![0]);
    }

    #[test]
    fn knobs_have_sane_defaults() {
        // Not asserting exact values (the env may set the knobs in CI);
        // both must be usable as-is.
        assert!(default_threads() >= 1);
        let _ = sequential_threshold();
    }
}
