//! Hopcroft's `O(k·n·log n)` DFA state-minimization algorithm (Hopcroft
//! 1971), the technique Section 3 of the paper generalizes to obtain the
//! Kanellakis–Smolka bound for bounded-fanout processes.

use std::collections::VecDeque;

use crate::graph::GraphBuilder;
use crate::ids;
use crate::{Dfa, Partition};

/// Computes the coarsest partition of a complete DFA's states that is
/// consistent with the output classes and stable under every transition
/// function — i.e. the Myhill–Nerode equivalence of its states.
#[must_use]
pub fn minimize(dfa: &Dfa) -> Partition {
    let n = dfa.num_states();
    let k = dfa.num_labels();
    if n == 0 {
        return Partition::from_assignment::<usize>(&[]);
    }

    // Flat CSR predecessor lists per label.
    let mut builder = GraphBuilder::with_edge_capacity(n, k, n * k);
    for s in 0..n {
        for l in 0..k {
            builder.add_edge(l, s, dfa.step(s, l));
        }
    }
    let graph = builder.build();

    // Initial partition by output class — compact u32 block ids over packed
    // state ids, straight from the DFA's own compact class array.
    let (mut block_of, mut blocks) = Partition::from_raw_assignment(dfa.classes());

    // Worklist of (block id, label) pairs.  Starting with every pair is
    // simpler than Hopcroft's "all but the largest" and has the same
    // asymptotic complexity up to a constant.
    let mut worklist: VecDeque<(u32, usize)> = VecDeque::new();
    for b in 0..ids::narrow(blocks.len()) {
        for l in 0..k {
            worklist.push_back((b, l));
        }
    }
    // Epoch-stamped scratch: preimage membership per state, touched marker
    // per block (one epoch per worklist pop).
    let mut marked: Vec<u64> = vec![0; n];
    let mut touched_stamp: Vec<u64> = vec![0; blocks.len()];
    let mut epoch: u64 = 0;

    while let Some((a, l)) = worklist.pop_front() {
        epoch += 1;
        // X = pre_l(A) for the current contents of A.
        let mut touched: Vec<u32> = Vec::new();
        for &y in &blocks[a as usize] {
            for &p in graph.predecessors(l, y.index()) {
                if marked[p.index()] != epoch {
                    marked[p.index()] = epoch;
                    let b = block_of[p.index()];
                    if touched_stamp[b as usize] != epoch {
                        touched_stamp[b as usize] = epoch;
                        touched.push(b);
                    }
                }
            }
        }
        for &d in &touched {
            let (inside, outside): (Vec<crate::ids::StateId>, Vec<crate::ids::StateId>) = blocks
                [d as usize]
                .iter()
                .partition(|&&s| marked[s.index()] == epoch);
            if inside.is_empty() || outside.is_empty() {
                continue;
            }
            let new_id = ids::narrow(blocks.len());
            // Keep the larger part in place; the smaller part gets the new id
            // (so re-processing enqueues the smaller half, Hopcroft's trick —
            // sound here, unlike in the relational case, because the fₗ are
            // functions).
            let (keep, moved) = if inside.len() >= outside.len() {
                (inside, outside)
            } else {
                (outside, inside)
            };
            for &s in &moved {
                block_of[s.index()] = new_id;
            }
            blocks[d as usize] = keep;
            blocks.push(moved);
            touched_stamp.push(0);
            for label in 0..k {
                // If (d, label) is still pending it will be processed with its
                // new (smaller) contents, and we add the new block as well;
                // otherwise adding the smaller of the two halves suffices.
                worklist.push_back((new_id, label));
            }
        }
    }

    Partition::from_assignment(&block_of)
}

/// Builds the minimized DFA: the quotient of `dfa` by [`minimize`], with the
/// block of the original start state as start.
#[must_use]
pub fn minimized_dfa(dfa: &Dfa) -> Dfa {
    let partition = minimize(dfa);
    let num_blocks = partition.num_blocks();
    let mut out = Dfa::new(
        num_blocks,
        dfa.num_labels(),
        partition.block_of(dfa.start()),
    );
    for b in 0..num_blocks {
        let representative = partition.block(b)[0].index();
        out.set_class(b, dfa.class(representative));
        for l in 0..dfa.num_labels() {
            out.set_transition(b, l, partition.block_of(dfa.step(representative, l)));
        }
    }
    out
}

#[cfg(test)]
// Test RNG draws narrow by `as` on purpose; the lint guards library code.
#[allow(clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use crate::{solve, Algorithm};

    /// The classic 6-state example: accepts words over {a,b} ending in `b`,
    /// with redundant states.
    fn redundant_dfa() -> Dfa {
        let mut d = Dfa::new(6, 2, 0);
        // States 0..2 behave like "last was not b", 3..5 like "last was b",
        // with some unreachable/duplicated structure.
        let table = [
            (0, 1, 3),
            (1, 2, 4),
            (2, 0, 5),
            (3, 1, 3),
            (4, 2, 4),
            (5, 0, 5),
        ];
        for (s, on_a, on_b) in table {
            d.set_transition(s, 0, on_a);
            d.set_transition(s, 1, on_b);
        }
        for s in 3..6 {
            d.set_accepting(s, true);
        }
        d
    }

    #[test]
    fn redundant_states_collapse_to_two() {
        let d = redundant_dfa();
        let p = minimize(&d);
        assert_eq!(p.num_blocks(), 2);
        assert!(p.same_block(0, 1));
        assert!(p.same_block(3, 5));
        assert!(!p.same_block(0, 3));
    }

    #[test]
    fn minimization_agrees_with_generalized_partitioning() {
        let d = redundant_dfa();
        let via_hopcroft = minimize(&d);
        let via_pt = solve(&d.to_instance(), Algorithm::PaigeTarjan);
        assert_eq!(via_hopcroft, via_pt);
        let via_naive = solve(&d.to_instance(), Algorithm::Naive);
        assert_eq!(via_hopcroft, via_naive);
    }

    #[test]
    fn minimized_dfa_preserves_language_on_samples() {
        let d = redundant_dfa();
        let m = minimized_dfa(&d);
        assert_eq!(m.num_states(), 2);
        let words: Vec<Vec<usize>> = vec![
            vec![],
            vec![0],
            vec![1],
            vec![0, 1],
            vec![1, 0],
            vec![1, 1, 0, 1],
            vec![0, 0, 1, 0, 0],
        ];
        for w in words {
            assert_eq!(d.accepts(&w), m.accepts(&w), "word {w:?}");
        }
    }

    #[test]
    fn already_minimal_dfa_is_unchanged_in_size() {
        // Parity-of-ones automaton: already minimal with 2 states.
        let mut d = Dfa::new(2, 2, 0);
        d.set_transition(0, 1, 1);
        d.set_transition(1, 1, 0);
        d.set_accepting(0, true);
        assert_eq!(minimize(&d).num_blocks(), 2);
        assert_eq!(minimized_dfa(&d).num_states(), 2);
    }

    #[test]
    fn distinct_classes_never_merge() {
        let mut d = Dfa::new(3, 1, 0);
        d.set_transition(0, 0, 1);
        d.set_transition(1, 0, 2);
        d.set_transition(2, 0, 2);
        d.set_class(0, 7);
        d.set_class(1, 7);
        d.set_class(2, 9);
        let p = minimize(&d);
        assert!(!p.same_block(1, 2));
        assert!(!p.same_block(0, 1)); // 0 reaches class 9 in two steps, 1 in one
    }

    #[test]
    fn random_dfas_match_generalized_partitioning() {
        let mut seed: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..20 {
            let n = 2 + (next() % 12) as usize;
            let k = 1 + (next() % 3) as usize;
            let mut d = Dfa::new(n, k, 0);
            for s in 0..n {
                d.set_accepting(s, next() % 2 == 0);
                for l in 0..k {
                    d.set_transition(s, l, (next() % n as u64) as usize);
                }
            }
            let a = minimize(&d);
            let b = solve(&d.to_instance(), Algorithm::PaigeTarjan);
            assert_eq!(a, b);
        }
    }
}
