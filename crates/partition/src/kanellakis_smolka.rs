//! The Kanellakis–Smolka splitter-worklist algorithm for generalized
//! partitioning.
//!
//! This is the algorithm presented in the PODC 1983 version of the paper (and
//! in Smolka's 1984 dissertation): maintain a worklist of *splitter* blocks;
//! to process a splitter `S` and a relation `fₗ`, compute the preimage
//! `pre_ℓ(S) = {x | fₗ(x) ∩ S ≠ ∅}` and split every block `D` into
//! `D ∩ pre_ℓ(S)` and `D \ pre_ℓ(S)`; whenever a block splits, both halves
//! become splitters again.
//!
//! The worst-case running time is `O(n·m)`; when the fan-out of every
//! element is bounded by a constant `c` the original paper sharpens this to
//! `O(c²·n·log n)` by always processing the smaller half.  The
//! [`paige_tarjan`](crate::paige_tarjan) module removes the bounded-fanout
//! assumption.

use crate::{Instance, Partition};

/// Runs the splitter-worklist algorithm and returns the coarsest consistent
/// stable partition.
#[must_use]
pub fn refine(instance: &Instance) -> Partition {
    let n = instance.num_elements();
    if n == 0 {
        return Partition::from_assignment(&[]);
    }

    // Live partition state.
    let mut block_of: Vec<usize> = vec![0; n];
    let mut blocks: Vec<Vec<usize>> = Vec::new();
    {
        let mut remap = std::collections::HashMap::new();
        for (x, &raw) in instance.initial_blocks().iter().enumerate() {
            let fresh = remap.len();
            let id = *remap.entry(raw).or_insert(fresh);
            if id == blocks.len() {
                blocks.push(Vec::new());
            }
            block_of[x] = id;
            blocks[id].push(x);
        }
    }

    // Worklist of splitter block ids (content is read at pop time).
    let mut worklist: Vec<usize> = (0..blocks.len()).collect();
    let mut on_worklist = vec![true; blocks.len()];

    // Scratch: for each element, whether it is in the current preimage.
    let mut marked = vec![false; n];

    while let Some(splitter) = worklist.pop() {
        on_worklist[splitter] = false;
        // Snapshot the splitter contents: subsequent splits may move elements
        // out of `blocks[splitter]`, but every moved element ends up in a
        // block that is itself (re-)enqueued, so using the snapshot is sound.
        let splitter_elems = blocks[splitter].clone();
        for label in 0..instance.num_labels() {
            // pre_ℓ(splitter)
            let mut touched_blocks: Vec<usize> = Vec::new();
            let mut pre: Vec<usize> = Vec::new();
            for &y in &splitter_elems {
                for &x in instance.predecessors(label, y) {
                    if !marked[x] {
                        marked[x] = true;
                        pre.push(x);
                        let b = block_of[x];
                        if !touched_blocks.contains(&b) {
                            touched_blocks.push(b);
                        }
                    }
                }
            }
            // Split every touched block D into D ∩ pre and D \ pre.
            for &d in &touched_blocks {
                let (inside, outside): (Vec<usize>, Vec<usize>) =
                    blocks[d].iter().partition(|&&x| marked[x]);
                if inside.is_empty() || outside.is_empty() {
                    continue;
                }
                // Keep the inside part in `d`, move the outside part to a new block.
                let new_id = blocks.len();
                for &x in &outside {
                    block_of[x] = new_id;
                }
                blocks[d] = inside;
                blocks.push(outside);
                on_worklist.push(false);
                // Re-enqueue both halves (simple, correct; the smaller-half
                // refinement is what Paige–Tarjan formalises).
                for id in [d, new_id] {
                    if !on_worklist[id] {
                        on_worklist[id] = true;
                        worklist.push(id);
                    }
                }
            }
            for &x in &pre {
                marked[x] = false;
            }
        }
    }

    Partition::from_assignment(&block_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    #[test]
    fn empty_instance() {
        let inst = Instance::new(0, 2);
        assert_eq!(refine(&inst).num_elements(), 0);
    }

    #[test]
    fn chain_matches_naive() {
        let mut inst = Instance::new(6, 1);
        for i in 0..5 {
            inst.add_edge(0, i, i + 1);
        }
        assert_eq!(refine(&inst), naive::refine(&inst));
        assert_eq!(refine(&inst).num_blocks(), 6);
    }

    #[test]
    fn respects_initial_partition() {
        let mut inst = Instance::new(4, 1);
        inst.add_edge(0, 0, 1);
        inst.add_edge(0, 2, 3);
        inst.set_initial_block(1, 1);
        // 1 and 3 would be equivalent (both dead) but start in different blocks.
        let p = refine(&inst);
        assert!(!p.same_block(1, 3));
        assert!(!p.same_block(0, 2));
        assert!(inst.is_consistent_stable(&p));
    }

    #[test]
    fn two_cycles_collapse() {
        let mut inst = Instance::new(4, 1);
        inst.add_edge(0, 0, 1);
        inst.add_edge(0, 1, 0);
        inst.add_edge(0, 2, 3);
        inst.add_edge(0, 3, 2);
        assert_eq!(refine(&inst).num_blocks(), 1);
    }

    #[test]
    fn multi_label_branching() {
        // 0 -a-> 1, 0 -b-> 2, 3 -a-> 1 (no b): 0 and 3 must be separated.
        let mut inst = Instance::new(4, 2);
        inst.add_edge(0, 0, 1);
        inst.add_edge(1, 0, 2);
        inst.add_edge(0, 3, 1);
        let p = refine(&inst);
        assert!(!p.same_block(0, 3));
        assert!(p.same_block(1, 2));
        assert_eq!(p, naive::refine(&inst));
    }

    #[test]
    fn result_is_stable() {
        let mut inst = Instance::new(7, 2);
        inst.add_edge(0, 0, 1);
        inst.add_edge(0, 1, 2);
        inst.add_edge(0, 2, 0);
        inst.add_edge(1, 3, 4);
        inst.add_edge(1, 4, 5);
        inst.add_edge(0, 5, 6);
        inst.add_edge(1, 6, 3);
        let p = refine(&inst);
        assert!(inst.is_consistent_stable(&p));
        assert_eq!(p, naive::refine(&inst));
    }
}
