//! The Kanellakis–Smolka splitter-worklist algorithm for generalized
//! partitioning, in both of the paper's variants.
//!
//! The PODC 1983 paper (and Smolka's 1984 dissertation) presents the
//! splitter-worklist scheme: maintain a worklist of *splitter* blocks; to
//! process a splitter `S` and a relation `fₗ`, compute the preimage
//! `pre_ℓ(S) = {x | fₗ(x) ∩ S ≠ ∅}` and split every block `D` into
//! `D ∩ pre_ℓ(S)` and `D \ pre_ℓ(S)`.  Re-enqueueing both halves of every
//! split gives the `O(n·m)` worst case — that version is kept here as
//! [`refine_both_halves`], the measured baseline of the `partition_core`
//! bench.
//!
//! # The smaller-half argument (Section 3 of the paper)
//!
//! [`refine`] implements the sharpened algorithm behind the paper's
//! `O(c²·n·log n)` bound for transition fan-out bounded by `c`, which adapts
//! Hopcroft's "process the smaller half" to set-valued functions.  Plainly
//! enqueueing only the smaller half of a two-way split is *unsound* for
//! relations: an element can reach both halves of an old splitter, so
//! stability with respect to `D` and `D₁ ⊆ D` does not imply stability with
//! respect to `D \ D₁` (that implication only holds in the deterministic
//! case, which is why [`hopcroft`](crate::hopcroft) may use the plain rule).
//! The fix is to keep split siblings together in a pending *splitter group*
//! and, when a group is popped, extract only its smaller fragment `B` as the
//! active splitter, splitting every block three ways in a single pass:
//!
//! 1. elements with `fₗ`-successors in `B` only,
//! 2. elements with successors in both `B` and the still-pending co-fragment
//!    `S \ B`,
//! 3. elements with successors in `S \ B` only (or none) — never touched.
//!
//! Whether a predecessor of `B` also reaches `S \ B` is decided by scanning
//! its at most `c` successors — never by scanning `S \ B` itself.  Every
//! element therefore lands in an extracted smaller fragment `O(log n)`
//! times; each landing is charged `O(c)` incoming edges, each doing an
//! `O(c)` successor scan, giving the paper's `O(c²·n·log n)` total (and a
//! sound `O(c·m·log n)` in general).  Paige–Tarjan (1987) later removed the
//! bounded-fanout assumption by replacing the successor scan with edge
//! counters — see [`paige_tarjan`](crate::paige_tarjan).
//!
//! Both variants replace the former linear `touched_blocks.contains` scan
//! per preimage edge with epoch-stamped markers: scratch arrays stamped with
//! a per-(splitter, label) epoch make the duplicate checks `O(1)`.

use std::collections::HashMap;

use crate::graph::LabeledGraph;
use crate::ids::{self, StateId};
use crate::{Instance, Partition};

/// The initial fine partition shared by [`refine`] and the sharded
/// [`par`](crate::par) engine: the instance's initial partition refined by
/// the per-label "has at least one successor" signature, so the seed is
/// stable with respect to the single initial splitter group (the whole set).
///
/// Returns the live `(block_of, blocks)` state the worklist loop then
/// refines, in the compact 32-bit layout the loops keep hot.  Both engines
/// must start from this exact seed — it is part of the determinism contract
/// checked by `tests/parallel_determinism.rs`.
pub(crate) fn initial_fine_partition(
    instance: &Instance,
    graph: &LabeledGraph,
) -> (Vec<u32>, Vec<Vec<StateId>>) {
    let n = instance.num_elements();
    let num_labels = instance.num_labels();
    let mut block_of: Vec<u32> = vec![0; n];
    let mut blocks: Vec<Vec<StateId>> = Vec::new();
    let mut sig_to_block: HashMap<(u32, Vec<bool>), u32> = HashMap::new();
    for (x, block) in block_of.iter_mut().enumerate() {
        let sig: Vec<bool> = (0..num_labels)
            .map(|l| !graph.successors(l, x).is_empty())
            .collect();
        let key = (instance.initial_blocks()[x], sig);
        let fresh = ids::narrow(sig_to_block.len());
        let id = *sig_to_block.entry(key).or_insert(fresh);
        if id as usize == blocks.len() {
            blocks.push(Vec::new());
        }
        *block = id;
        blocks[id as usize].push(StateId::from_index(x));
    }
    (block_of, blocks)
}

/// Runs the smaller-half splitter-worklist algorithm and returns the
/// coarsest consistent stable partition.
///
/// Only the smaller fragment of a pending splitter group is ever extracted
/// and scanned; its co-fragment stays queued in the group, and membership in
/// it is decided by fan-out-bounded successor scans (see the module docs for
/// the paper's Section 3 complexity argument).
#[must_use]
pub fn refine(instance: &Instance) -> Partition {
    let n = instance.num_elements();
    if n == 0 {
        return Partition::from_assignment::<usize>(&[]);
    }
    let num_labels = instance.num_labels();
    // Hoist the CSR view out of the hot loops: querying through `Instance`
    // would repeat the lazy-init check on every adjacency lookup.
    let graph = instance.graph();

    // --- Fine partition: the shared per-label "has a successor" seed.
    // Elements are packed `StateId`s and block/group ids raw `u32`s
    // throughout the loop — only the epoch stamps stay 64-bit.
    let (mut block_of, mut blocks) = initial_fine_partition(instance, graph);

    // --- Splitter groups: unions of blocks (split siblings stay together).
    // Invariant: the partition is stable with respect to every group; a
    // compound group (≥ 2 blocks) is pending splitter work.
    let mut group_of: Vec<u32> = vec![0; blocks.len()];
    let mut groups: Vec<Vec<u32>> = vec![(0..ids::narrow(blocks.len())).collect()];
    let mut worklist: Vec<u32> = Vec::new();
    let mut on_worklist: Vec<bool> = vec![false];
    if groups[0].len() >= 2 {
        worklist.push(0);
        on_worklist[0] = true;
    }

    // --- Epoch-stamped scratch (one epoch per (splitter, label) round):
    // per-element preimage class and per-block touched marker.
    let mut elem_stamp: Vec<u64> = vec![0; n];
    let mut elem_in_rest: Vec<bool> = vec![false; n];
    let mut touched_stamp: Vec<u64> = vec![0; blocks.len()];
    let mut epoch: u64 = 0;

    while let Some(s) = worklist.pop() {
        on_worklist[s as usize] = false;
        if groups[s as usize].len() < 2 {
            continue;
        }
        // Extract the smaller of the group's first two blocks as the active
        // splitter B; the co-fragment (the rest of the group) remains
        // pending, so |B| ≤ |group|/2 — the smaller half.
        let (pos, b) = {
            let b0 = groups[s as usize][0];
            let b1 = groups[s as usize][1];
            if blocks[b0 as usize].len() <= blocks[b1 as usize].len() {
                (0, b0)
            } else {
                (1, b1)
            }
        };
        groups[s as usize].swap_remove(pos);
        let own_group = ids::narrow(groups.len());
        groups.push(vec![b]);
        on_worklist.push(false);
        group_of[b as usize] = own_group;
        if groups[s as usize].len() >= 2 {
            on_worklist[s as usize] = true;
            worklist.push(s);
        }

        // Snapshot: splits below may refine B itself; its fragments all stay
        // in `own_group`, which is re-enqueued when it turns compound.
        let splitter_elems = blocks[b as usize].clone();
        for label in 0..num_labels {
            epoch += 1;
            // Classify every predecessor x of B: does x also reach the
            // co-fragment S \ B?  Decided by scanning x's ≤ c successors —
            // the co-fragment itself is never scanned.
            let mut touched: Vec<u32> = Vec::new();
            for &y in &splitter_elems {
                for &x in graph.predecessors(label, y.index()) {
                    if elem_stamp[x.index()] == epoch {
                        continue;
                    }
                    elem_stamp[x.index()] = epoch;
                    elem_in_rest[x.index()] = graph
                        .successors(label, x.index())
                        .iter()
                        .any(|&z| group_of[block_of[z.index()] as usize] == s);
                    let d = block_of[x.index()];
                    if touched_stamp[d as usize] != epoch {
                        touched_stamp[d as usize] = epoch;
                        touched.push(d);
                    }
                }
            }
            // Three-way split of every touched block.
            for &d in &touched {
                let mut only_b: Vec<StateId> = Vec::new();
                let mut both: Vec<StateId> = Vec::new();
                let mut rest: Vec<StateId> = Vec::new();
                for &x in &blocks[d as usize] {
                    if elem_stamp[x.index()] != epoch {
                        rest.push(x);
                    } else if elem_in_rest[x.index()] {
                        both.push(x);
                    } else {
                        only_b.push(x);
                    }
                }
                let mut parts: Vec<Vec<StateId>> = [only_b, both, rest]
                    .into_iter()
                    .filter(|p| !p.is_empty())
                    .collect();
                if parts.len() < 2 {
                    continue;
                }
                // The first part keeps the old id; the remaining fragments
                // get fresh ids in the same group as their sibling.
                let home = group_of[d as usize];
                blocks[d as usize] = parts.remove(0);
                for part in parts {
                    let new_id = ids::narrow(blocks.len());
                    for &x in &part {
                        block_of[x.index()] = new_id;
                    }
                    blocks.push(part);
                    group_of.push(home);
                    touched_stamp.push(0);
                    groups[home as usize].push(new_id);
                }
                // The group that gained fragments is compound again.
                if !on_worklist[home as usize] {
                    on_worklist[home as usize] = true;
                    worklist.push(home);
                }
            }
        }
    }

    Partition::from_assignment(&block_of)
}

/// Runs the plain both-halves splitter-worklist algorithm (`O(n·m)` worst
/// case) and returns the coarsest consistent stable partition.
///
/// Every split re-enqueues both halves.  This is the paper's baseline
/// formulation, kept as a measured reference point for [`refine`]; the
/// `partition_core` bench and the `report` binary compare the two head to
/// head.
#[must_use]
pub fn refine_both_halves(instance: &Instance) -> Partition {
    let n = instance.num_elements();
    if n == 0 {
        return Partition::from_assignment::<usize>(&[]);
    }
    let graph = instance.graph();

    // Live partition state, seeded from the raw initial assignment —
    // compact ids throughout, as in `refine`.
    let (mut block_of, mut blocks) = Partition::from_raw_assignment(instance.initial_blocks());

    // Worklist of splitter block ids (content is read at pop time).
    let mut worklist: Vec<u32> = (0..ids::narrow(blocks.len())).collect();
    let mut on_worklist = vec![true; blocks.len()];

    // Epoch-stamped scratch: preimage membership per element, touched marker
    // per block (one epoch per (splitter, label) round).
    let mut marked: Vec<u64> = vec![0; n];
    let mut touched_stamp: Vec<u64> = vec![0; blocks.len()];
    let mut epoch: u64 = 0;

    while let Some(splitter) = worklist.pop() {
        on_worklist[splitter as usize] = false;
        // Snapshot the splitter contents: subsequent splits may move elements
        // out of `blocks[splitter]`, but every moved element ends up in a
        // block that is itself (re-)enqueued, so using the snapshot is sound.
        let splitter_elems = blocks[splitter as usize].clone();
        for label in 0..instance.num_labels() {
            epoch += 1;
            // pre_ℓ(splitter)
            let mut touched_blocks: Vec<u32> = Vec::new();
            for &y in &splitter_elems {
                for &x in graph.predecessors(label, y.index()) {
                    if marked[x.index()] != epoch {
                        marked[x.index()] = epoch;
                        let d = block_of[x.index()];
                        if touched_stamp[d as usize] != epoch {
                            touched_stamp[d as usize] = epoch;
                            touched_blocks.push(d);
                        }
                    }
                }
            }
            // Split every touched block D into D ∩ pre and D \ pre.
            for &d in &touched_blocks {
                let (inside, outside): (Vec<StateId>, Vec<StateId>) = blocks[d as usize]
                    .iter()
                    .partition(|&&x| marked[x.index()] == epoch);
                if inside.is_empty() || outside.is_empty() {
                    continue;
                }
                // Keep the inside part in `d`, move the outside part to a new block.
                let new_id = ids::narrow(blocks.len());
                for &x in &outside {
                    block_of[x.index()] = new_id;
                }
                blocks[d as usize] = inside;
                blocks.push(outside);
                on_worklist.push(false);
                touched_stamp.push(0);
                // Re-enqueue both halves — the simple, always-sound rule;
                // `refine` is the smaller-half upgrade.
                for id in [d, new_id] {
                    if !on_worklist[id as usize] {
                        on_worklist[id as usize] = true;
                        worklist.push(id);
                    }
                }
            }
        }
    }

    Partition::from_assignment(&block_of)
}

#[cfg(test)]
// Test RNG draws narrow by `as` on purpose; the lint guards library code.
#[allow(clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use crate::naive;

    /// Runs both variants, checks they agree with each other and with the
    /// naive method, and returns the partition.
    fn cross_check(inst: &Instance) -> Partition {
        let smaller = refine(inst);
        let both = refine_both_halves(inst);
        assert_eq!(smaller, both, "smaller-half vs both-halves");
        assert_eq!(smaller, naive::refine(inst), "kanellakis-smolka vs naive");
        assert!(inst.is_consistent_stable(&smaller));
        smaller
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(0, 2);
        assert_eq!(refine(&inst).num_elements(), 0);
        assert_eq!(refine_both_halves(&inst).num_elements(), 0);
    }

    #[test]
    fn chain_matches_naive() {
        let mut inst = Instance::new(6, 1);
        for i in 0..5 {
            inst.add_edge(0, i, i + 1);
        }
        assert_eq!(cross_check(&inst).num_blocks(), 6);
    }

    #[test]
    fn respects_initial_partition() {
        let mut inst = Instance::new(4, 1);
        inst.add_edge(0, 0, 1);
        inst.add_edge(0, 2, 3);
        inst.set_initial_block(1, 1);
        // 1 and 3 would be equivalent (both dead) but start in different blocks.
        let p = cross_check(&inst);
        assert!(!p.same_block(1, 3));
        assert!(!p.same_block(0, 2));
    }

    #[test]
    fn two_cycles_collapse() {
        let mut inst = Instance::new(4, 1);
        inst.add_edge(0, 0, 1);
        inst.add_edge(0, 1, 0);
        inst.add_edge(0, 2, 3);
        inst.add_edge(0, 3, 2);
        assert_eq!(cross_check(&inst).num_blocks(), 1);
    }

    #[test]
    fn multi_label_branching() {
        // 0 -a-> 1, 0 -b-> 2, 3 -a-> 1 (no b): 0 and 3 must be separated.
        let mut inst = Instance::new(4, 2);
        inst.add_edge(0, 0, 1);
        inst.add_edge(1, 0, 2);
        inst.add_edge(0, 3, 1);
        let p = cross_check(&inst);
        assert!(!p.same_block(0, 3));
        assert!(p.same_block(1, 2));
    }

    #[test]
    fn elements_reaching_both_halves_are_handled() {
        // The instance family the plain smaller-half rule gets wrong: 0 has
        // successors in both halves {2} and {3} of an old splitter, 1 only in
        // one — the three-way split must separate them.
        let mut inst = Instance::new(5, 1);
        inst.add_edge(0, 0, 2);
        inst.add_edge(0, 0, 3);
        inst.add_edge(0, 1, 2);
        inst.add_edge(0, 2, 4);
        inst.add_edge(0, 4, 2);
        let p = cross_check(&inst);
        assert!(!p.same_block(0, 1));
    }

    #[test]
    fn result_is_stable() {
        let mut inst = Instance::new(7, 2);
        inst.add_edge(0, 0, 1);
        inst.add_edge(0, 1, 2);
        inst.add_edge(0, 2, 0);
        inst.add_edge(1, 3, 4);
        inst.add_edge(1, 4, 5);
        inst.add_edge(0, 5, 6);
        inst.add_edge(1, 6, 3);
        let p = cross_check(&inst);
        assert!(inst.is_consistent_stable(&p));
    }

    #[test]
    fn random_instances_agree_across_variants() {
        let mut seed: u64 = 0x853C_49E6_748F_EA9B;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..40 {
            let n = 2 + (next() % 16) as usize;
            let labels = 1 + (next() % 3) as usize;
            let edges = (next() % (4 * n as u64)) as usize;
            let mut inst = Instance::new(n, labels);
            for _ in 0..edges {
                let l = (next() % labels as u64) as usize;
                let from = (next() % n as u64) as usize;
                let to = (next() % n as u64) as usize;
                inst.add_edge(l, from, to);
            }
            if case % 3 == 0 {
                for x in 0..n {
                    inst.set_initial_block(x, x % 2);
                }
            }
            cross_check(&inst);
        }
    }
}
