//! Complete deterministic finite automata, the deterministic special case of
//! Section 3 (`fₗ : S → S`, `m = k·n`).

use std::fmt;

use crate::ids::StateId;

/// A complete DFA over the label alphabet `0..num_labels`, with an arbitrary
/// output class per state.
///
/// The classical accepting/non-accepting dichotomy corresponds to classes `1`
/// and `0`; the more general per-state class plays the role of the extension
/// set of an FSP and seeds the initial partition of minimization.
///
/// The transition table is stored flat and compact — one packed [`StateId`]
/// per `(state, label)` slot in row-major order, plus a `u32` class per
/// state — so a complete DFA costs `4·(k+1)` bytes per state with no
/// per-state heap allocation.  This matters because the determinization
/// layer of `ccs-equiv` materializes subset automata as [`Dfa`]s whose state
/// counts are exponential in the process size.
#[derive(Clone, PartialEq, Eq)]
pub struct Dfa {
    num_labels: usize,
    start: usize,
    /// `delta[state·num_labels + label]` — the unique successor.
    delta: Vec<StateId>,
    /// Output class per state.
    class: Vec<u32>,
}

impl Dfa {
    /// Creates a DFA with `num_states` states and `num_labels` labels, all
    /// transitions initially self-loops and all classes `0`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= num_states`, `num_states == 0`, or the state
    /// count exceeds the packed 32-bit id range.
    #[must_use]
    pub fn new(num_states: usize, num_labels: usize, start: usize) -> Self {
        assert!(num_states > 0, "a DFA needs at least one state");
        assert!(start < num_states, "start state out of range");
        let mut delta = Vec::with_capacity(num_states * num_labels);
        for s in 0..num_states {
            let id = StateId::from_index(s);
            delta.extend(std::iter::repeat(id).take(num_labels));
        }
        Dfa {
            num_labels,
            start,
            delta,
            class: vec![0; num_states],
        }
    }

    /// Number of states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.class.len()
    }

    /// Number of labels.
    #[must_use]
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// The start state.
    #[must_use]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Sets `δ(state, label) = target`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn set_transition(&mut self, state: usize, label: usize, target: usize) {
        assert!(label < self.num_labels, "label out of range");
        assert!(target < self.num_states(), "target out of range");
        assert!(state < self.num_states(), "state out of range");
        self.delta[state * self.num_labels + label] = StateId::from_index(target);
    }

    /// Sets the output class of a state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range or `class` exceeds `u32::MAX`
    /// (classes are stored compactly alongside the packed state ids).
    pub fn set_class(&mut self, state: usize, class: usize) {
        self.class[state] =
            u32::try_from(class).expect("output class exceeds the 32-bit class range");
    }

    /// Marks a state as accepting (class `1`) or non-accepting (class `0`).
    pub fn set_accepting(&mut self, state: usize, accepting: bool) {
        self.set_class(state, usize::from(accepting));
    }

    /// Replaces every state's output class in one call, keeping the
    /// transition structure.  This is the level-sweep path of the `ccs-equiv`
    /// k-observational engine: the subset arena's transition table is
    /// level-independent, so each `≈ₖ₊₁` refinement re-seeds the same [`Dfa`]
    /// with the next level's signature classes instead of rebuilding it.
    ///
    /// # Panics
    ///
    /// Panics if `classes.len() != num_states`.
    pub fn set_classes(&mut self, classes: &[u32]) {
        assert_eq!(
            classes.len(),
            self.num_states(),
            "one output class per state"
        );
        self.class.clear();
        self.class.extend_from_slice(classes);
    }

    /// The unique successor `δ(state, label)`.
    #[must_use]
    pub fn step(&self, state: usize, label: usize) -> usize {
        assert!(label < self.num_labels, "label out of range");
        self.delta[state * self.num_labels + label].index()
    }

    /// The output class of a state.
    #[must_use]
    pub fn class(&self, state: usize) -> usize {
        self.class[state] as usize
    }

    /// The output classes of all states, indexed by state, as compact
    /// 32-bit ids.
    #[must_use]
    pub fn classes(&self) -> &[u32] {
        &self.class
    }

    /// Adopts the dense transition table of a fully-explored subset
    /// automaton (or any complete deterministic table): `delta[s·k + l]` is
    /// the successor of state `s` under label `l`, and `classes[s]` its
    /// output class — both already compact `u32`s, which is exactly what the
    /// determinization layer produces.  The number of states is
    /// `classes.len()`.
    ///
    /// This is the bridge the `ccs-equiv` determinization layer uses to hand
    /// its interned subset arena to the partition-refinement solvers: the
    /// arena's per-subset annotations (acceptance, trace non-emptiness,
    /// refusal-antichain identity) become multi-class outputs, and one
    /// refinement of the resulting DFA classifies every subset at once.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty, if `delta.len() != classes.len() ×
    /// num_labels`, if `start` or any transition target is out of range.
    #[must_use]
    pub fn from_subset_automaton(
        num_labels: usize,
        start: usize,
        delta: &[u32],
        classes: &[u32],
    ) -> Self {
        let n = classes.len();
        assert!(n > 0, "a DFA needs at least one state");
        assert!(start < n, "start state out of range");
        assert_eq!(
            delta.len(),
            n * num_labels,
            "transition table must be dense (num_states × num_labels)"
        );
        let packed: Vec<StateId> = delta
            .iter()
            .map(|&t| {
                assert!((t as usize) < n, "target out of range");
                StateId::from_index(t as usize)
            })
            .collect();
        Dfa {
            num_labels,
            start,
            delta: packed,
            class: classes.to_vec(),
        }
    }

    /// Returns `true` iff the state's class is non-zero.
    #[must_use]
    pub fn is_accepting(&self, state: usize) -> bool {
        self.class[state] != 0
    }

    /// Runs the DFA on a word (sequence of labels) from the start state and
    /// returns the final state.
    #[must_use]
    pub fn run(&self, word: &[usize]) -> usize {
        word.iter().fold(self.start, |s, &l| self.step(s, l))
    }

    /// Returns `true` iff the DFA accepts `word` (final state has non-zero
    /// class).
    #[must_use]
    pub fn accepts(&self, word: &[usize]) -> bool {
        self.is_accepting(self.run(word))
    }

    /// Heap bytes held by the DFA (transition table and class array),
    /// measured from live container capacities.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.delta.capacity() * size_of::<StateId>() + self.class.capacity() * size_of::<u32>()
    }

    /// Converts the DFA into a generalized-partitioning
    /// [`Instance`](crate::Instance)
    /// (Section 3's deterministic case), seeding the initial partition with
    /// the output classes.
    #[must_use]
    pub fn to_instance(&self) -> crate::Instance {
        let mut inst = crate::Instance::new(self.num_states(), self.num_labels);
        inst.reserve_edges(self.num_states() * self.num_labels);
        for s in 0..self.num_states() {
            inst.set_initial_block(s, self.class[s] as usize);
            for l in 0..self.num_labels {
                inst.add_edge(l, s, self.step(s, l));
            }
        }
        inst
    }
}

impl fmt::Debug for Dfa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Dfa")
            .field("states", &self.num_states())
            .field("labels", &self.num_labels)
            .field("start", &self.start)
            .field("classes", &self.class)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A DFA over {0,1} accepting words with an even number of 1s.
    pub(crate) fn even_ones() -> Dfa {
        let mut d = Dfa::new(2, 2, 0);
        d.set_transition(0, 0, 0);
        d.set_transition(0, 1, 1);
        d.set_transition(1, 0, 1);
        d.set_transition(1, 1, 0);
        d.set_accepting(0, true);
        d
    }

    #[test]
    fn construction_and_stepping() {
        let d = even_ones();
        assert_eq!(d.num_states(), 2);
        assert_eq!(d.num_labels(), 2);
        assert_eq!(d.start(), 0);
        assert_eq!(d.step(0, 1), 1);
        assert_eq!(d.run(&[1, 1, 0]), 0);
        assert!(d.accepts(&[]));
        assert!(d.accepts(&[1, 0, 1]));
        assert!(!d.accepts(&[1]));
        assert!(d.is_accepting(0));
        assert!(!d.is_accepting(1));
        assert_eq!(d.class(0), 1);
    }

    #[test]
    #[should_panic(expected = "start state out of range")]
    fn invalid_start_panics() {
        let _ = Dfa::new(2, 1, 5);
    }

    #[test]
    #[should_panic(expected = "target out of range")]
    fn invalid_target_panics() {
        let mut d = Dfa::new(2, 1, 0);
        d.set_transition(0, 0, 7);
    }

    #[test]
    fn from_subset_automaton_round_trips() {
        let d = even_ones();
        let delta: Vec<u32> = (0..d.num_states())
            .flat_map(|s| (0..d.num_labels()).map(move |l| (s, l)))
            .map(|(s, l)| u32::try_from(d.step(s, l)).unwrap())
            .collect();
        let rebuilt = Dfa::from_subset_automaton(d.num_labels(), d.start(), &delta, d.classes());
        assert_eq!(rebuilt, d);
        assert_eq!(rebuilt.classes(), &[1, 0]);
    }

    #[test]
    #[should_panic(expected = "must be dense")]
    fn from_subset_automaton_rejects_ragged_tables() {
        let _ = Dfa::from_subset_automaton(2, 0, &[0, 1, 1], &[0, 1]);
    }

    #[test]
    fn set_classes_reseeds_without_touching_transitions() {
        let mut d = even_ones();
        d.set_classes(&[3, 7]);
        assert_eq!(d.classes(), &[3, 7]);
        assert_eq!(d.class(1), 7);
        assert_eq!(d.step(0, 1), 1); // transitions untouched
        assert_eq!(d.to_instance().initial_blocks(), &[3, 7]);
    }

    #[test]
    #[should_panic(expected = "one output class per state")]
    fn set_classes_rejects_wrong_arity() {
        even_ones().set_classes(&[1]);
    }

    #[test]
    fn transition_table_is_flat_and_compact() {
        // 3 states × 2 labels: 6 packed targets + 3 class words, all 4-byte.
        let d = Dfa::new(3, 2, 0);
        assert!(d.resident_bytes() >= (6 + 3) * 4);
        assert_eq!(d.step(2, 1), 2); // self-loop init survives the flat layout
    }

    #[test]
    fn instance_conversion_counts_edges() {
        let d = even_ones();
        let inst = d.to_instance();
        assert_eq!(inst.num_elements(), 2);
        assert_eq!(inst.num_edges(), 4);
        assert_eq!(inst.initial_blocks(), &[1, 0]);
    }
}
