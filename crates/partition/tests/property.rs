//! Property-based tests for the generalized-partitioning solvers: on
//! arbitrary instances all three algorithms agree, the result is stable and
//! consistent, and it is coarser than any stable refinement we can exhibit.

use ccs_partition::{solve, Algorithm, Instance, Partition};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RawInstance {
    n: usize,
    labels: usize,
    edges: Vec<(usize, usize, usize)>,
    initial: Vec<usize>,
}

fn instance_strategy() -> impl Strategy<Value = RawInstance> {
    (1usize..12, 1usize..3).prop_flat_map(|(n, labels)| {
        let edges = proptest::collection::vec((0..labels, 0..n, 0..n), 0..30);
        let initial = proptest::collection::vec(0usize..3, n);
        (Just(n), Just(labels), edges, initial).prop_map(|(n, labels, edges, initial)| {
            RawInstance {
                n,
                labels,
                edges,
                initial,
            }
        })
    })
}

fn build(raw: &RawInstance) -> Instance {
    let mut inst = Instance::new(raw.n, raw.labels);
    for (i, &b) in raw.initial.iter().enumerate() {
        inst.set_initial_block(i, b);
    }
    for &(l, from, to) in &raw.edges {
        inst.add_edge(l, from, to);
    }
    inst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_algorithms_agree(raw in instance_strategy()) {
        let inst = build(&raw);
        let naive = solve(&inst, Algorithm::Naive);
        let ks = solve(&inst, Algorithm::KanellakisSmolka);
        let pt = solve(&inst, Algorithm::PaigeTarjan);
        prop_assert_eq!(&naive, &ks);
        prop_assert_eq!(&naive, &pt);
    }

    #[test]
    fn result_is_consistent_and_stable(raw in instance_strategy()) {
        let inst = build(&raw);
        let p = solve(&inst, Algorithm::PaigeTarjan);
        prop_assert!(inst.is_consistent_stable(&p));
        // The result refines the initial partition…
        let initial = Partition::from_assignment(inst.initial_blocks());
        prop_assert!(p.refines(&initial));
        // …and the discrete partition refines it.
        prop_assert!(Partition::discrete(raw.n).refines(&p));
    }

    #[test]
    fn coarser_than_the_discrete_stable_partition(raw in instance_strategy()) {
        // The discrete partition is always stable and consistent, so the
        // coarsest one must have at most as many blocks.
        let inst = build(&raw);
        let p = solve(&inst, Algorithm::PaigeTarjan);
        prop_assert!(p.num_blocks() <= raw.n);
        prop_assert_eq!(p.num_elements(), raw.n);
    }

    #[test]
    fn merging_equivalent_elements_preserves_stability(raw in instance_strategy()) {
        // Identical copies of the same structure collapse: duplicate every
        // element's edges onto a shadow copy and check the shadow lands in the
        // same block as the original.
        let mut doubled = Instance::new(2 * raw.n, raw.labels);
        for (i, &b) in raw.initial.iter().enumerate() {
            doubled.set_initial_block(i, b);
            doubled.set_initial_block(i + raw.n, b);
        }
        for &(l, from, to) in &raw.edges {
            doubled.add_edge(l, from, to);
            doubled.add_edge(l, from + raw.n, to + raw.n);
        }
        let p = solve(&doubled, Algorithm::PaigeTarjan);
        for i in 0..raw.n {
            prop_assert!(p.same_block(i, i + raw.n), "element {} and its copy diverged", i);
        }
    }
}
