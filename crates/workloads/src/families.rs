//! Deterministic structured process families with known equivalence
//! structure.

use ccs_fsp::{Fsp, Label};

/// An `a`-labelled chain of `n` states (all accepting); state `i` is the
/// start.  Every state is in its own strong-equivalence class.
#[must_use]
pub fn chain(n: usize, action: &str) -> Fsp {
    assert!(n > 0, "a chain needs at least one state");
    let mut b = Fsp::builder(&format!("chain-{n}"));
    let states: Vec<_> = (0..n).map(|i| b.state(&format!("s{i}"))).collect();
    let a = b.action(action);
    for w in states.windows(2) {
        b.add_transition(w[0], Label::Act(a), w[1]);
    }
    b.set_start(states[0]);
    b.mark_all_accepting();
    b.build().expect("chain is non-empty")
}

/// An `a`-labelled cycle of `n` states (all accepting).  All states are
/// strongly equivalent, so the whole family collapses to a single class —
/// the best case for partition refinement.
#[must_use]
pub fn cycle(n: usize, action: &str) -> Fsp {
    assert!(n > 0, "a cycle needs at least one state");
    let mut b = Fsp::builder(&format!("cycle-{n}"));
    let states: Vec<_> = (0..n).map(|i| b.state(&format!("s{i}"))).collect();
    let a = b.action(action);
    for i in 0..n {
        b.add_transition(states[i], Label::Act(a), states[(i + 1) % n]);
    }
    b.set_start(states[0]);
    b.mark_all_accepting();
    b.build().expect("cycle is non-empty")
}

/// A τ-chain of `n` states ending in a single `a`-transition: weakly
/// equivalent to the two-state process `a`, but with a long unobservable
/// prefix.  Stresses the saturation step of Theorem 4.1(a).
#[must_use]
pub fn tau_chain(n: usize) -> Fsp {
    assert!(n > 0, "a tau chain needs at least one state");
    let mut b = Fsp::builder(&format!("tau-chain-{n}"));
    let states: Vec<_> = (0..=n).map(|i| b.state(&format!("s{i}"))).collect();
    for w in states.windows(2) {
        b.add_transition(w[0], Label::Tau, w[1]);
    }
    let end = b.state("end");
    let a = b.action("a");
    b.add_transition(states[n], Label::Act(a), end);
    b.set_start(states[0]);
    b.mark_all_accepting();
    b.build().expect("tau chain is non-empty")
}

/// A complete binary tree of the given depth over actions `l` and `r`
/// (restricted model).  Finite trees are the class for which failure
/// equivalence is polynomial (Section 5).
#[must_use]
pub fn binary_tree(depth: usize) -> Fsp {
    let mut b = Fsp::builder(&format!("btree-{depth}"));
    let l = b.action("l");
    let r = b.action("r");
    // Nodes indexed 1..2^(depth+1); node i has children 2i, 2i+1.
    let total = (1usize << (depth + 1)) - 1;
    let states: Vec<_> = (1..=total).map(|i| b.state(&format!("n{i}"))).collect();
    for i in 1..=total {
        let left = 2 * i;
        let right = 2 * i + 1;
        if right <= total {
            b.add_transition(states[i - 1], Label::Act(l), states[left - 1]);
            b.add_transition(states[i - 1], Label::Act(r), states[right - 1]);
        }
    }
    b.set_start(states[0]);
    b.mark_all_accepting();
    b.build().expect("tree is non-empty")
}

/// A `modulus`-counter over the unary alphabet `{a}` whose states `0` is
/// accepting: deterministic, language = words whose length is divisible by
/// `modulus`.
#[must_use]
pub fn counter(modulus: usize) -> Fsp {
    assert!(modulus > 0, "counter modulus must be positive");
    let mut b = Fsp::builder(&format!("counter-{modulus}"));
    let states: Vec<_> = (0..modulus).map(|i| b.state(&format!("c{i}"))).collect();
    let a = b.action("a");
    for i in 0..modulus {
        b.add_transition(states[i], Label::Act(a), states[(i + 1) % modulus]);
    }
    b.set_start(states[0]);
    b.mark_accepting(states[0]);
    b.build().expect("counter is non-empty")
}

/// Milner's vending machine: accepts a coin, then dispenses tea or coffee,
/// with an internal (τ) decision about which drinks are available.
#[must_use]
pub fn vending_machine(internal_choice: bool) -> Fsp {
    let mut b = Fsp::builder(if internal_choice {
        "vending-internal"
    } else {
        "vending-external"
    });
    let idle = b.state("idle");
    let paid = b.state("paid");
    let tea_ready = b.state("tea-ready");
    let coffee_ready = b.state("coffee-ready");
    let done = b.state("done");
    let coin = b.action("coin");
    let tea = b.action("tea");
    let coffee = b.action("coffee");
    b.set_start(idle);
    b.add_transition(idle, Label::Act(coin), paid);
    if internal_choice {
        b.add_transition(paid, Label::Tau, tea_ready);
        b.add_transition(paid, Label::Tau, coffee_ready);
        b.add_transition(tea_ready, Label::Act(tea), done);
        b.add_transition(coffee_ready, Label::Act(coffee), done);
    } else {
        b.add_transition(paid, Label::Act(tea), done);
        b.add_transition(paid, Label::Act(coffee), done);
    }
    b.mark_all_accepting();
    b.build().expect("vending machine is non-empty")
}

/// A pair of processes of size `O(n)` that agree on the first `n - 1` levels
/// of the `≃ₖ` hierarchy but differ in the limit: two `a`-chains of lengths
/// `n` and `n + 1`.  Useful for measuring how the convergence round grows
/// with process size.
#[must_use]
pub fn slow_convergence_pair(n: usize) -> (Fsp, Fsp) {
    (chain(n + 1, "a"), chain(n + 2, "a"))
}

/// A Theorem 4.1(b)-style exponential-blowup family for the determinization
/// layer: two copies of the classic "`w`-th symbol from the end is `a`" NFA
/// over `Σ = {a, b}` (windows `window` and `window - 1`), plus `n - 2w - 1`
/// *entry* states that each feed into one of the two heads.
///
/// A window-`w` core has a head `h` (self-loops on both letters, guess
/// `h →a c₁`) and a chain `c₁ →a,b c₂ →a,b … → c_w` with only `c_w`
/// accepting; `L(h) = Σ*aΣ^{w-1}`, whose minimal DFA has `2^w` states.  An
/// entry state `e` targeting `h` mimics the head's one-step behaviour
/// exactly (`e →a h`, `e →b h`, `e →a c₁`), so `e` is language-, trace- and
/// failure-equivalent to `h` — and its subset construction lands in `h`'s
/// `2^w` arena after a single step.  Entries alternate between the two
/// cores, so roughly half are equivalent to each head.
///
/// This is the workload the shared determinization layer is built for: the
/// memoized subset automaton explores the `2^w + 2^{w-1}` shared arena
/// **once** for all `n` states, while the pre-determinization
/// representative scan re-runs an independent exponential synchronized
/// search for every `(entry, representative)` attempt — `Θ(n)` searches of
/// `Θ(2^w)` subset-pairs each (entries targeting the second core pay twice:
/// their check against the first head has to exhaust the arena before it
/// fails).  The DET report table measures exactly this gap.
///
/// # Panics
///
/// Panics if `n == 0` or `window < 2`.
#[must_use]
pub fn det_blowup(n: usize, window: usize) -> Fsp {
    assert!(n > 0, "blowup family needs at least one state");
    assert!(window >= 2, "blowup window must be at least 2");
    let mut b = Fsp::builder(&format!("det-blowup-{n}-w{window}"));
    let a = b.action("a");
    let bee = b.action("b");
    let states: Vec<_> = (0..n).map(|i| b.state(&format!("s{i}"))).collect();
    // One window-`w` core starting at `head`, truncated to the available
    // states; returns the number of states it used.
    let core = |b: &mut ccs_fsp::FspBuilder, head: usize, w: usize| -> usize {
        let depth = (n - head).min(w + 1);
        b.add_transition(states[head], Label::Act(a), states[head]);
        b.add_transition(states[head], Label::Act(bee), states[head]);
        if depth > 1 {
            b.add_transition(states[head], Label::Act(a), states[head + 1]);
        }
        for i in 1..depth - 1 {
            b.add_transition(states[head + i], Label::Act(a), states[head + i + 1]);
            b.add_transition(states[head + i], Label::Act(bee), states[head + i + 1]);
        }
        if depth == w + 1 {
            b.mark_accepting(states[head + depth - 1]);
        }
        depth
    };
    let head_a = 0;
    let depth_a = core(&mut b, head_a, window);
    let mut used = depth_a;
    let core_b = if used < n {
        let head = used;
        let depth = core(&mut b, head, window - 1);
        used += depth;
        Some((head, depth))
    } else {
        None
    };
    for (j, &entry) in states.iter().enumerate().skip(used) {
        let (head, depth) = match core_b {
            Some(cb) if (j - used) % 2 == 1 => cb,
            _ => (head_a, depth_a),
        };
        b.add_transition(entry, Label::Act(a), states[head]);
        b.add_transition(entry, Label::Act(bee), states[head]);
        if depth > 1 {
            // The head's guess edge, mirrored onto the shared chain.
            b.add_transition(entry, Label::Act(a), states[head + 1]);
        }
    }
    b.set_start(states[0]);
    b.build().expect("blowup family is non-empty")
}

/// The number of states one `kobs_ladder` module occupies: a shared
/// base gadget (4 states) plus 5 states per rung above the first (sum
/// node, two roots, two τ-companions) and 4 for rung 1.
#[must_use]
pub fn kobs_ladder_module_size(k: usize) -> usize {
    5 * k + 3
}

/// A strictness ladder for the `≈ₖ` hierarchy (Theorem 4.1(b)'s notion):
/// `k` rung pairs per module, where the rung-`j` pair agrees at `≈ⱼ` but
/// separates at `≈ⱼ₊₁` — one rung collapses per level of a `k`-sweep.
///
/// Rung 1 is the classic merged/split branch pair `a.(b + c)` vs
/// `a.b + a.c`: trace-equivalent (`≈₁`) but the `a`-derivative class
/// *sets* differ at `≈₂`.  Rung `j + 1` nests rung `j`:
///
/// ```text
///   Mⱼ₊₁ = a.(Mⱼ + Sⱼ)        Sⱼ₊₁ = a.Mⱼ + a.Sⱼ
/// ```
///
/// For every string `a·t` with `t ≠ ε` the two sides have literally the
/// same derivative subsets, and at `s = a` the derivative class sets are
/// `{[Mⱼ + Sⱼ]}` vs `{[Mⱼ], [Sⱼ]}` — equal at level `j` (where
/// `Mⱼ ≈ⱼ Sⱼ` makes the sum collapse) and of different cardinality at
/// level `j + 1` (where `Mⱼ ≉ⱼ₊₁ Sⱼ`).  Subterms are shared, so a module
/// is `5k + 3` states, not exponential.  Every rung root carries a
/// two-state τ-cycle companion, so each ε-closure in the subset arena is
/// a genuine multi-state set rather than a singleton.
///
/// The family replicates whole modules to fill `n` states (isomorphic
/// copies are `≈ₖ`-equivalent at every level, feeding the per-pair
/// engines many positive checks) and pads the remainder with isolated
/// accepting states.  All states are accepting, so `≈₀` is a single
/// class and level 1 is exactly trace equivalence.
///
/// # Panics
///
/// Panics if `k == 0` or `n < kobs_ladder_module_size(k)`.
#[must_use]
pub fn kobs_ladder(n: usize, k: usize) -> Fsp {
    assert!(k >= 1, "the ladder needs at least one rung");
    let module = kobs_ladder_module_size(k);
    assert!(
        n >= module,
        "kobs_ladder needs at least {module} states for k = {k}, got {n}"
    );
    let mut b = Fsp::builder(&format!("kobs-ladder-{n}-k{k}"));
    let a = b.action("a");
    let act_b = b.action("b");
    let act_c = b.action("c");
    let mut start = None;
    for m in 0..n / module {
        // Shared base gadget: leaves of the rung-1 branch pair.
        let end = b.state(&format!("m{m}-end"));
        let leaf_b = b.state(&format!("m{m}-leaf-b"));
        let leaf_c = b.state(&format!("m{m}-leaf-c"));
        let leaf_bc = b.state(&format!("m{m}-leaf-bc"));
        b.add_transition(leaf_b, Label::Act(act_b), end);
        b.add_transition(leaf_c, Label::Act(act_c), end);
        b.add_transition(leaf_bc, Label::Act(act_b), end);
        b.add_transition(leaf_bc, Label::Act(act_c), end);
        // Rung roots with their a-target lists (what a sum node must copy)
        // and τ-cycle companions.
        let mut merged_targets = vec![leaf_bc];
        let mut split_targets = vec![leaf_b, leaf_c];
        let mut merged = b.state(&format!("m{m}-r1-merged"));
        let mut split = b.state(&format!("m{m}-r1-split"));
        for (root, targets) in [(merged, &merged_targets), (split, &split_targets)] {
            for &t in targets {
                b.add_transition(root, Label::Act(a), t);
            }
        }
        for (root, name) in [(merged, "merged"), (split, "split")] {
            let shadow = b.state(&format!("m{m}-r1-{name}-tau"));
            b.add_transition(root, Label::Tau, shadow);
            b.add_transition(shadow, Label::Tau, root);
        }
        for j in 2..=k {
            // sum ≙ Mⱼ₋₁ + Sⱼ₋₁: the union of both roots' observable
            // out-edges (the τ-companions are behaviourally inert).
            let sum = b.state(&format!("m{m}-r{j}-sum"));
            for &t in merged_targets.iter().chain(&split_targets) {
                b.add_transition(sum, Label::Act(a), t);
            }
            let next_merged = b.state(&format!("m{m}-r{j}-merged"));
            let next_split = b.state(&format!("m{m}-r{j}-split"));
            b.add_transition(next_merged, Label::Act(a), sum);
            b.add_transition(next_split, Label::Act(a), merged);
            b.add_transition(next_split, Label::Act(a), split);
            for (root, name) in [(next_merged, "merged"), (next_split, "split")] {
                let shadow = b.state(&format!("m{m}-r{j}-{name}-tau"));
                b.add_transition(root, Label::Tau, shadow);
                b.add_transition(shadow, Label::Tau, root);
            }
            merged_targets = vec![sum];
            split_targets = vec![merged, split];
            merged = next_merged;
            split = next_split;
        }
        start.get_or_insert(merged);
    }
    for i in 0..n % module {
        b.state(&format!("pad{i}"));
    }
    b.set_start(start.expect("at least one module"));
    b.mark_all_accepting();
    b.build().expect("ladder is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_equiv::{limited, strong, Equivalence, Query};
    use ccs_fsp::ops;

    #[test]
    fn chain_classes_are_all_distinct() {
        let f = chain(6, "a");
        assert_eq!(strong::strong_partition(&f).num_classes(), 6);
        assert!(f.profile().finite_tree);
    }

    #[test]
    fn cycle_collapses_to_one_class() {
        for n in [1, 2, 5, 9] {
            let f = cycle(n, "a");
            assert_eq!(strong::strong_partition(&f).num_classes(), 1, "n={n}");
        }
    }

    #[test]
    fn cycles_of_different_sizes_are_equivalent() {
        let three = cycle(3, "a");
        let five = cycle(5, "a");
        assert!(Query::new(Equivalence::Strong)
            .between(&three, &five)
            .unwrap());
        assert!(Query::new(Equivalence::Failure)
            .between(&three, &five)
            .unwrap());
    }

    #[test]
    fn tau_chain_is_weakly_equivalent_to_a_single_action() {
        let long = tau_chain(10);
        let short = tau_chain(1);
        assert!(Query::new(Equivalence::Observational)
            .between(&long, &short)
            .unwrap());
        assert!(!Query::new(Equivalence::Strong)
            .between(&long, &short)
            .unwrap());
    }

    #[test]
    fn binary_tree_sizes() {
        let t = binary_tree(3);
        assert_eq!(t.num_states(), 15);
        assert_eq!(t.num_transitions(), 14);
        assert!(t.profile().finite_tree);
        // All leaves are equivalent, all depth-2 nodes are equivalent, etc.
        assert_eq!(strong::strong_partition(&t).num_classes(), 4);
    }

    #[test]
    fn counters_relate_by_divisibility() {
        let lang = Query::new(Equivalence::Language);
        assert!(lang.between(&counter(2), &counter(2)).unwrap());
        assert!(!lang.between(&counter(2), &counter(3)).unwrap());
    }

    #[test]
    fn vending_machines_differ_observationally_but_not_by_traces() {
        let internal = vending_machine(true);
        let external = vending_machine(false);
        assert!(Query::new(Equivalence::Trace)
            .between(&internal, &external)
            .unwrap());
        assert!(!Query::new(Equivalence::Observational)
            .between(&internal, &external)
            .unwrap());
        assert!(!Query::new(Equivalence::Failure)
            .between(&internal, &external)
            .unwrap());
    }

    #[test]
    fn det_blowup_has_exact_size_and_exponential_determinization() {
        // Window 3: core A = s0..s3 (head s0), core B = s4..s6 (head s4),
        // entries s7, s9, … target A and s8, s10, … target B.
        let f = det_blowup(12, 3);
        assert_eq!(f.num_states(), 12);
        let h_a = f.state_by_name("s0").unwrap();
        let h_b = f.state_by_name("s4").unwrap();
        let e_a = f.state_by_name("s7").unwrap();
        let e_b = f.state_by_name("s8").unwrap();
        // Entries are language-equivalent to their head and to each other…
        assert!(ccs_equiv::language::language_equivalent_states(&f, h_a, e_a).holds);
        assert!(ccs_equiv::language::language_equivalent_states(&f, h_b, e_b).holds);
        // …while the two cores (windows 3 vs 2) are inequivalent.
        assert!(!ccs_equiv::language::language_equivalent_states(&f, h_a, h_b).holds);
        assert!(!ccs_equiv::language::language_equivalent_states(&f, e_a, e_b).holds);
        // The classification agrees between the determinized engine and the
        // representative-scan oracle on the blowup shape.
        let session = ccs_equiv::EquivSession::for_process(&f);
        let oracle = session.representative_scan_partition(Equivalence::Language);
        assert_eq!(
            session.classify_all(Equivalence::Language).as_ref(),
            &oracle
        );
        // The arena really blows up past the state count: the 2^w + 2^{w-1}
        // shared core arena dominates the n original states.
        let g = det_blowup(16, 6);
        let s = ccs_equiv::EquivSession::for_process(&g);
        let _ = s.classify_all(Equivalence::Language);
        assert!(
            s.subset_arena_size() > g.num_states(),
            "expected subset blowup, got {} subsets over {} states",
            s.subset_arena_size(),
            g.num_states()
        );
    }

    #[test]
    fn kobs_ladder_has_exact_size_and_strict_rungs() {
        let k = 3;
        let module = kobs_ladder_module_size(k);
        // One module plus padding, and a two-module instance: exact sizes.
        let f = kobs_ladder(module + 4, k);
        assert_eq!(f.num_states(), module + 4);
        assert_eq!(kobs_ladder(2 * module + 1, k).num_states(), 2 * module + 1);
        // Rung j agrees at ≈ⱼ and separates at ≈ⱼ₊₁ — the ladder collapses
        // exactly one rung per level of a k-sweep.
        for j in 1..=k {
            let merged = f.state_by_name(&format!("m0-r{j}-merged")).unwrap();
            let split = f.state_by_name(&format!("m0-r{j}-split")).unwrap();
            assert!(
                ccs_equiv::kobs::kobs_equivalent_states(&f, merged, split, j),
                "rung {j} must agree at level {j}"
            );
            assert!(
                !ccs_equiv::kobs::kobs_equivalent_states(&f, merged, split, j + 1),
                "rung {j} must separate at level {}",
                j + 1
            );
        }
        // Isomorphic module copies stay equivalent at every level.
        let g = kobs_ladder(2 * module, k);
        let m0 = g.state_by_name("m0-r3-merged").unwrap();
        let m1 = g.state_by_name("m1-r3-merged").unwrap();
        for level in 0..=k + 1 {
            assert!(ccs_equiv::kobs::kobs_equivalent_states(&g, m0, m1, level));
        }
        // The τ-companions make rung-root ε-closures genuinely multi-state.
        let session = ccs_equiv::EquivSession::for_process(&f);
        let top = f.state_by_name(&format!("m0-r{k}-merged")).unwrap();
        assert!(session.tau_closure().successors(top).len() > 1);
    }

    #[test]
    fn slow_convergence_pair_needs_many_rounds() {
        let (a, b) = slow_convergence_pair(6);
        let union = ops::disjoint_union(&a, &b);
        let h = limited::limited_hierarchy(&union.fsp);
        assert!(h.convergence_round() >= 6);
        let (p, q) = ops::union_starts(&union, &a, &b);
        assert!(!h.limit().same_block(p.index(), q.index()));
        // At low levels the two chains are still indistinguishable.
        assert!(h.equivalent_at(1, p, q));
    }
}
