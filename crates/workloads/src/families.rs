//! Deterministic structured process families with known equivalence
//! structure.

use ccs_fsp::{Fsp, Label};

/// An `a`-labelled chain of `n` states (all accepting); state `i` is the
/// start.  Every state is in its own strong-equivalence class.
#[must_use]
pub fn chain(n: usize, action: &str) -> Fsp {
    assert!(n > 0, "a chain needs at least one state");
    let mut b = Fsp::builder(&format!("chain-{n}"));
    let states: Vec<_> = (0..n).map(|i| b.state(&format!("s{i}"))).collect();
    let a = b.action(action);
    for w in states.windows(2) {
        b.add_transition(w[0], Label::Act(a), w[1]);
    }
    b.set_start(states[0]);
    b.mark_all_accepting();
    b.build().expect("chain is non-empty")
}

/// An `a`-labelled cycle of `n` states (all accepting).  All states are
/// strongly equivalent, so the whole family collapses to a single class —
/// the best case for partition refinement.
#[must_use]
pub fn cycle(n: usize, action: &str) -> Fsp {
    assert!(n > 0, "a cycle needs at least one state");
    let mut b = Fsp::builder(&format!("cycle-{n}"));
    let states: Vec<_> = (0..n).map(|i| b.state(&format!("s{i}"))).collect();
    let a = b.action(action);
    for i in 0..n {
        b.add_transition(states[i], Label::Act(a), states[(i + 1) % n]);
    }
    b.set_start(states[0]);
    b.mark_all_accepting();
    b.build().expect("cycle is non-empty")
}

/// A τ-chain of `n` states ending in a single `a`-transition: weakly
/// equivalent to the two-state process `a`, but with a long unobservable
/// prefix.  Stresses the saturation step of Theorem 4.1(a).
#[must_use]
pub fn tau_chain(n: usize) -> Fsp {
    assert!(n > 0, "a tau chain needs at least one state");
    let mut b = Fsp::builder(&format!("tau-chain-{n}"));
    let states: Vec<_> = (0..=n).map(|i| b.state(&format!("s{i}"))).collect();
    for w in states.windows(2) {
        b.add_transition(w[0], Label::Tau, w[1]);
    }
    let end = b.state("end");
    let a = b.action("a");
    b.add_transition(states[n], Label::Act(a), end);
    b.set_start(states[0]);
    b.mark_all_accepting();
    b.build().expect("tau chain is non-empty")
}

/// A complete binary tree of the given depth over actions `l` and `r`
/// (restricted model).  Finite trees are the class for which failure
/// equivalence is polynomial (Section 5).
#[must_use]
pub fn binary_tree(depth: usize) -> Fsp {
    let mut b = Fsp::builder(&format!("btree-{depth}"));
    let l = b.action("l");
    let r = b.action("r");
    // Nodes indexed 1..2^(depth+1); node i has children 2i, 2i+1.
    let total = (1usize << (depth + 1)) - 1;
    let states: Vec<_> = (1..=total).map(|i| b.state(&format!("n{i}"))).collect();
    for i in 1..=total {
        let left = 2 * i;
        let right = 2 * i + 1;
        if right <= total {
            b.add_transition(states[i - 1], Label::Act(l), states[left - 1]);
            b.add_transition(states[i - 1], Label::Act(r), states[right - 1]);
        }
    }
    b.set_start(states[0]);
    b.mark_all_accepting();
    b.build().expect("tree is non-empty")
}

/// A `modulus`-counter over the unary alphabet `{a}` whose states `0` is
/// accepting: deterministic, language = words whose length is divisible by
/// `modulus`.
#[must_use]
pub fn counter(modulus: usize) -> Fsp {
    assert!(modulus > 0, "counter modulus must be positive");
    let mut b = Fsp::builder(&format!("counter-{modulus}"));
    let states: Vec<_> = (0..modulus).map(|i| b.state(&format!("c{i}"))).collect();
    let a = b.action("a");
    for i in 0..modulus {
        b.add_transition(states[i], Label::Act(a), states[(i + 1) % modulus]);
    }
    b.set_start(states[0]);
    b.mark_accepting(states[0]);
    b.build().expect("counter is non-empty")
}

/// Milner's vending machine: accepts a coin, then dispenses tea or coffee,
/// with an internal (τ) decision about which drinks are available.
#[must_use]
pub fn vending_machine(internal_choice: bool) -> Fsp {
    let mut b = Fsp::builder(if internal_choice {
        "vending-internal"
    } else {
        "vending-external"
    });
    let idle = b.state("idle");
    let paid = b.state("paid");
    let tea_ready = b.state("tea-ready");
    let coffee_ready = b.state("coffee-ready");
    let done = b.state("done");
    let coin = b.action("coin");
    let tea = b.action("tea");
    let coffee = b.action("coffee");
    b.set_start(idle);
    b.add_transition(idle, Label::Act(coin), paid);
    if internal_choice {
        b.add_transition(paid, Label::Tau, tea_ready);
        b.add_transition(paid, Label::Tau, coffee_ready);
        b.add_transition(tea_ready, Label::Act(tea), done);
        b.add_transition(coffee_ready, Label::Act(coffee), done);
    } else {
        b.add_transition(paid, Label::Act(tea), done);
        b.add_transition(paid, Label::Act(coffee), done);
    }
    b.mark_all_accepting();
    b.build().expect("vending machine is non-empty")
}

/// A pair of processes of size `O(n)` that agree on the first `n - 1` levels
/// of the `≃ₖ` hierarchy but differ in the limit: two `a`-chains of lengths
/// `n` and `n + 1`.  Useful for measuring how the convergence round grows
/// with process size.
#[must_use]
pub fn slow_convergence_pair(n: usize) -> (Fsp, Fsp) {
    (chain(n + 1, "a"), chain(n + 2, "a"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_equiv::{equivalent, limited, strong, Equivalence};
    use ccs_fsp::ops;

    #[test]
    fn chain_classes_are_all_distinct() {
        let f = chain(6, "a");
        assert_eq!(strong::strong_partition(&f).num_classes(), 6);
        assert!(f.profile().finite_tree);
    }

    #[test]
    fn cycle_collapses_to_one_class() {
        for n in [1, 2, 5, 9] {
            let f = cycle(n, "a");
            assert_eq!(strong::strong_partition(&f).num_classes(), 1, "n={n}");
        }
    }

    #[test]
    fn cycles_of_different_sizes_are_equivalent() {
        assert!(equivalent(&cycle(3, "a"), &cycle(5, "a"), Equivalence::Strong).unwrap());
        assert!(equivalent(&cycle(3, "a"), &cycle(5, "a"), Equivalence::Failure).unwrap());
    }

    #[test]
    fn tau_chain_is_weakly_equivalent_to_a_single_action() {
        let long = tau_chain(10);
        let short = tau_chain(1);
        assert!(equivalent(&long, &short, Equivalence::Observational).unwrap());
        assert!(!equivalent(&long, &short, Equivalence::Strong).unwrap());
    }

    #[test]
    fn binary_tree_sizes() {
        let t = binary_tree(3);
        assert_eq!(t.num_states(), 15);
        assert_eq!(t.num_transitions(), 14);
        assert!(t.profile().finite_tree);
        // All leaves are equivalent, all depth-2 nodes are equivalent, etc.
        assert_eq!(strong::strong_partition(&t).num_classes(), 4);
    }

    #[test]
    fn counters_relate_by_divisibility() {
        assert!(equivalent(&counter(2), &counter(2), Equivalence::Language).unwrap());
        assert!(!equivalent(&counter(2), &counter(3), Equivalence::Language).unwrap());
    }

    #[test]
    fn vending_machines_differ_observationally_but_not_by_traces() {
        let internal = vending_machine(true);
        let external = vending_machine(false);
        assert!(equivalent(&internal, &external, Equivalence::Trace).unwrap());
        assert!(!equivalent(&internal, &external, Equivalence::Observational).unwrap());
        assert!(!equivalent(&internal, &external, Equivalence::Failure).unwrap());
    }

    #[test]
    fn slow_convergence_pair_needs_many_rounds() {
        let (a, b) = slow_convergence_pair(6);
        let union = ops::disjoint_union(&a, &b);
        let h = limited::limited_hierarchy(&union.fsp);
        assert!(h.convergence_round() >= 6);
        let (p, q) = ops::union_starts(&union, &a, &b);
        assert!(!h.limit().same_block(p.index(), q.index()));
        // At low levels the two chains are still indistinguishable.
        assert!(h.equivalent_at(1, p, q));
    }
}
