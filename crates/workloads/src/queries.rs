//! Batched-query workloads: a process plus a list of state pairs to be
//! answered under one equivalence notion.
//!
//! These feed the `weak_pipeline` bench and the report's WP table, which
//! compare answering the batch with the one-shot free functions (`m` full
//! Theorem 4.1(a) pipelines) against answering it through an
//! `EquivSession` (one pipeline, `m` partition lookups).

use ccs_fsp::{Fsp, StateId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::random::{random_fsp, RandomConfig};

/// A process together with a batch of pair queries over its states.
#[derive(Clone, Debug)]
pub struct QueryBatch {
    /// The shared state space every query targets.
    pub fsp: Fsp,
    /// The state pairs to test for equivalence.
    pub pairs: Vec<(StateId, StateId)>,
}

/// Draws `count` uniform state pairs over a process (pairs may repeat and
/// may be reflexive, like real query mixes).  Deterministic in `seed`.
///
/// # Panics
///
/// Panics if the process has no states (cannot happen for built processes).
#[must_use]
pub fn state_pairs(fsp: &Fsp, count: usize, seed: u64) -> Vec<(StateId, StateId)> {
    let n = fsp.num_states();
    assert!(n > 0, "process has no states");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (
                StateId::from_index(rng.gen_range(0..n)),
                StateId::from_index(rng.gen_range(0..n)),
            )
        })
        .collect()
}

/// A batched observational-equivalence workload: a random *general* process
/// (τ-moves and partial acceptance — the model of the Theorem 4.1(a)
/// pipeline) of the given size, plus `pairs` uniform pair queries.
/// Deterministic in `seed`.
#[must_use]
pub fn weak_query_batch(states: usize, pairs: usize, seed: u64) -> QueryBatch {
    let fsp = random_fsp(&RandomConfig {
        tau_ratio: 0.3,
        accept_ratio: 0.5,
        ..RandomConfig::sized(states, seed)
    });
    let pairs = state_pairs(&fsp, pairs, seed.wrapping_add(1));
    QueryBatch { fsp, pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_equiv::{weak, EquivSession, Equivalence};

    #[test]
    fn batches_are_deterministic_and_sized() {
        let a = weak_query_batch(24, 16, 5);
        let b = weak_query_batch(24, 16, 5);
        assert_eq!(a.fsp, b.fsp);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.fsp.num_states(), 24);
        assert_eq!(a.pairs.len(), 16);
        assert!(a.fsp.has_tau_transitions());
        let c = weak_query_batch(24, 16, 6);
        assert!(c.fsp != a.fsp || c.pairs != a.pairs);
    }

    #[test]
    fn session_and_free_functions_agree_on_a_batch() {
        let batch = weak_query_batch(20, 12, 9);
        let session = EquivSession::for_process(&batch.fsp);
        let batched = session.equivalent_pairs(Equivalence::Observational, &batch.pairs);
        let wp = weak::weak_partition(&batch.fsp);
        for (&(p, q), &got) in batch.pairs.iter().zip(&batched) {
            assert_eq!(got, wp.equivalent(p, q));
        }
    }
}
