//! Mutating-query workloads: a base model, a deterministic edit stream, and
//! a query mix — the input shape of the incremental maintenance path
//! (`ccs_partition::incremental`, `EquivSession::apply_delta`, the server's
//! `mutate` op) and of the report's DELTA table.
//!
//! The base model is a union of disjoint copies of one small gadget, which
//! keeps the interesting structure *local*: an edit batch touches a couple
//! of copies, so the delta path seeds a handful of splitter blocks while a
//! from-scratch rebuild still has to refine the whole union.  The edit
//! stream is a seed-deterministic toggle sequence with two flavours per
//! copy:
//!
//! * a **class-redundant** toggle — an edge into a block the source already
//!   reaches under the same label, so the coarsest partition is unchanged
//!   and the certificate check confirms the seeded fixpoint directly; and
//! * a **refining** toggle (a back edge that makes one copy distinguishable
//!   from its siblings) — the splits are real, and undoing it coarsens, so
//!   the quotient fallback gets exercised too.
//!
//! Every generator is pure in its arguments; two calls with the same seed
//! produce identical workloads, batch for batch.

use ccs_fsp::{Fsp, Label, StateId};
use ccs_partition::Instance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::queries::state_pairs;

/// States per gadget copy: `h0 -a-> h1 -b-> h2`, plus a spare `h3 -b-> h2`
/// that starts strongly equivalent to `h1`.
pub const GADGET_STATES: usize = 4;

/// One edit batch: additions are applied after removals, exactly as the
/// delta APIs at every layer do.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EditBatch<E> {
    /// Edges to insert (ignored by the appliers when already present).
    pub additions: Vec<E>,
    /// Edges to delete (ignored by the appliers when already absent).
    pub removals: Vec<E>,
}

/// An [`EditBatch`] over kernel-level `(label, from, to)` index triples —
/// the edge currency of [`ccs_partition::EdgeDelta`].
pub type KernelEditBatch = EditBatch<(usize, usize, usize)>;

impl<E> EditBatch<E> {
    /// Total number of edits named by the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.additions.len() + self.removals.len()
    }

    /// Whether the batch names no edits at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.additions.is_empty() && self.removals.is_empty()
    }
}

/// A process-level mutating workload: the base model, the edit stream, and
/// a pair-query mix to replay between batches.
#[derive(Clone, Debug)]
pub struct MutatingWorkload {
    /// The union-of-gadget-copies base model.
    pub fsp: Fsp,
    /// The seed-deterministic edit stream, in application order.
    pub batches: Vec<EditBatch<(StateId, Label, StateId)>>,
    /// Uniform state pairs to query after every batch.
    pub queries: Vec<(StateId, StateId)>,
}

fn gadget_union(copies: usize) -> Fsp {
    let mut b = Fsp::builder("mutating-gadgets");
    let a = b.action("a");
    let bb = b.action("b");
    let mut first = None;
    for c in 0..copies {
        let h0 = b.state(&format!("g{c}_0"));
        let h1 = b.state(&format!("g{c}_1"));
        let h2 = b.state(&format!("g{c}_2"));
        let h3 = b.state(&format!("g{c}_3"));
        b.add_transition(h0, Label::Act(a), h1);
        b.add_transition(h1, Label::Act(bb), h2);
        b.add_transition(h3, Label::Act(bb), h2);
        b.mark_accepting(h2);
        first.get_or_insert(h0);
    }
    if let Some(start) = first {
        b.set_start(start);
    }
    b.build().expect("gadget union is well-formed")
}

/// The two toggle edges of copy `c`, as `(label, from, to)` index triples:
/// the class-redundant `h0 -a-> h3` and the refining back edge
/// `h2 -a-> h0`.  Label indices are `0 = a`, `1 = b`.
fn toggles(c: usize) -> [(usize, usize, usize); 2] {
    let base = c * GADGET_STATES;
    [(0, base, base + 3), (0, base + 2, base)]
}

/// A process-level mutating workload over `copies` gadget copies
/// (`copies × 4` states), with `batches` edit batches of `edits_per_batch`
/// toggles each and `queries` uniform pair queries.  Roughly one toggle in
/// four is the refining flavour; the rest are class-redundant.
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `copies == 0`.
#[must_use]
pub fn mutating_workload(
    copies: usize,
    batches: usize,
    edits_per_batch: usize,
    queries: usize,
    seed: u64,
) -> MutatingWorkload {
    assert!(copies > 0, "need at least one gadget copy");
    let fsp = gadget_union(copies);
    let actions = [
        fsp.action_id("a").expect("gadget alphabet"),
        fsp.action_id("b").expect("gadget alphabet"),
    ];
    let raw = edit_stream(copies, batches, edits_per_batch, seed);
    let lift = |&(l, from, to): &(usize, usize, usize)| {
        (
            StateId::from_index(from),
            Label::Act(actions[l]),
            StateId::from_index(to),
        )
    };
    let batches = raw
        .into_iter()
        .map(|batch| EditBatch {
            additions: batch.additions.iter().map(lift).collect(),
            removals: batch.removals.iter().map(lift).collect(),
        })
        .collect();
    let queries = state_pairs(&fsp, queries, seed.wrapping_add(1));
    MutatingWorkload {
        fsp,
        batches,
        queries,
    }
}

/// The same workload at the partition-kernel level: the gadget union as a
/// generalized-partitioning [`Instance`] (labels `0 = a`, `1 = b`,
/// accepting copies split off by the initial partition) plus the edit
/// stream as `(label, from, to)` index triples — the direct input of
/// [`ccs_partition::DeltaRefiner`] and the DELTA report table.
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `copies == 0`.
#[must_use]
pub fn mutating_instance(
    copies: usize,
    batches: usize,
    edits_per_batch: usize,
    seed: u64,
) -> (Instance, Vec<KernelEditBatch>) {
    assert!(copies > 0, "need at least one gadget copy");
    let mut inst = Instance::new(copies * GADGET_STATES, 2);
    inst.reserve_edges(copies * 3);
    for c in 0..copies {
        let base = c * GADGET_STATES;
        inst.add_edge(0, base, base + 1);
        inst.add_edge(1, base + 1, base + 2);
        inst.add_edge(1, base + 3, base + 2);
        // Mirror the acceptance split of the process-level model: the
        // accepting h2 starts in its own block.
        inst.set_initial_block(base + 2, 1);
    }
    (inst, edit_stream(copies, batches, edits_per_batch, seed))
}

/// The shared toggle stream: per batch, `edits_per_batch` distinct copies
/// are drawn; each contributes its redundant toggle (or, one draw in four,
/// its refining toggle) as an addition if the edge is currently absent and
/// as a removal otherwise.
fn edit_stream(
    copies: usize,
    batches: usize,
    edits_per_batch: usize,
    seed: u64,
) -> Vec<KernelEditBatch> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Toggle state per (copy, flavour): false = absent.
    let mut present = vec![[false; 2]; copies];
    (0..batches)
        .map(|_| {
            let mut batch = EditBatch::default();
            let mut picked = Vec::with_capacity(edits_per_batch);
            while picked.len() < edits_per_batch.min(copies) {
                let c = rng.gen_range(0..copies);
                if !picked.contains(&c) {
                    picked.push(c);
                }
            }
            for c in picked {
                let flavour = usize::from(rng.gen_range(0..4u8) == 0);
                let edge = toggles(c)[flavour];
                if present[c][flavour] {
                    batch.removals.push(edge);
                } else {
                    batch.additions.push(edge);
                }
                present[c][flavour] = !present[c][flavour];
            }
            batch
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_partition::{solve, Algorithm, DeltaRefiner};

    #[test]
    fn workloads_are_deterministic_in_the_seed() {
        let a = mutating_workload(8, 6, 2, 10, 3);
        let b = mutating_workload(8, 6, 2, 10, 3);
        assert_eq!(a.fsp, b.fsp);
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.fsp.num_states(), 8 * GADGET_STATES);
        assert_eq!(a.batches.len(), 6);
        let c = mutating_workload(8, 6, 2, 10, 4);
        assert!(c.batches != a.batches || c.queries != a.queries);
    }

    #[test]
    fn instance_stream_drives_the_delta_refiner_to_oracle_agreement() {
        let (inst, batches) = mutating_instance(12, 10, 2, 7);
        let mut refiner = DeltaRefiner::with_threshold(inst, Algorithm::PaigeTarjan, 1.0);
        for batch in &batches {
            let delta = ccs_partition::EdgeDelta {
                additions: batch.additions.clone(),
                removals: batch.removals.clone(),
            };
            refiner.apply(&delta);
            let oracle = solve(refiner.instance(), Algorithm::PaigeTarjan);
            assert_eq!(refiner.partition(), &oracle);
        }
        let stats = refiner.stats();
        assert_eq!(stats.batches, batches.len());
    }

    #[test]
    fn redundant_toggles_leave_the_partition_unchanged() {
        let (inst, _) = mutating_instance(4, 0, 0, 0);
        let before = solve(&inst, Algorithm::PaigeTarjan);
        let mut edited = inst.clone();
        let (l, f, t) = toggles(2)[0];
        edited.apply_delta(&[(l, f, t)], &[]);
        let after = solve(&edited, Algorithm::PaigeTarjan);
        assert_eq!(before.num_blocks(), after.num_blocks());
    }

    #[test]
    fn process_and_instance_models_agree_block_for_block() {
        let wl = mutating_workload(6, 0, 0, 0, 1);
        let (inst, _) = mutating_instance(6, 0, 0, 1);
        let session = ccs_equiv::EquivSession::for_process(&wl.fsp);
        let strong = session.classify_all(ccs_equiv::Equivalence::Strong);
        let kernel = solve(&inst, Algorithm::PaigeTarjan);
        assert_eq!(strong.as_ref(), &kernel);
    }
}
