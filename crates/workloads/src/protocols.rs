//! A distributed-protocols corpus: parameterized component processes with
//! specifications of known equivalence verdicts.
//!
//! Each family models a classic distributed protocol as a set of component
//! [`Fsp`]s meant for parallel composition
//! ([`ccs_fsp::ops::parallel`] — shared actions handshake, the rest
//! interleaves), a list of internal actions to [`hide`](ccs_fsp::ops::hide)
//! after composition, and a small *specification* process describing the
//! intended observable behaviour.  The composed-and-hidden system is
//! compared against the spec under the weak notions; the product spaces are
//! large while the observable quotients are tiny, which is exactly the
//! workload shape the on-the-fly engine (`ccs_equiv::onthefly`) and
//! compositional minimization (`ccs_expr::compose`) exist for.
//!
//! # Families, sources, and expected verdicts
//!
//! The protocols follow their textbook presentations in Lynch's survey of
//! distributed-algorithm models ([arXiv:2502.20468]) and Aspnes's
//! *Notes on Theory of Distributed Systems* ([arXiv:2001.04235]):
//!
//! * [`alternating_bit`] — stop-and-wait transfer over bit-tagged FIFO
//!   channels, parameterized by **channel capacity**.  Expected:
//!   `composed ≈ spec` (observational), hence also trace-, language- and
//!   failure-equivalent, for every capacity — the stop-and-wait discipline
//!   keeps at most one frame in flight, so capacity is unobservable.
//! * [`alternating_bit_premature_ack`] — the classic bug: the receiver
//!   acknowledges *before* delivering.  Expected: **inequivalent** to the
//!   same spec under every weak notion (a second `send` becomes possible
//!   before the first `deliver`), giving the witness-replay tests a real
//!   protocol defect to explain.
//! * [`ring_election`] — unidirectional max-id leader election on a ring
//!   (Chang–Roberts/LCR style, with held messages merged to the maximum),
//!   parameterized by **ring size**.  Expected: `composed ≈ spec` where the
//!   spec performs the winner's single `elect<max>` and stops.
//! * [`two_phase_commit`] — a 2PC skeleton: coordinator polls every
//!   participant, each votes yes/no by an internal choice, unanimity
//!   commits and any refusal aborts; parameterized by **participant
//!   count**.  Expected: `composed ≈ spec` where the spec internally
//!   chooses between `commit` and `abort` after `begin`.
//! * [`two_phase_commit_blind`] — a broken coordinator that commits
//!   regardless of the votes.  Expected: **inequivalent** to the 2PC spec
//!   under every weak notion (the `abort` trace disappears).
//!
//! The verdicts are enforced by this module's tests, the root
//! `integration_protocols` suite and the bench report's `OTF` table (which
//! additionally asserts that the on-the-fly engine agrees with the
//! materialized checker on all of them).
//!
//! [arXiv:2502.20468]: https://arxiv.org/abs/2502.20468
//! [arXiv:2001.04235]: https://arxiv.org/abs/2001.04235
//!
//! ```
//! use ccs_workloads::protocols;
//!
//! let abp = protocols::alternating_bit(2);
//! let composed = abp.composed();
//! // Internals are hidden: only `send` and `deliver` remain observable.
//! assert_eq!(composed.num_actions(), 2);
//! assert!(composed.num_states() > abp.spec.num_states());
//! ```

use ccs_fsp::{ops, Fsp, Label};

/// A protocol scenario: components to compose in parallel, internal actions
/// to hide afterwards, and the observable specification to compare against.
#[derive(Clone, Debug)]
pub struct Protocol {
    /// Short display name including the parameter, e.g. `abp-c2`.
    pub name: String,
    /// The component processes, composed left to right.
    pub components: Vec<Fsp>,
    /// Action names internal to the protocol, hidden after composition.
    pub hidden: Vec<String>,
    /// The observable specification process.
    pub spec: Fsp,
    /// Whether `composed()` is expected to be observationally equivalent to
    /// `spec` (the verdict the test suites assert).
    pub equivalent: bool,
}

impl Protocol {
    /// The full composition with internals hidden: fold the components
    /// through [`ops::parallel`], then [`ops::hide`] the internal actions.
    #[must_use]
    pub fn composed(&self) -> Fsp {
        let hidden: Vec<&str> = self.hidden.iter().map(String::as_str).collect();
        ops::hide(
            &ccs_expr::compose::parallel_composed(&self.components),
            &hidden,
        )
    }

    /// The compositionally minimized composition: every factor and every
    /// partial product is quotiented by `≈` before the next factor joins
    /// ([`ccs_expr::compose::parallel_minimized`]), internals hidden, and
    /// the result minimized once more.  Observationally equivalent to
    /// [`Protocol::composed`] — the `ccs_expr::laws::parallel_congruence`
    /// law, checked by the suites — but far smaller.
    #[must_use]
    pub fn composed_minimized(&self) -> Fsp {
        let hidden: Vec<&str> = self.hidden.iter().map(String::as_str).collect();
        let reduced = ccs_expr::compose::parallel_minimized(&self.components);
        ccs_expr::compose::minimized(&ops::hide(&reduced, &hidden))
    }

    /// The naive product-space size: the product of the component state
    /// counts — what a compose-everything-first checker would have to
    /// refine, and the "total" the OTF report compares peak exploration
    /// against.
    #[must_use]
    pub fn naive_product_states(&self) -> usize {
        self.components.iter().map(Fsp::num_states).product()
    }
}

/// A bit-tagged FIFO channel of the given capacity: `in0`/`in1` enqueue at
/// the tail, `out0`/`out1` dequeue from the head.  States are the bit
/// strings of length ≤ capacity.
fn fifo_channel(name: &str, capacity: usize, input: [&str; 2], output: [&str; 2]) -> Fsp {
    assert!(capacity >= 1, "channel capacity must be at least 1");
    let mut b = Fsp::builder(name);
    // Enumerate every queue content as a bit string (shortest first).
    let mut contents: Vec<Vec<u8>> = vec![Vec::new()];
    let mut frontier: Vec<Vec<u8>> = vec![Vec::new()];
    for _ in 0..capacity {
        let mut next = Vec::new();
        for w in &frontier {
            for bit in 0..2u8 {
                let mut ext = w.clone();
                ext.push(bit);
                contents.push(ext.clone());
                next.push(ext);
            }
        }
        frontier = next;
    }
    let label_of = |w: &[u8]| {
        if w.is_empty() {
            "e".to_owned()
        } else {
            w.iter().map(u8::to_string).collect::<String>()
        }
    };
    for w in &contents {
        let here = b.state(&label_of(w));
        if w.len() < capacity {
            for (bit, action) in input.iter().enumerate() {
                let mut ext = w.clone();
                ext.push(u8::try_from(bit).expect("bit fits"));
                let target = b.state(&label_of(&ext));
                let act = b.action(action);
                b.add_transition(here, Label::Act(act), target);
            }
        }
        if let Some((&head, rest)) = w.split_first() {
            let target = b.state(&label_of(rest));
            let act = b.action(output[head as usize]);
            b.add_transition(here, Label::Act(act), target);
        }
    }
    let start = b.state("e");
    b.set_start(start);
    b.mark_all_accepting();
    b.build().expect("channel builds")
}

/// Alternating-bit protocol over lossless FIFO channels of the given
/// capacity (≥ 1).  See the [module docs](self) for the expected verdicts.
///
/// Components: a stop-and-wait sender (`send`, then frame `c<bit>` out,
/// then wait for ack `b<bit>`), a data channel (`c*` → `d*`), a receiver
/// (`d<bit>`, then `deliver`, then ack `a<bit>` out), and an ack channel
/// (`a*` → `b*`).  Spec: the two-state `send`·`deliver` loop.  Because the
/// sender never overlaps frames, every capacity yields the same observable
/// behaviour — the corpus's "parameter grows the space, not the behaviour"
/// family.
///
/// # Panics
///
/// Panics if `capacity == 0`.
#[must_use]
pub fn alternating_bit(capacity: usize) -> Protocol {
    let mut sender = Fsp::builder("abp-sender");
    for bit in 0..2 {
        let flip = (bit + 1) % 2;
        sender.transition(&format!("s{bit}"), "send", &format!("s{bit}f"));
        sender.transition(&format!("s{bit}f"), &format!("c{bit}"), &format!("s{bit}w"));
        sender.transition(&format!("s{bit}w"), &format!("b{bit}"), &format!("s{flip}"));
    }
    let s0 = sender.state("s0");
    sender.set_start(s0);
    sender.mark_all_accepting();
    let sender = sender.build().expect("sender builds");

    let mut receiver = Fsp::builder("abp-receiver");
    for bit in 0..2 {
        let flip = (bit + 1) % 2;
        receiver.transition(&format!("r{bit}"), &format!("d{bit}"), &format!("r{bit}d"));
        receiver.transition(&format!("r{bit}d"), "deliver", &format!("r{bit}a"));
        receiver.transition(&format!("r{bit}a"), &format!("a{bit}"), &format!("r{flip}"));
    }
    let r0 = receiver.state("r0");
    receiver.set_start(r0);
    receiver.mark_all_accepting();
    let receiver = receiver.build().expect("receiver builds");

    let data = fifo_channel("abp-data", capacity, ["c0", "c1"], ["d0", "d1"]);
    let ack = fifo_channel("abp-ack", capacity, ["a0", "a1"], ["b0", "b1"]);

    let mut spec = Fsp::builder("abp-spec");
    spec.transition("idle", "send", "busy");
    spec.transition("busy", "deliver", "idle");
    let idle = spec.state("idle");
    spec.set_start(idle);
    spec.mark_all_accepting();
    let spec = spec.build().expect("spec builds");

    Protocol {
        name: format!("abp-c{capacity}"),
        components: vec![sender, data, receiver, ack],
        hidden: ["c0", "c1", "d0", "d1", "a0", "a1", "b0", "b1"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect(),
        spec,
        equivalent: true,
    }
}

/// The alternating-bit protocol with a premature-acknowledgement receiver:
/// the ack goes out *before* `deliver`, so the sender can start the next
/// frame early and `send send` becomes observable — inequivalent to the
/// alternating-bit spec under every weak notion.
///
/// # Panics
///
/// Panics if `capacity == 0`.
#[must_use]
pub fn alternating_bit_premature_ack(capacity: usize) -> Protocol {
    let correct = alternating_bit(capacity);
    let mut receiver = Fsp::builder("abp-receiver-bug");
    for bit in 0..2 {
        let flip = (bit + 1) % 2;
        receiver.transition(&format!("r{bit}"), &format!("d{bit}"), &format!("r{bit}a"));
        receiver.transition(&format!("r{bit}a"), &format!("a{bit}"), &format!("r{bit}d"));
        receiver.transition(&format!("r{bit}d"), "deliver", &format!("r{flip}"));
    }
    let r0 = receiver.state("r0");
    receiver.set_start(r0);
    receiver.mark_all_accepting();
    let receiver = receiver.build().expect("receiver builds");

    let mut components = correct.components.clone();
    components[2] = receiver;
    Protocol {
        name: format!("abp-bug-c{capacity}"),
        components,
        hidden: correct.hidden.clone(),
        spec: correct.spec,
        equivalent: false,
    }
}

/// Unidirectional max-id ring leader election (Chang–Roberts/LCR style) on
/// `n ≥ 2` nodes with single-slot links.  Node `i` (id `i`) first injects
/// its own id into link `i`, then relays: ids larger than its own are
/// forwarded (a node holding a value merges further arrivals to the
/// maximum — only the largest id matters), smaller ids are discarded, and a
/// node receiving its *own* id declares itself leader with the observable
/// action `elect<i>`.  Only the maximum id survives a full circuit, so node
/// `n−1` wins by construction; the spec performs `elect<n−1>` once and
/// stops.
///
/// All link traffic (`s<i>v<v>` = node `i` sends `v` on link `i`,
/// `r<i>v<v>` = node `i+1` receives it) is hidden.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn ring_election(n: usize) -> Protocol {
    assert!(n >= 2, "a ring needs at least two nodes");
    let mut components = Vec::new();
    let mut hidden = Vec::new();
    for i in 0..n {
        let prev = (i + n - 1) % n;
        let mut node = Fsp::builder(&format!("ring-node-{i}"));
        // Inject own id, then listen.  Link `prev` only ever carries ids
        // `prev..n` (node `prev` injects `prev` and forwards only larger
        // ids), and the receive alphabet must match the link's send
        // alphabet exactly: an action present in just one component would
        // interleave freely instead of handshaking.
        node.transition("init", &format!("s{i}v{i}"), "wait");
        for v in prev..n {
            let recv = format!("r{prev}v{v}");
            match v.cmp(&i) {
                std::cmp::Ordering::Equal => {
                    // Own id made it all the way around: win.
                    node.transition("wait", &recv, "leader");
                }
                std::cmp::Ordering::Greater => {
                    // A larger id: hold it for forwarding.
                    node.transition("wait", &recv, &format!("hold{v}"));
                }
                std::cmp::Ordering::Less => {
                    // A smaller id dies here.
                    node.transition("wait", &recv, "wait");
                }
            }
        }
        for v in (i + 1)..n {
            node.transition(&format!("hold{v}"), &format!("s{i}v{v}"), "wait");
            // While holding, keep receiving and keep only the maximum.
            for w in prev..n {
                let recv = format!("r{prev}v{w}");
                let kept = v.max(w);
                if w == i {
                    node.transition(&format!("hold{v}"), &recv, "leader");
                } else {
                    node.transition(&format!("hold{v}"), &recv, &format!("hold{kept}"));
                }
            }
        }
        node.transition("leader", &format!("elect{i}"), "done");
        let init = node.state("init");
        node.set_start(init);
        node.mark_all_accepting();
        components.push(node.build().expect("node builds"));

        // Link i: a single-slot buffer from node i to node i+1, carrying
        // exactly the ids node i can send (its own, or a held larger one).
        let mut link = Fsp::builder(&format!("ring-link-{i}"));
        for v in i..n {
            link.transition("empty", &format!("s{i}v{v}"), &format!("full{v}"));
            link.transition(&format!("full{v}"), &format!("r{i}v{v}"), "empty");
            hidden.push(format!("s{i}v{v}"));
            hidden.push(format!("r{i}v{v}"));
        }
        let empty = link.state("empty");
        link.set_start(empty);
        link.mark_all_accepting();
        components.push(link.build().expect("link builds"));
    }

    let mut spec = Fsp::builder("ring-spec");
    spec.transition("running", &format!("elect{}", n - 1), "elected");
    let running = spec.state("running");
    spec.set_start(running);
    spec.mark_all_accepting();
    let spec = spec.build().expect("spec builds");

    Protocol {
        name: format!("ring-{n}"),
        components,
        hidden,
        spec,
        equivalent: true,
    }
}

/// Builds the 2PC coordinator over `n` participants.  After the observable
/// `begin` it polls `req1..reqn` in order, collects `yes<i>`/`no<i>` votes
/// in order while tracking whether any participant refused, then announces
/// the observable outcome: `commit` on unanimity, `abort` otherwise.
fn tpc_coordinator(n: usize, blind: bool) -> Fsp {
    let mut b = Fsp::builder(if blind {
        "2pc-coord-blind"
    } else {
        "2pc-coord"
    });
    b.transition("idle", "begin", "poll1");
    for i in 1..=n {
        let next = if i == n {
            "collect1-ok".to_owned()
        } else {
            format!("poll{}", i + 1)
        };
        b.transition(&format!("poll{i}"), &format!("req{i}"), &next);
    }
    // Vote-collection states carry the "all yes so far" flag (`ok`/`bad`).
    for i in 1..=n {
        for flag in ["ok", "bad"] {
            let here = format!("collect{i}-{flag}");
            let after_yes = if i == n {
                format!("decide-{flag}")
            } else {
                format!("collect{}-{flag}", i + 1)
            };
            let after_no = if i == n {
                "decide-bad".to_owned()
            } else {
                format!("collect{}-bad", i + 1)
            };
            b.transition(&here, &format!("yes{i}"), &after_yes);
            b.transition(&here, &format!("no{i}"), &after_no);
        }
    }
    if blind {
        // The bug: the outcome ignores the votes entirely.
        b.transition("decide-ok", "commit", "idle");
        b.transition("decide-bad", "commit", "idle");
    } else {
        b.transition("decide-ok", "commit", "idle");
        b.transition("decide-bad", "abort", "idle");
    }
    let idle = b.state("idle");
    b.set_start(idle);
    b.mark_all_accepting();
    b.build().expect("coordinator builds")
}

/// Two-phase-commit skeleton with `n ≥ 1` participants.  Each participant
/// answers its `req<i>` with an **internal** choice (a τ-branch) between
/// `yes<i>` and `no<i>`; the coordinator commits on unanimity and aborts
/// otherwise.  Spec: after `begin`, an internal choice between `commit` and
/// `abort`, then back to idle.  All `req*`/`yes*`/`no*` traffic is hidden.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn two_phase_commit(n: usize) -> Protocol {
    assert!(n >= 1, "2PC needs at least one participant");
    let mut components = vec![tpc_coordinator(n, false)];
    let mut hidden = Vec::new();
    for i in 1..=n {
        let mut p = Fsp::builder(&format!("2pc-part-{i}"));
        p.transition("idle", &format!("req{i}"), "deciding");
        p.transition("deciding", "tau", "willing");
        p.transition("deciding", "tau", "refusing");
        p.transition("willing", &format!("yes{i}"), "idle");
        p.transition("refusing", &format!("no{i}"), "idle");
        let idle = p.state("idle");
        p.set_start(idle);
        p.mark_all_accepting();
        components.push(p.build().expect("participant builds"));
        hidden.push(format!("req{i}"));
        hidden.push(format!("yes{i}"));
        hidden.push(format!("no{i}"));
    }

    let mut spec = Fsp::builder("2pc-spec");
    spec.transition("idle", "begin", "deciding");
    spec.transition("deciding", "tau", "committing");
    spec.transition("deciding", "tau", "aborting");
    spec.transition("committing", "commit", "idle");
    spec.transition("aborting", "abort", "idle");
    let idle = spec.state("idle");
    spec.set_start(idle);
    spec.mark_all_accepting();
    let spec = spec.build().expect("spec builds");

    Protocol {
        name: format!("2pc-{n}"),
        components,
        hidden,
        spec,
        equivalent: true,
    }
}

/// Two-phase commit with a coordinator that **commits regardless of the
/// votes** — the `abort` outcome disappears from the composition, so it is
/// inequivalent to the honest 2PC spec under every weak notion.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn two_phase_commit_blind(n: usize) -> Protocol {
    let honest = two_phase_commit(n);
    let mut components = honest.components.clone();
    components[0] = tpc_coordinator(n, true);
    Protocol {
        name: format!("2pc-blind-{n}"),
        components,
        hidden: honest.hidden.clone(),
        spec: honest.spec,
        equivalent: false,
    }
}

/// The standard corpus the report and the agreement suites iterate:
/// two sizes of each correct family plus the two broken variants.
#[must_use]
pub fn corpus() -> Vec<Protocol> {
    vec![
        alternating_bit(1),
        alternating_bit(2),
        alternating_bit_premature_ack(1),
        ring_election(2),
        ring_election(3),
        two_phase_commit(1),
        two_phase_commit(2),
        two_phase_commit_blind(2),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_equiv::weak::observationally_equivalent;

    #[test]
    fn alternating_bit_meets_its_spec_at_every_capacity() {
        for capacity in 1..=2 {
            let p = alternating_bit(capacity);
            assert!(
                observationally_equivalent(&p.composed(), &p.spec),
                "abp capacity {capacity}"
            );
        }
    }

    #[test]
    fn premature_ack_breaks_the_spec() {
        let p = alternating_bit_premature_ack(1);
        assert!(!observationally_equivalent(&p.composed(), &p.spec));
        // The defect is already a trace defect: `send send` with no deliver.
        let r = ccs_equiv::traces::trace_equivalent(&p.composed(), &p.spec);
        assert!(!r.holds);
    }

    #[test]
    fn ring_elects_exactly_the_max_node() {
        for n in 2..=3 {
            let p = ring_election(n);
            assert!(
                observationally_equivalent(&p.composed(), &p.spec),
                "ring size {n}"
            );
        }
    }

    #[test]
    fn two_phase_commit_meets_its_spec() {
        for n in 1..=2 {
            let p = two_phase_commit(n);
            assert!(
                observationally_equivalent(&p.composed(), &p.spec),
                "2pc with {n} participants"
            );
        }
    }

    #[test]
    fn blind_coordinator_breaks_the_spec() {
        let p = two_phase_commit_blind(2);
        assert!(!observationally_equivalent(&p.composed(), &p.spec));
        assert!(!ccs_equiv::traces::trace_equivalent(&p.composed(), &p.spec).holds);
    }

    #[test]
    fn minimized_composition_is_smaller_and_equivalent() {
        for p in [alternating_bit(2), ring_election(3), two_phase_commit(2)] {
            let full = p.composed();
            let small = p.composed_minimized();
            assert!(small.num_states() <= full.num_states(), "{}", p.name);
            assert!(
                observationally_equivalent(&small, &full),
                "{} minimized ≉ full",
                p.name
            );
            // With all-accepting components the minimized system collapses
            // to (roughly) spec size — the compositional-minimization payoff.
            assert!(
                small.num_states() <= p.spec.num_states() + 2,
                "{}: {} vs spec {}",
                p.name,
                small.num_states(),
                p.spec.num_states()
            );
        }
    }

    #[test]
    fn corpus_verdicts_match_the_declared_flags() {
        for p in corpus() {
            assert_eq!(
                observationally_equivalent(&p.composed(), &p.spec),
                p.equivalent,
                "{}",
                p.name
            );
        }
    }

    #[test]
    fn naive_product_dwarfs_the_reachable_composition() {
        let p = ring_election(3);
        assert!(p.naive_product_states() > p.composed().num_states());
    }
}
