//! Pseudo-random process generation.

use ccs_fsp::{Fsp, Label, StateId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`random_fsp`].
#[derive(Clone, Debug, PartialEq)]
pub struct RandomConfig {
    /// Number of states.
    pub states: usize,
    /// Number of observable actions.
    pub actions: usize,
    /// Expected number of outgoing transitions per state.
    pub transitions_per_state: f64,
    /// Probability that a generated transition is labelled τ.
    pub tau_ratio: f64,
    /// Probability that a state is accepting.
    pub accept_ratio: f64,
    /// Whether to add a spanning chain so every state is reachable from the
    /// start state.
    pub connected: bool,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            states: 64,
            actions: 2,
            transitions_per_state: 2.5,
            tau_ratio: 0.0,
            accept_ratio: 1.0,
            connected: true,
            seed: 0xC55E,
        }
    }
}

impl RandomConfig {
    /// Convenience constructor fixing size and seed, keeping other defaults.
    #[must_use]
    pub fn sized(states: usize, seed: u64) -> Self {
        RandomConfig {
            states,
            seed,
            ..RandomConfig::default()
        }
    }
}

/// Generates a pseudo-random process according to `config`.
///
/// With the default configuration the result is a restricted (all-accepting)
/// observable process, the model most of the paper's lower bounds live in;
/// adjust `tau_ratio`/`accept_ratio` for the general model.
#[must_use]
pub fn random_fsp(config: &RandomConfig) -> Fsp {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = Fsp::builder(&format!("random-{}-{}", config.states, config.seed));
    let states: Vec<StateId> = (0..config.states)
        .map(|i| b.state(&format!("s{i}")))
        .collect();
    let actions: Vec<_> = (0..config.actions.max(1))
        .map(|i| b.action(&format!("a{i}")))
        .collect();
    b.set_start(states[0]);
    if config.connected {
        for i in 1..config.states {
            let from = states[rng.gen_range(0..i)];
            let label = pick_label(&mut rng, &actions, config.tau_ratio);
            b.add_transition(from, label, states[i]);
        }
    }
    let total = (config.transitions_per_state * config.states as f64).round() as usize;
    for _ in 0..total {
        let from = states[rng.gen_range(0..config.states)];
        let to = states[rng.gen_range(0..config.states)];
        let label = pick_label(&mut rng, &actions, config.tau_ratio);
        b.add_transition(from, label, to);
    }
    for &s in &states {
        if rng.gen_bool(config.accept_ratio.clamp(0.0, 1.0)) {
            b.mark_accepting(s);
        }
    }
    b.build().expect("random process has at least one state")
}

fn pick_label(rng: &mut StdRng, actions: &[ccs_fsp::ActionId], tau_ratio: f64) -> Label {
    if tau_ratio > 0.0 && rng.gen_bool(tau_ratio.clamp(0.0, 1.0)) {
        Label::Tau
    } else {
        Label::Act(actions[rng.gen_range(0..actions.len())])
    }
}

/// Generates a complete deterministic process (the deterministic model):
/// exactly one transition per state per action, random targets and
/// acceptance.
#[must_use]
pub fn random_deterministic(states: usize, actions: usize, seed: u64) -> Fsp {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Fsp::builder(&format!("random-dfa-{states}-{seed}"));
    let ids: Vec<StateId> = (0..states).map(|i| b.state(&format!("s{i}"))).collect();
    let acts: Vec<_> = (0..actions.max(1))
        .map(|i| b.action(&format!("a{i}")))
        .collect();
    b.set_start(ids[0]);
    for &s in &ids {
        for &a in &acts {
            let target = ids[rng.gen_range(0..states)];
            b.add_transition(s, Label::Act(a), target);
        }
        if rng.gen_bool(0.5) {
            b.mark_accepting(s);
        }
    }
    b.build().expect("non-empty deterministic process")
}

/// Produces a process bisimilar to `fsp` by construction: every state is
/// duplicated a random number of times (1 or 2) and each transition is
/// redirected to a random copy of its target.  The start state of the result
/// is a copy of the original start state, so the two processes are strongly
/// (hence observationally, failure-, language-) equivalent.
#[must_use]
pub fn bisimilar_variant(fsp: &Fsp, seed: u64) -> Fsp {
    let mut rng = StdRng::seed_from_u64(seed);
    let copies: Vec<usize> = (0..fsp.num_states())
        .map(|_| if rng.gen_bool(0.5) { 2 } else { 1 })
        .collect();
    let mut b = Fsp::builder(&format!("{}|inflated", fsp.name()));
    // copy_ids[i][c] is the builder state for copy c of original state i.
    let mut copy_ids: Vec<Vec<StateId>> = Vec::with_capacity(fsp.num_states());
    for s in fsp.state_ids() {
        let ids = (0..copies[s.index()])
            .map(|c| b.state(&format!("{}#{c}", fsp.state_label(s))))
            .collect::<Vec<_>>();
        copy_ids.push(ids);
    }
    b.set_start(copy_ids[fsp.start().index()][0]);
    for s in fsp.state_ids() {
        for &copy in &copy_ids[s.index()] {
            for var in fsp.extensions(s) {
                b.add_extension(copy, fsp.var_name(*var));
            }
            for t in fsp.transitions(s) {
                let label = match t.label {
                    Label::Tau => Label::Tau,
                    Label::Act(a) => Label::Act(b.action(fsp.action_name(a))),
                };
                let targets = &copy_ids[t.target.index()];
                let target = targets[rng.gen_range(0..targets.len())];
                b.add_transition(copy, label, target);
            }
        }
    }
    b.build().expect("inflation preserves non-emptiness")
}

/// Returns a copy of `fsp` with one randomly chosen transition redirected to
/// a different random target — with high probability the result is *not*
/// equivalent to the original under any of the paper's notions.
///
/// Returns `None` if the process has no transitions or only one state.
#[must_use]
pub fn perturbed_variant(fsp: &Fsp, seed: u64) -> Option<Fsp> {
    if fsp.num_transitions() == 0 || fsp.num_states() < 2 {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let victim = rng.gen_range(0..fsp.num_transitions());
    let mut b = Fsp::builder(&format!("{}|perturbed", fsp.name()));
    let ids: Vec<StateId> = fsp
        .state_ids()
        .map(|s| b.state(&fsp.state_label(s)))
        .collect();
    b.set_start(ids[fsp.start().index()]);
    for s in fsp.state_ids() {
        for var in fsp.extensions(s) {
            b.add_extension(ids[s.index()], fsp.var_name(*var));
        }
    }
    for (idx, (from, label, to)) in fsp.all_transitions().enumerate() {
        let label = match label {
            Label::Tau => Label::Tau,
            Label::Act(a) => Label::Act(b.action(fsp.action_name(a))),
        };
        let mut target = to;
        if idx == victim {
            // Redirect to a different state.
            let offset = rng.gen_range(1..fsp.num_states());
            target = StateId::from_index((to.index() + offset) % fsp.num_states());
        }
        b.add_transition(ids[from.index()], label, ids[target.index()]);
    }
    Some(b.build().expect("perturbation preserves non-emptiness"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_equiv::strong;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let c = RandomConfig::sized(32, 7);
        assert_eq!(random_fsp(&c), random_fsp(&c));
        let other = RandomConfig::sized(32, 8);
        assert_ne!(random_fsp(&c), random_fsp(&other));
    }

    #[test]
    fn connected_processes_are_connected() {
        let c = RandomConfig {
            states: 50,
            transitions_per_state: 1.0,
            ..RandomConfig::default()
        };
        let f = random_fsp(&c);
        assert!(ccs_fsp::reach::is_connected(&f));
        assert_eq!(f.num_states(), 50);
    }

    #[test]
    fn default_config_yields_restricted_observable_processes() {
        let f = random_fsp(&RandomConfig::default());
        let p = f.profile();
        assert!(p.observable && p.restricted);
    }

    #[test]
    fn tau_ratio_introduces_tau_transitions() {
        let c = RandomConfig {
            tau_ratio: 1.0,
            ..RandomConfig::sized(20, 3)
        };
        assert!(random_fsp(&c).has_tau_transitions());
    }

    #[test]
    fn random_deterministic_is_deterministic() {
        let f = random_deterministic(20, 3, 11);
        assert!(f.profile().deterministic);
        assert_eq!(f.num_transitions(), 20 * 3);
    }

    #[test]
    fn bisimilar_variant_is_strongly_equivalent() {
        let f = random_fsp(&RandomConfig::sized(24, 5));
        let g = bisimilar_variant(&f, 99);
        assert!(g.num_states() >= f.num_states());
        assert!(strong::strong_equivalent(&f, &g));
    }

    #[test]
    fn bisimilar_variant_handles_tau_and_extensions() {
        let c = RandomConfig {
            tau_ratio: 0.3,
            accept_ratio: 0.5,
            ..RandomConfig::sized(16, 21)
        };
        let f = random_fsp(&c);
        let g = bisimilar_variant(&f, 100);
        assert!(ccs_equiv::weak::observationally_equivalent(&f, &g));
    }

    #[test]
    fn perturbed_variant_changes_exactly_one_transition() {
        let f = random_fsp(&RandomConfig::sized(12, 2));
        let g = perturbed_variant(&f, 1).unwrap();
        assert_eq!(f.num_states(), g.num_states());
        // Same number of transitions unless the redirect created a duplicate.
        assert!(g.num_transitions() <= f.num_transitions());
        assert!(g.num_transitions() + 1 >= f.num_transitions());
    }

    #[test]
    fn perturbed_variant_rejects_degenerate_inputs() {
        let mut b = Fsp::builder("one");
        b.state("only");
        let single = b.build().unwrap();
        assert!(perturbed_variant(&single, 0).is_none());
    }
}
