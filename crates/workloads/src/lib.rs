//! Workload generators for the `ccs-equiv` benchmark harness.
//!
//! Three flavours of inputs are produced:
//!
//! * [`random`] — pseudo-random processes with controllable size, alphabet,
//!   transition density, τ-ratio and acceptance ratio, plus generators for
//!   *pairs* of processes that are bisimilar by construction (state
//!   duplication) or almost-surely inequivalent (single-transition
//!   perturbation);
//! * [`families`] — deterministic structured families (chains, cycles,
//!   complete trees, τ-chains, counters and a small vending machine) whose
//!   equivalence classes are known analytically, used both as test oracles
//!   and as scaling series for the benches;
//! * [`instances`] — the same topologies emitted directly as
//!   generalized-partitioning instances through the `ccs-partition` graph
//!   builder, feeding the solver-kernel benches and property tests;
//! * [`queries`] — batched-query workloads (a shared process plus a list of
//!   state pairs), the input shape of the `EquivSession` engine and the
//!   `weak_pipeline` bench;
//! * [`mutating_queries`] — base model × edit stream × query mix: disjoint
//!   gadget copies with a seed-deterministic toggle sequence of
//!   class-redundant and refining edits, at both the process level (for
//!   `EquivSession::apply_delta` and the server's `mutate` op) and the
//!   partition-kernel level (for `DeltaRefiner` and the DELTA report
//!   table);
//! * [`protocols`] — a documented distributed-protocols corpus
//!   (alternating-bit, ring leader election, two-phase commit, plus broken
//!   variants) with parallel components, hiding sets and observable
//!   specifications of known verdicts — the workload for the on-the-fly
//!   engine and compositional minimization.
//!
//! Where this crate sits in the workspace — the crate map, the
//! end-to-end data flow, and the notion-to-procedure table — is laid out
//! in `ARCHITECTURE.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod families;
pub mod instances;
pub mod mutating_queries;
pub mod protocols;
pub mod queries;
pub mod random;

pub use random::RandomConfig;
