//! Generalized-partitioning instances emitted directly through the
//! `ccs-partition` graph builder.
//!
//! These are the partition-kernel counterparts of the process-level
//! [`families`](crate::families) and [`random`](crate::random) generators:
//! the same topologies, but expressed as [`Instance`] edge lists so the
//! solver benches (`partition_core`) and cross-solver property tests can
//! exercise the refinement kernels without going through an FSP build and
//! the Lemma 3.1 reduction first.  Every generator funnels its edges through
//! the instance's [`GraphBuilder`](ccs_partition::GraphBuilder), so the
//! solvers see the flat, deduplicated CSR layout.

use ccs_partition::Instance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A single-relation chain `0 → 1 → … → n-1`: every element ends up in its
/// own block — the family on which the naive method's `O(n·m)` bound is
/// tight and refinement runs for the maximal number of rounds.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn chain(n: usize) -> Instance {
    assert!(n > 0, "a chain needs at least one element");
    let mut inst = Instance::new(n, 1);
    inst.reserve_edges(n.saturating_sub(1));
    for i in 0..n - 1 {
        inst.add_edge(0, i, i + 1);
    }
    inst
}

/// A single-relation cycle of `n` elements: everything collapses to one
/// block — the best case for partition refinement.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn cycle(n: usize) -> Instance {
    assert!(n > 0, "a cycle needs at least one element");
    let mut inst = Instance::new(n, 1);
    inst.reserve_edges(n);
    for i in 0..n {
        inst.add_edge(0, i, (i + 1) % n);
    }
    inst
}

/// A complete binary tree of the given depth over two relations (`l` and
/// `r` children): the coarsest partition has one block per level.
#[must_use]
pub fn binary_tree(depth: usize) -> Instance {
    // Nodes indexed 1..=total; node i has children 2i, 2i+1.
    let total = (1usize << (depth + 1)) - 1;
    let mut inst = Instance::new(total, 2);
    inst.reserve_edges(total - 1);
    for i in 1..=total {
        let left = 2 * i;
        let right = 2 * i + 1;
        if right <= total {
            inst.add_edge(0, i - 1, left - 1);
            inst.add_edge(1, i - 1, right - 1);
        }
    }
    inst
}

/// A pseudo-random multi-relation instance with `edges` edges drawn
/// uniformly (duplicates possible — the builder removes them), optionally
/// with a two-class initial partition.  Deterministic in `seed`.
#[must_use]
pub fn random(num_elements: usize, num_labels: usize, edges: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inst = Instance::new(num_elements, num_labels.max(1));
    inst.reserve_edges(edges);
    for _ in 0..edges {
        let l = rng.gen_range(0..num_labels.max(1));
        let from = rng.gen_range(0..num_elements);
        let to = rng.gen_range(0..num_elements);
        inst.add_edge(l, from, to);
    }
    inst
}

/// A dense pseudo-random instance: `degree` successor draws per element per
/// relation (so ≈ `degree · num_labels · n` edges before deduplication, and
/// fan-out bounded by `degree`), with elements spread round-robin over
/// `initial_classes` initial blocks (pass `1` for the trivial initial
/// partition).  The initial classes keep refinement from collapsing after a
/// round or two — a dense uniform graph with one initial block is
/// near-homogeneous — so the per-splitter preimage scans genuinely dominate.
/// This is the scaling family of the report's PAR table and the
/// `partition_par` bench: those scans are exactly the work
/// [`ccs_partition::par`] shards across threads, while the bounded fan-out
/// keeps the Kanellakis–Smolka `O(c²·n·log n)` charge honest.
/// Deterministic in `seed`.
#[must_use]
pub fn dense_random(
    num_elements: usize,
    num_labels: usize,
    degree: usize,
    initial_classes: usize,
    seed: u64,
) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let labels = num_labels.max(1);
    let mut inst = Instance::new(num_elements, labels);
    inst.reserve_edges(num_elements * labels * degree);
    for x in 0..num_elements {
        inst.set_initial_block(x, x % initial_classes.max(1));
        for l in 0..labels {
            for _ in 0..degree {
                inst.add_edge(l, x, rng.gen_range(0..num_elements));
            }
        }
    }
    inst
}

/// A complete deterministic instance (`fₗ : S → S`, the Section 3 special
/// case): exactly one edge per element per relation, with a random two-class
/// initial partition — the shape on which Hopcroft's algorithm applies.
/// Deterministic in `seed`.
#[must_use]
pub fn complete_deterministic(num_elements: usize, num_labels: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inst = Instance::new(num_elements, num_labels.max(1));
    inst.reserve_edges(num_elements * num_labels.max(1));
    for x in 0..num_elements {
        inst.set_initial_block(x, usize::from(rng.gen_bool(0.5)));
        for l in 0..num_labels.max(1) {
            inst.add_edge(l, x, rng.gen_range(0..num_elements));
        }
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_partition::{solve, Algorithm};

    #[test]
    fn chain_fully_discriminates() {
        let inst = chain(8);
        assert_eq!(inst.num_edges(), 7);
        assert_eq!(inst.max_fanout(), 1);
        let p = solve(&inst, Algorithm::KanellakisSmolka);
        assert_eq!(p.num_blocks(), 8);
    }

    #[test]
    fn cycle_collapses() {
        let inst = cycle(9);
        assert_eq!(inst.num_edges(), 9);
        let p = solve(&inst, Algorithm::PaigeTarjan);
        assert_eq!(p.num_blocks(), 1);
    }

    #[test]
    fn binary_tree_has_one_block_per_level() {
        let inst = binary_tree(3);
        assert_eq!(inst.num_elements(), 15);
        assert_eq!(inst.num_edges(), 14);
        let p = solve(&inst, Algorithm::KanellakisSmolka);
        assert_eq!(p.num_blocks(), 4);
    }

    #[test]
    fn random_is_deterministic_in_the_seed() {
        let a = random(20, 2, 50, 7);
        let b = random(20, 2, 50, 7);
        assert_eq!(a, b);
        assert_ne!(a, random(20, 2, 50, 8));
        // Duplicates are deduplicated by the builder.
        assert!(a.num_edges() <= 50);
    }

    #[test]
    fn dense_random_is_dense_and_fanout_bounded() {
        let inst = dense_random(32, 2, 4, 4, 9);
        assert_eq!(inst, dense_random(32, 2, 4, 4, 9));
        assert_eq!(
            inst.initial_blocks().iter().copied().max(),
            Some(3),
            "four initial classes"
        );
        assert!(inst.max_fanout() <= 4);
        // Duplicates may collapse, but the draw count is the upper bound.
        assert!(inst.num_edges() <= 32 * 2 * 4);
        assert!(inst.num_edges() > 32);
        let p = solve(&inst, Algorithm::KanellakisSmolkaParallel { threads: 2 });
        assert_eq!(p, solve(&inst, Algorithm::KanellakisSmolka));
        assert!(inst.is_consistent_stable(&p));
    }

    #[test]
    fn complete_deterministic_has_unit_fanout() {
        let inst = complete_deterministic(16, 2, 3);
        assert_eq!(inst.max_fanout(), 1);
        assert_eq!(inst.num_edges(), 32);
        let p = solve(&inst, Algorithm::PaigeTarjan);
        assert!(inst.is_consistent_stable(&p));
    }
}
