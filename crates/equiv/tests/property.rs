//! Property-based tests for the equivalence checkers: the fixed-point
//! characterisations of Proposition 2.2.1, the implication hierarchy of
//! Proposition 2.2.3, and agreement between independently implemented
//! checkers, on arbitrary small processes.

use ccs_equiv::{failures, kobs, language, limited, relation, strong, traces, weak};
use ccs_fsp::{Fsp, Label, StateId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RawProcess {
    states: usize,
    edges: Vec<(usize, usize, usize)>, // (from, label, to); label 0 = tau
    accepting: Vec<bool>,
    tau_allowed: bool,
}

fn process_strategy(tau_allowed: bool, all_accepting: bool) -> impl Strategy<Value = RawProcess> {
    (2usize..8).prop_flat_map(move |states| {
        let edges = proptest::collection::vec((0..states, 0usize..3, 0..states), 1..20);
        let accepting = proptest::collection::vec(any::<bool>(), states);
        (Just(states), edges, accepting).prop_map(move |(states, edges, accepting)| RawProcess {
            states,
            edges,
            accepting: if all_accepting {
                vec![true; states]
            } else {
                accepting
            },
            tau_allowed,
        })
    })
}

fn build(raw: &RawProcess) -> Fsp {
    let mut b = Fsp::builder("prop");
    let ids: Vec<StateId> = (0..raw.states).map(|i| b.state(&format!("s{i}"))).collect();
    let a0 = b.action("a");
    let a1 = b.action("b");
    for &(from, label, to) in &raw.edges {
        let l = match label {
            0 if raw.tau_allowed => Label::Tau,
            1 => Label::Act(a0),
            _ => Label::Act(a1),
        };
        b.add_transition(ids[from], l, ids[to]);
    }
    for (i, &acc) in raw.accepting.iter().enumerate() {
        if acc {
            b.mark_accepting(ids[i]);
        }
    }
    b.build().expect("generated process is non-empty")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The computed strong partition is a strong bisimulation (a Σ-fixed-point)
    /// and the weak partition is a Σ∪{ε}-fixed-point (Proposition 2.2.1(a)).
    #[test]
    fn computed_partitions_are_fixed_points(raw in process_strategy(true, false)) {
        let fsp = build(&raw);
        let sp = strong::strong_partition(&fsp);
        prop_assert!(relation::is_strong_bisimulation(
            &fsp,
            &relation::partition_to_pairs(sp.partition())
        ));
        let wp = weak::weak_partition(&fsp);
        prop_assert!(relation::is_weak_bisimulation(
            &fsp,
            &relation::partition_to_pairs(wp.partition())
        ));
    }

    /// Strong equivalence refines observational equivalence, which refines
    /// the ≃ₖ hierarchy at every level.
    #[test]
    fn strong_refines_weak_refines_limited(raw in process_strategy(true, false)) {
        let fsp = build(&raw);
        let sp = strong::strong_partition(&fsp);
        let wp = weak::weak_partition(&fsp);
        prop_assert!(sp.partition().refines(wp.partition()));
        let h = limited::limited_hierarchy(&fsp);
        prop_assert_eq!(h.limit(), wp.partition());
        for level in h.levels() {
            prop_assert!(wp.partition().refines(level));
        }
    }

    /// Proposition 2.2.3(a) on restricted processes: ≈ ⟹ ≡F ⟹ ≈₁, and ≈₁
    /// coincides with trace/language equivalence.
    #[test]
    fn implication_hierarchy_restricted(raw in process_strategy(false, true)) {
        let fsp = build(&raw);
        let wp = weak::weak_partition(&fsp);
        for p in fsp.state_ids() {
            for q in fsp.state_ids() {
                if p >= q {
                    continue;
                }
                let observational = wp.equivalent(p, q);
                let failure = failures::failure_equivalent_states(&fsp, p, q).equivalent;
                let lang = language::language_equivalent_states(&fsp, p, q).holds;
                let trace = traces::trace_equivalent_states(&fsp, p, q).holds;
                let k1 = kobs::kobs_equivalent_states(&fsp, p, q, 1);
                if observational {
                    prop_assert!(failure);
                }
                if failure {
                    prop_assert!(lang);
                }
                prop_assert_eq!(lang, trace);
                prop_assert_eq!(lang, k1);
            }
        }
    }

    /// Language-equivalence witnesses really are distinguishing words, and
    /// acceptance agrees with the bounded enumeration of the language.
    #[test]
    fn language_witnesses_are_sound(raw in process_strategy(true, false)) {
        let fsp = build(&raw);
        let states: Vec<StateId> = fsp.state_ids().collect();
        let p = states[0];
        let q = states[raw.states - 1];
        let result = language::language_equivalent_states(&fsp, p, q);
        if let Some(w) = &result.witness {
            let word: Vec<&str> = w.iter().map(String::as_str).collect();
            prop_assert!(!result.holds);
            prop_assert_ne!(
                language::accepts(&fsp, p, &word),
                language::accepts(&fsp, q, &word)
            );
        }
        // Bounded-language agreement: if the checker says equal, the words of
        // length ≤ 4 agree.
        if result.holds {
            prop_assert_eq!(
                language::language_up_to(&fsp, p, 4),
                language::language_up_to(&fsp, q, 4)
            );
        }
    }

    /// The strong quotient is strongly equivalent to the original and minimal
    /// (quotienting twice changes nothing).
    #[test]
    fn quotient_is_idempotent(raw in process_strategy(true, false)) {
        let fsp = build(&raw);
        let q = strong::quotient(&fsp);
        prop_assert!(strong::strong_equivalent(&fsp, &q));
        prop_assert_eq!(strong::quotient(&q).num_states(), q.num_states());
    }
}
