//! The determinized classification oracle: `EquivSession::classify_all`
//! for every PSPACE notion (language, trace, failure) must produce exactly
//! the partition of the pre-determinization representative scan — the old
//! per-pair subset-construction path kept alive as
//! `EquivSession::representative_scan_partition` — across structured
//! workload families (including the exponential-blowup family), random
//! processes, and every refinement solver.

use ccs_equiv::determinize::{determinized_partition, DetNotion, SubsetAutomaton, SubsetRepr};
use ccs_equiv::{EquivSession, Equivalence};
use ccs_fsp::saturate::{tau_closure, SaturatedView};
use ccs_fsp::Fsp;
use ccs_partition::Algorithm;
use ccs_workloads::{families, random, RandomConfig};
use proptest::prelude::*;

const NOTIONS: [Equivalence; 3] = [
    Equivalence::Language,
    Equivalence::Trace,
    Equivalence::Failure,
];

fn assert_det_matches_oracle(fsp: &Fsp, label: &str) {
    let session = EquivSession::for_process(fsp);
    for notion in NOTIONS {
        let oracle = session.representative_scan_partition(notion);
        let det = session.classify_all(notion);
        assert_eq!(det.as_ref(), &oracle, "{label}: {notion}");
    }
}

#[test]
fn determinized_classification_matches_oracle_on_families() {
    for n in [1usize, 2, 5, 9, 16] {
        assert_det_matches_oracle(&families::chain(n, "a"), "chain");
        assert_det_matches_oracle(&families::cycle(n, "a"), "cycle");
        assert_det_matches_oracle(&families::tau_chain(n), "tau-chain");
        assert_det_matches_oracle(&families::counter(n), "counter");
    }
    for depth in [0usize, 2, 3] {
        assert_det_matches_oracle(&families::binary_tree(depth), "tree");
    }
    assert_det_matches_oracle(&families::vending_machine(true), "vending-internal");
    assert_det_matches_oracle(&families::vending_machine(false), "vending-external");
    for (n, w) in [(6usize, 2usize), (12, 3), (20, 4), (33, 4)] {
        assert_det_matches_oracle(&families::det_blowup(n, w), "blowup");
    }
}

/// Every refinement solver, run over the product DFA of the shared subset
/// automaton, yields the same (canonical) partition — and it is the
/// oracle's.
#[test]
fn every_solver_classifies_the_blowup_family_identically() {
    let fsp = families::det_blowup(14, 3);
    let oracle_session = EquivSession::for_process(&fsp);
    for notion in NOTIONS {
        let oracle = oracle_session.representative_scan_partition(notion);
        for alg in Algorithm::ALL {
            let session = EquivSession::for_process(&fsp);
            assert_eq!(
                session.partition_with(notion, alg).as_ref(),
                &oracle,
                "{notion} via {alg}"
            );
        }
    }
}

/// The member-representation split must be invisible everywhere above the
/// byte layout: dense-bitset and sparse-run arenas intern the same ids in
/// the same order, compute the same transition table, and classify every
/// notion identically.
fn assert_reprs_agree(fsp: &Fsp, label: &str) {
    let closure = tau_closure(fsp);
    let view = SaturatedView::build(fsp, &closure);
    let mut dense = SubsetAutomaton::with_repr(fsp, SubsetRepr::Dense);
    let mut sparse = SubsetAutomaton::with_repr(fsp, SubsetRepr::Sparse);
    for s in fsp.state_ids() {
        assert_eq!(
            dense.start(&view, s),
            sparse.start(&view, s),
            "{label}: {s}"
        );
    }
    dense.explore(&view);
    sparse.explore(&view);
    assert_eq!(dense.num_subsets(), sparse.num_subsets(), "{label}");
    assert_eq!(
        dense.transition_table(),
        sparse.transition_table(),
        "{label}"
    );
    for id in 0..u32::try_from(dense.num_subsets()).unwrap() {
        assert_eq!(dense.subset(id), sparse.subset(id), "{label}: subset {id}");
    }
    for notion in [DetNotion::Language, DetNotion::Trace, DetNotion::Failure] {
        let mut d = SubsetAutomaton::with_repr(fsp, SubsetRepr::Dense);
        let mut s = SubsetAutomaton::with_repr(fsp, SubsetRepr::Sparse);
        assert_eq!(
            determinized_partition(
                &mut d,
                &view,
                notion,
                fsp.num_states(),
                Algorithm::PaigeTarjan
            ),
            determinized_partition(
                &mut s,
                &view,
                notion,
                fsp.num_states(),
                Algorithm::PaigeTarjan
            ),
            "{label}: {notion:?}"
        );
    }
}

#[test]
fn dense_and_sparse_reprs_agree_on_the_blowup_family() {
    for (n, w) in [(6usize, 2usize), (14, 3), (24, 4)] {
        assert_reprs_agree(&families::det_blowup(n, w), "blowup");
    }
    assert_reprs_agree(&families::tau_chain(9), "tau-chain");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Bitset and sorted-run subset interning build identical arenas and
    /// identical verdicts on random processes.
    #[test]
    fn dense_and_sparse_reprs_agree_on_random_processes(
        states in 2usize..10,
        seed in 0u64..300,
        tau in 0usize..2,
    ) {
        let fsp = random::random_fsp(&RandomConfig {
            tau_ratio: if tau == 1 { 0.3 } else { 0.0 },
            accept_ratio: 0.5,
            ..RandomConfig::sized(states, seed)
        });
        assert_reprs_agree(&fsp, "random");
    }

    /// Random processes, general and restricted: the determinized engine
    /// and the representative scan agree on all three notions at every
    /// sampled size.
    #[test]
    fn determinized_classification_matches_oracle_on_random_processes(
        states in 2usize..10,
        seed in 0u64..400,
        tau in 0usize..2,
        accepting_all in any::<bool>(),
    ) {
        let fsp = random::random_fsp(&RandomConfig {
            tau_ratio: if tau == 1 { 0.25 } else { 0.0 },
            accept_ratio: if accepting_all { 1.0 } else { 0.5 },
            ..RandomConfig::sized(states, seed)
        });
        let session = EquivSession::for_process(&fsp);
        for notion in NOTIONS {
            let oracle = session.representative_scan_partition(notion);
            let det = session.classify_all(notion);
            prop_assert_eq!(det.as_ref(), &oracle, "{}", notion);
        }
    }

    /// Pair queries through the memoized pair cache agree with the
    /// determinized partition and with the one-shot free functions.
    #[test]
    fn pair_cache_agrees_with_classification(
        states in 2usize..8,
        seed in 0u64..200,
    ) {
        let fsp = random::random_fsp(&RandomConfig {
            tau_ratio: 0.2,
            accept_ratio: 0.5,
            ..RandomConfig::sized(states, seed)
        });
        for notion in NOTIONS {
            // Fresh session: pair queries go through the PairCache.
            let pair_session = EquivSession::for_process(&fsp);
            let mut answers = Vec::new();
            for p in fsp.state_ids() {
                for q in fsp.state_ids() {
                    answers.push(pair_session.equivalent_states(p, q, notion));
                }
            }
            // Second session: force the partition, then compare lookups.
            let class_session = EquivSession::for_process(&fsp);
            let partition = class_session.classify_all(notion);
            let mut it = answers.iter();
            for p in fsp.state_ids() {
                for q in fsp.state_ids() {
                    let expected = partition.same_block(p.index(), q.index());
                    prop_assert_eq!(*it.next().unwrap(), expected, "{}: {} vs {}", notion, p, q);
                }
            }
        }
    }
}
