//! Agreement and witness-replay suite for the on-the-fly engine.
//!
//! Two properties are enforced over structured families, the protocol
//! corpus and proptest-random processes, for every determinizable notion:
//!
//! 1. **Agreement** — `onthefly::compare` returns exactly the verdict of
//!    the materialized checkers (`language` / `traces` / `failures`), which
//!    materialize the full subset space before refining: independent code
//!    paths from the lazy synchronized BFS.
//! 2. **Replay** — every refutation's witness, evaluated through the
//!    *semantics* of each side (acceptance, weak string derivatives, weak
//!    enabledness — none of which the search uses), actually distinguishes
//!    the two processes.

use ccs_equiv::{failures, language, onthefly, traces, EquivSession, Equivalence};
use ccs_fsp::saturate::{tau_closure, weak_string_derivatives, weakly_enabled_actions, TauClosure};
use ccs_fsp::{ops, ActionId, Fsp, StateId};
use ccs_workloads::{families, protocols, random, RandomConfig};
use proptest::prelude::*;

const NOTIONS: [Equivalence; 3] = [
    Equivalence::Language,
    Equivalence::Trace,
    Equivalence::Failure,
];

fn word_ids(fsp: &Fsp, word: &[String]) -> Vec<ActionId> {
    word.iter()
        .map(|name| {
            fsp.action_id(name)
                .unwrap_or_else(|| panic!("witness action {name:?} unknown to the process"))
        })
        .collect()
}

fn has_trace(fsp: &Fsp, closure: &TauClosure, p: StateId, word: &[String]) -> bool {
    !weak_string_derivatives(fsp, closure, p, &word_ids(fsp, word)).is_empty()
}

fn has_failure(
    fsp: &Fsp,
    closure: &TauClosure,
    p: StateId,
    trace: &[String],
    refusal: &[String],
) -> bool {
    let refusal_ids = word_ids(fsp, refusal);
    weak_string_derivatives(fsp, closure, p, &word_ids(fsp, trace))
        .into_iter()
        .any(|d| {
            let enabled = weakly_enabled_actions(fsp, closure, d);
            refusal_ids.iter().all(|a| !enabled.contains(a))
        })
}

/// The materialized checker's verdict for `notion` on the two start states
/// of the union — the oracle the on-the-fly engine must agree with.
fn materialized_verdict(fsp: &Fsp, p: StateId, q: StateId, notion: Equivalence) -> bool {
    match notion {
        Equivalence::Language => language::language_equivalent_states(fsp, p, q).holds,
        Equivalence::Trace => traces::trace_equivalent_states(fsp, p, q).holds,
        Equivalence::Failure => failures::failure_equivalent_states(fsp, p, q).equivalent,
        _ => unreachable!("only determinizable notions are exercised here"),
    }
}

/// Asserts agreement with the materialized checkers and, on refutation,
/// replays the witness through the independent semantics.
fn assert_otf_agrees_and_witnesses_replay(left: &Fsp, right: &Fsp) {
    let union = ops::disjoint_union(left, right);
    let (p, q) = ops::union_starts(&union, left, right);
    let fsp = &union.fsp;
    let closure = tau_closure(fsp);
    for notion in NOTIONS {
        let outcome = onthefly::compare(left, right, notion).expect("determinizable notion");
        assert_eq!(
            outcome.equivalent,
            materialized_verdict(fsp, p, q, notion),
            "on-the-fly {notion} disagrees with the materialized checker"
        );
        if outcome.equivalent {
            assert!(
                outcome.witness.is_none(),
                "{notion}: witness on equivalence"
            );
            continue;
        }
        let witness = outcome
            .witness
            .unwrap_or_else(|| panic!("{notion}: refutation without a witness"));
        match notion {
            Equivalence::Language => {
                let word: Vec<&str> = witness.trace.iter().map(String::as_str).collect();
                assert_ne!(
                    language::accepts(fsp, p, &word),
                    language::accepts(fsp, q, &word),
                    "language witness {word:?} does not distinguish"
                );
            }
            Equivalence::Trace => {
                assert_ne!(
                    has_trace(fsp, &closure, p, &witness.trace),
                    has_trace(fsp, &closure, q, &witness.trace),
                    "trace witness {:?} does not distinguish",
                    witness.trace
                );
            }
            Equivalence::Failure => {
                let refusal = witness
                    .refusal
                    .as_ref()
                    .expect("failure witnesses carry a refusal set");
                assert_ne!(
                    has_failure(fsp, &closure, p, &witness.trace, refusal),
                    has_failure(fsp, &closure, q, &witness.trace, refusal),
                    "failure witness ({:?}, {refusal:?}) does not distinguish",
                    witness.trace
                );
            }
            _ => unreachable!(),
        }
    }
}

#[test]
fn otf_agrees_on_structured_families() {
    let cases: Vec<(Fsp, Fsp)> = vec![
        (families::chain(4, "a"), families::chain(6, "a")),
        (families::chain(5, "a"), families::chain(5, "a")),
        (families::counter(2), families::counter(3)),
        (families::counter(4), families::counter(4)),
        (
            families::vending_machine(true),
            families::vending_machine(false),
        ),
        (families::tau_chain(5), families::tau_chain(1)),
        (families::binary_tree(2), families::chain(3, "l")),
        (families::det_blowup(12, 3), families::det_blowup(14, 3)),
        (families::det_blowup(8, 3), families::chain(8, "a")),
    ];
    for (left, right) in &cases {
        assert_otf_agrees_and_witnesses_replay(left, right);
        assert_otf_agrees_and_witnesses_replay(right, left);
    }
}

#[test]
fn otf_agrees_on_the_protocol_corpus() {
    for protocol in protocols::corpus() {
        let composed = protocol.composed();
        assert_otf_agrees_and_witnesses_replay(&composed, &protocol.spec);
        // The compositionally minimized system must produce the same
        // verdicts — minimization preserves all the determinizable notions
        // exercised here (they are implied by ≈ on these models).
        let minimized = protocol.composed_minimized();
        for notion in NOTIONS {
            let full = onthefly::compare(&composed, &protocol.spec, notion).unwrap();
            let small = onthefly::compare(&minimized, &protocol.spec, notion).unwrap();
            assert_eq!(
                full.equivalent, small.equivalent,
                "{}/{notion}: minimized composition changed the verdict",
                protocol.name
            );
        }
    }
}

#[test]
fn broken_protocol_witnesses_explain_the_defect() {
    // The premature-ack bug lets a second `send` overtake `deliver`; the
    // trace witness against the spec must show it.
    let bug = protocols::alternating_bit_premature_ack(1);
    let outcome = onthefly::compare(&bug.composed(), &bug.spec, Equivalence::Trace).unwrap();
    assert!(!outcome.equivalent);
    let witness = outcome.witness.unwrap();
    assert!(
        witness.trace.iter().filter(|a| *a == "send").count() >= 2,
        "expected a double-send trace, got {:?}",
        witness.trace
    );
}

#[test]
fn session_on_the_fly_agrees_with_batched_queries() {
    // Interleave on-the-fly and cached-partition queries on one session:
    // both answer from (and feed) the same arena and caches.
    let fsp = families::det_blowup(10, 3);
    let session = EquivSession::for_process(&fsp);
    let states: Vec<StateId> = (0..fsp.num_states()).map(StateId::from_index).collect();
    for notion in NOTIONS {
        for &p in &states {
            for &q in &states {
                let otf = session.on_the_fly(notion, p, q).unwrap();
                assert_eq!(
                    otf.equivalent,
                    session.equivalent_states(p, q, notion),
                    "{notion}: session OTF disagrees with equivalent_states for \
                     ({p:?}, {q:?})"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// Random general processes: agreement + replay for every notion and
    /// both argument orders.
    #[test]
    fn otf_agrees_on_random_processes(
        states in 2usize..9,
        seed in 0u64..400,
        tau in 0usize..2,
    ) {
        let config = RandomConfig {
            tau_ratio: if tau == 1 { 0.3 } else { 0.0 },
            accept_ratio: 0.5,
            ..RandomConfig::sized(states, seed)
        };
        let left = random::random_fsp(&config);
        let right = random::random_fsp(&RandomConfig {
            seed: seed.wrapping_add(1),
            ..config
        });
        assert_otf_agrees_and_witnesses_replay(&left, &right);
        assert_otf_agrees_and_witnesses_replay(&right, &left);
    }
}
