//! Witness-validity tests: every negative witness returned by the
//! `language` / `traces` / `failures` checkers (and `dfa_equiv` in the
//! partition core) is replayed through both sides and must actually
//! distinguish them.
//!
//! The checkers construct witnesses on the fly during their synchronized
//! subset searches; these tests close the loop by evaluating the claimed
//! distinguishing word/failure pair against the *semantics* of each side
//! (membership, string derivatives, weak enabledness) — independent code
//! paths from the searches that produced them.

use ccs_equiv::{failures, language, traces};
use ccs_fsp::saturate::{tau_closure, weak_string_derivatives, weakly_enabled_actions, TauClosure};
use ccs_fsp::{ops, ActionId, Fsp, StateId};
use ccs_partition::{dfa_equiv, Dfa};
use ccs_workloads::{families, random, RandomConfig};
use proptest::prelude::*;

/// Translates a witness word of action names into ids of the union process;
/// a name unknown to the union cannot label any transition, which the
/// checkers never emit.
fn word_ids(fsp: &Fsp, word: &[String]) -> Vec<ActionId> {
    word.iter()
        .map(|name| {
            fsp.action_id(name)
                .unwrap_or_else(|| panic!("witness action {name:?} unknown to the process"))
        })
        .collect()
}

/// Whether `word` is a trace of `p` (some weak derivative exists), against
/// a caller-provided τ-closure.
fn has_trace(fsp: &Fsp, closure: &TauClosure, p: StateId, word: &[String]) -> bool {
    !weak_string_derivatives(fsp, closure, p, &word_ids(fsp, word)).is_empty()
}

/// Whether `(trace, refusal)` is a failure of `p`: some weak
/// `trace`-derivative refuses every action of `refusal`.
fn has_failure(
    fsp: &Fsp,
    closure: &TauClosure,
    p: StateId,
    trace: &[String],
    refusal: &[String],
) -> bool {
    let refusal_ids = word_ids(fsp, refusal);
    weak_string_derivatives(fsp, closure, p, &word_ids(fsp, trace))
        .into_iter()
        .any(|d| {
            let enabled = weakly_enabled_actions(fsp, closure, d);
            refusal_ids.iter().all(|a| !enabled.contains(a))
        })
}

/// Asserts that whatever the three checkers say about `(left, right)` is
/// backed by a replayable witness when negative.
fn assert_witnesses_valid(left: &Fsp, right: &Fsp) {
    let union = ops::disjoint_union(left, right);
    let (p, q) = ops::union_starts(&union, left, right);
    let fsp = &union.fsp;
    // One closure for every replay below (the checkers build their own).
    let closure = tau_closure(fsp);

    let lang = language::language_equivalent_states(fsp, p, q);
    if !lang.holds {
        let w = lang
            .witness
            .expect("negative language result carries a witness");
        let wa: Vec<&str> = w.iter().map(String::as_str).collect();
        assert_ne!(
            language::accepts(fsp, p, &wa),
            language::accepts(fsp, q, &wa),
            "language witness {w:?} does not distinguish"
        );
    }

    let tr = traces::trace_equivalent_states(fsp, p, q);
    if !tr.holds {
        let w = tr.witness.expect("negative trace result carries a witness");
        assert_ne!(
            has_trace(fsp, &closure, p, &w),
            has_trace(fsp, &closure, q, &w),
            "trace witness {w:?} does not distinguish"
        );
    }

    let fl = failures::failure_equivalent_states(fsp, p, q);
    if !fl.equivalent {
        let w = fl
            .witness
            .expect("negative failure result carries a witness");
        assert_ne!(
            has_failure(fsp, &closure, p, &w.trace, &w.refusal),
            has_failure(fsp, &closure, q, &w.trace, &w.refusal),
            "failure witness ({:?}, {:?}) does not distinguish",
            w.trace,
            w.refusal
        );
    }

    // Consistency across the three notions' verdicts is covered elsewhere;
    // here only witness validity matters.
}

#[test]
fn witnesses_distinguish_on_structured_families() {
    let cases: Vec<(Fsp, Fsp)> = vec![
        (families::chain(4, "a"), families::chain(6, "a")),
        (families::counter(2), families::counter(3)),
        (families::counter(4), families::counter(4)),
        (
            families::vending_machine(true),
            families::vending_machine(false),
        ),
        (families::tau_chain(5), families::tau_chain(1)),
        (families::binary_tree(2), families::chain(3, "l")),
        (families::det_blowup(12, 3), families::det_blowup(14, 3)),
        (families::det_blowup(8, 3), families::chain(8, "a")),
    ];
    for (left, right) in &cases {
        assert_witnesses_valid(left, right);
        assert_witnesses_valid(right, left);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random general processes: every negative verdict must come with a
    /// replayable witness, in both argument orders.
    #[test]
    fn witnesses_distinguish_on_random_processes(
        states in 2usize..10,
        seed in 0u64..500,
        tau in 0usize..2,
    ) {
        let config = RandomConfig {
            tau_ratio: if tau == 1 { 0.3 } else { 0.0 },
            accept_ratio: 0.5,
            ..RandomConfig::sized(states, seed)
        };
        let left = random::random_fsp(&config);
        let right = random::random_fsp(&RandomConfig {
            seed: seed.wrapping_add(1),
            ..config
        });
        assert_witnesses_valid(&left, &right);
        assert_witnesses_valid(&right, &left);
    }

    /// Random complete DFAs: a negative `dfa_equiv` verdict's witness word
    /// must be classified differently by the two automata.
    #[test]
    fn dfa_equiv_witnesses_distinguish(
        n in 1usize..9,
        k in 1usize..3,
        seed in 0u64..500,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut build = |n: usize| {
            let mut d = Dfa::new(n, k, 0);
            for s in 0..n {
                d.set_accepting(s, rng.gen_bool(0.5));
                for l in 0..k {
                    d.set_transition(s, l, rng.gen_range(0..n));
                }
            }
            d
        };
        let left = build(n);
        let right = build(n);
        let r = dfa_equiv::equivalent(&left, &right);
        if !r.equivalent {
            let w = r.witness.expect("negative DFA result carries a witness");
            prop_assert_ne!(
                left.class(left.run(&w)),
                right.class(right.run(&w)),
                "DFA witness {:?} does not distinguish", w
            );
        }
    }
}
