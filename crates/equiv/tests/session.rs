//! Property tests for the [`EquivSession`] engine: on random workloads the
//! session's batched pair queries must agree with the one-shot free
//! functions, and repeated queries against one session must return
//! identical partitions (the cache-coherence oracle).

use ccs_equiv::{failures, strong, weak, EquivSession, Equivalence};
use ccs_fsp::{Fsp, Label, StateId};
use ccs_partition::Algorithm;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RawProcess {
    states: usize,
    edges: Vec<(usize, usize, usize)>, // (from, label, to); label 0 = tau
    accepting: Vec<bool>,
}

fn process_strategy() -> impl Strategy<Value = RawProcess> {
    (2usize..8).prop_flat_map(move |states| {
        let edges = proptest::collection::vec((0..states, 0usize..3, 0..states), 1..20);
        let accepting = proptest::collection::vec(any::<bool>(), states);
        (Just(states), edges, accepting).prop_map(|(states, edges, accepting)| RawProcess {
            states,
            edges,
            accepting,
        })
    })
}

fn build(raw: &RawProcess) -> Fsp {
    let mut b = Fsp::builder("session-prop");
    let ids: Vec<StateId> = (0..raw.states).map(|i| b.state(&format!("s{i}"))).collect();
    let a0 = b.action("a");
    let a1 = b.action("b");
    for &(from, label, to) in &raw.edges {
        let l = match label {
            0 => Label::Tau,
            1 => Label::Act(a0),
            _ => Label::Act(a1),
        };
        b.add_transition(ids[from], l, ids[to]);
    }
    for (i, &acc) in raw.accepting.iter().enumerate() {
        if acc {
            b.mark_accepting(ids[i]);
        }
    }
    b.build().expect("generated process is non-empty")
}

fn all_pairs(fsp: &Fsp) -> Vec<(StateId, StateId)> {
    let states: Vec<StateId> = fsp.state_ids().collect();
    let mut pairs = Vec::new();
    for &p in &states {
        for &q in &states {
            pairs.push((p, q));
        }
    }
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Session-answered batched pair queries agree with the pre-refactor
    /// free functions for strong, observational, and failure equivalence.
    #[test]
    fn batched_queries_agree_with_free_functions(raw in process_strategy()) {
        let fsp = build(&raw);
        let pairs = all_pairs(&fsp);
        let session = EquivSession::for_process(&fsp);

        let strong_batch = session.equivalent_pairs(Equivalence::Strong, &pairs);
        let sp = strong::strong_partition(&fsp);
        for (&(p, q), &got) in pairs.iter().zip(&strong_batch) {
            prop_assert_eq!(got, sp.equivalent(p, q), "strong {} vs {}", p, q);
        }

        let weak_batch = session.equivalent_pairs(Equivalence::Observational, &pairs);
        let wp = weak::weak_partition(&fsp);
        for (&(p, q), &got) in pairs.iter().zip(&weak_batch) {
            prop_assert_eq!(got, wp.equivalent(p, q), "observational {} vs {}", p, q);
        }

        let failure_batch = session.equivalent_pairs(Equivalence::Failure, &pairs);
        for (&(p, q), &got) in pairs.iter().zip(&failure_batch) {
            prop_assert_eq!(
                got,
                failures::failure_equivalent_states(&fsp, p, q).equivalent,
                "failure {} vs {}",
                p,
                q
            );
        }
    }

    /// Cache-coherence oracle: asking one session the same question twice —
    /// as a partition, as a batch, or as single pair queries — returns
    /// identical answers, and the memoized partitions are bitwise equal.
    #[test]
    fn repeated_queries_return_identical_partitions(raw in process_strategy()) {
        let fsp = build(&raw);
        let pairs = all_pairs(&fsp);
        let session = EquivSession::for_process(&fsp);
        for notion in [
            Equivalence::Strong,
            Equivalence::Observational,
            Equivalence::Limited(2),
            Equivalence::Failure,
        ] {
            let first = session.classify_all(notion);
            let batch = session.equivalent_pairs(notion, &pairs);
            let second = session.classify_all(notion);
            prop_assert_eq!(&first, &second, "partition changed across queries: {}", notion);
            for (&(p, q), &got) in pairs.iter().zip(&batch) {
                prop_assert_eq!(got, first.same_block(p.index(), q.index()), "{}", notion);
                prop_assert_eq!(
                    got,
                    session.equivalent_states(p, q, notion),
                    "single query disagrees with batch: {}",
                    notion
                );
            }
        }
    }

    /// The session's observational partition is algorithm-independent and
    /// matches the *pre-refactor* pipeline — explicit saturation into a
    /// second process, then strong refinement — which does not share any
    /// code with the streamed session path, so this is an independent
    /// oracle rather than a tautology.
    #[test]
    fn observational_partition_per_algorithm(raw in process_strategy()) {
        let fsp = build(&raw);
        let saturated = ccs_fsp::saturate::saturate(&fsp);
        let session = EquivSession::for_process(&fsp);
        for alg in Algorithm::ALL {
            let from_session = session.partition_with(Equivalence::Observational, alg);
            let legacy = strong::strong_partition_with(&saturated.fsp, alg);
            prop_assert_eq!(from_session.as_ref(), legacy.partition(), "legacy oracle, {}", alg);
            let free = weak::weak_partition_with(&fsp, alg);
            prop_assert_eq!(from_session.as_ref(), free.partition(), "{}", alg);
        }
    }

    /// Small batches of the pairwise PSPACE notions take the per-pair path;
    /// it must agree with the partition-backed path on the same session.
    #[test]
    fn small_and_large_failure_batches_agree(raw in process_strategy()) {
        let fsp = build(&raw);
        let pairs = all_pairs(&fsp);
        let small: Vec<_> = pairs.iter().copied().take(1).collect();
        let fresh = EquivSession::for_process(&fsp);
        let from_pairwise = fresh.equivalent_pairs(Equivalence::Failure, &small);
        let classified = EquivSession::for_process(&fsp);
        classified.classify_all(Equivalence::Failure);
        let from_partition = classified.equivalent_pairs(Equivalence::Failure, &small);
        prop_assert_eq!(from_pairwise, from_partition);
    }
}
