//! On-the-fly equivalence: decide a pair, build only what the search
//! touches, stop at the first distinguishing witness.
//!
//! Every other checker in this crate *materializes before it refines*: the
//! full subset arena (or the full weak instance) is built, then a partition
//! solver classifies everything.  That is the right shape for whole-space
//! classification, but for a single pair question — "is the composed
//! protocol equivalent to its specification?" — it does asymptotically too
//! much work whenever the answer is reachable long before the product space
//! is exhausted.  This module is the paper's "decide equivalence, don't
//! build everything" reading of the PSPACE notions: a BFS worklist over the
//! *synchronized product* of two determinized state spaces that
//!
//! * expands subsets lazily through the session's shared
//!   [`SubsetAutomaton`] (the `determinize` machinery — every transition it
//!   computes is memoized in the arena and reused by later queries, on-the-
//!   fly or not),
//! * prunes pairs up to the congruence of everything the session's
//!   [`PairCache`] has already proven (Hopcroft–Karp union-find, the same
//!   core as [`PairCache::equivalent`]),
//! * stops at the **first** pair whose zero-step output classes differ,
//!   reconstructs the distinguishing trace from its BFS provenance chain,
//!   and
//! * feeds the outcome back: a successful search commits its congruence, a
//!   refutation records every ancestor pair on the witness path — partial
//!   work is never wasted.
//!
//! The engine covers exactly the determinizable notions
//! ([`DetNotion::of`]): language `≈₁`, trace, and failure `≡F` equivalence.
//! For these, subset-level pair search is sound and complete; the
//! branching-time notions (`~`, `≈`, `≈ₖ`) stay on the refinement path — a
//! union-find product search over determinized subsets cannot observe
//! branching, so routing them here would be unsound, not just slow.
//!
//! What the search explored is reported in [`OtfStats`]; the bench report's
//! `OTF` table uses it to show peak-explored states staying below the
//! materialized total on the protocol corpus
//! (`ccs_workloads::protocols`).
//!
//! # Example
//!
//! ```
//! use ccs_equiv::{onthefly, Equivalence};
//! use ccs_fsp::format;
//!
//! // a.b + a.c vs a.(b + c): trace equivalent, failure inequivalent.
//! let split = format::parse(
//!     "trans u a v\ntrans u a w\ntrans v b x\ntrans w c y\naccept u v w x y")?;
//! let merged = format::parse("trans p a q\ntrans q b r\ntrans q c s\naccept p q r s")?;
//!
//! let same = onthefly::compare(&split, &merged, Equivalence::Trace)?;
//! assert!(same.equivalent);
//!
//! let diff = onthefly::compare(&split, &merged, Equivalence::Failure)?;
//! assert!(!diff.equivalent);
//! let witness = diff.witness.unwrap();
//! assert_eq!(witness.trace, vec!["a".to_owned()]);      // after `a` …
//! assert!(!witness.refusal.unwrap().is_empty());        // … the refusals diverge
//! # Ok::<(), ccs_equiv::EquivError>(())
//! ```

use ccs_fsp::saturate::SaturatedView;
use ccs_fsp::{ops, ActionId, Fsp, StateId};

use crate::compact::narrow;
use crate::determinize::{union, DetNotion, PairCache, SubsetAutomaton, SubsetId};
use crate::failures::{distinguishing_refusal, maximal_refusals, name_set};
use crate::{EquivError, EquivSession, Equivalence};

/// A distinguishing witness produced by a refuting on-the-fly search.
///
/// The shape depends on the notion the search ran under:
///
/// * **language**: `trace` is a word accepted by exactly one of the two
///   states (`refusal` is `None`);
/// * **trace**: `trace` is a weak trace of exactly one side (`refusal` is
///   `None`);
/// * **failure**: `(trace, refusal)` is a failure pair of exactly one side
///   (`refusal` is `Some`, possibly the empty set when the trace itself is
///   one-sided).
///
/// Witnesses replay through the independent per-pair semantics — see
/// `crates/equiv/tests/onthefly.rs`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OtfWitness {
    /// The observable trace leading to the distinguishing pair.
    pub trace: Vec<String>,
    /// For failure equivalence, the refused action set completing the
    /// failure pair; `None` for the acceptance/trace-based notions.
    pub refusal: Option<Vec<String>>,
}

/// What an on-the-fly search explored, for the materialize-vs-on-the-fly
/// comparison in the bench report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OtfStats {
    /// Synchronized product pairs dequeued before the verdict.
    pub pairs_visited: usize,
    /// Subsets interned in the shared arena when the search finished — the
    /// peak lazily-explored state count (monotone across a session; compare
    /// with the arena size after a full [`EquivSession::classify_all`]).
    pub arena_subsets: usize,
    /// Lazy determinized transitions this search computed (memoized steps
    /// reused from earlier queries are free and not counted).
    pub steps_computed: usize,
    /// Whether the verdict came straight from the session's committed
    /// proven-congruence without any search.
    pub cache_hit: bool,
}

/// Outcome of an on-the-fly pair check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OtfOutcome {
    /// The verdict — always identical to what the materialized checker
    /// would answer (the agreement suite enforces this).
    pub equivalent: bool,
    /// A replayable distinguishing witness when not equivalent.
    pub witness: Option<OtfWitness>,
    /// Exploration counters.
    pub stats: OtfStats,
}

/// Grows a speculative parent array to cover `n` ids.
fn grow(parent: &mut Vec<u32>, n: usize) {
    while parent.len() < n {
        parent.push(narrow(parent.len()));
    }
}

/// The BFS worklist search over the synchronized subset product.
///
/// Invariants: `left`/`right` are interned start subsets of `auto`; `cache`
/// belongs to the same arena and notion.  On refutation the returned
/// witness's provenance chain has been recorded into `cache`; on success
/// the speculative congruence has been committed.
pub(crate) fn search(
    fsp: &Fsp,
    auto: &mut SubsetAutomaton,
    view: &SaturatedView,
    cache: &mut PairCache,
    notion: DetNotion,
    left: SubsetId,
    right: SubsetId,
) -> OtfOutcome {
    if cache.is_proven(left, right) {
        return OtfOutcome {
            equivalent: true,
            witness: None,
            stats: OtfStats {
                pairs_visited: 0,
                arena_subsets: auto.num_subsets(),
                steps_computed: 0,
                cache_hit: true,
            },
        };
    }
    let steps_before = auto.steps_computed();
    // Speculative congruence: the committed one plus this search's merges.
    // Refuted pairs are deliberately NOT used as an early exit here — a
    // cached refutation carries no concrete suffix, and the arena is
    // finite, so continuing the BFS always reaches a zero-step class
    // difference and yields a replayable witness.
    let mut uf = cache.speculative(auto.num_subsets());
    union(&mut uf, left, right);
    let mut pairs: Vec<(SubsetId, SubsetId)> = vec![(left, right)];
    let mut provenance: Vec<Option<(usize, ActionId)>> = vec![None];
    let mut head = 0;
    while head < pairs.len() {
        let (x, y) = pairs[head];
        if auto.classes_differ(view, notion, x, y) {
            // Feed the refutation back: every ancestor on the provenance
            // chain is inequivalent by the same suffix.
            let mut cursor = Some(head);
            while let Some(i) = cursor {
                cache.record_refuted(pairs[i].0, pairs[i].1);
                cursor = provenance[i].map(|(parent, _)| parent);
            }
            let witness = build_witness(fsp, auto, view, notion, &pairs, &provenance, head);
            return OtfOutcome {
                equivalent: false,
                witness: Some(witness),
                stats: OtfStats {
                    pairs_visited: head + 1,
                    arena_subsets: auto.num_subsets(),
                    steps_computed: auto.steps_computed() - steps_before,
                    cache_hit: false,
                },
            };
        }
        for a in 0..auto.num_actions() {
            let action = ActionId::from_index(a);
            let nx = auto.step(view, x, action);
            let ny = auto.step(view, y, action);
            grow(&mut uf, auto.num_subsets());
            if union(&mut uf, nx, ny) {
                pairs.push((nx, ny));
                provenance.push(Some((head, action)));
            }
        }
        head += 1;
    }
    let stats = OtfStats {
        pairs_visited: head,
        arena_subsets: auto.num_subsets(),
        steps_computed: auto.steps_computed() - steps_before,
        cache_hit: false,
    };
    cache.commit(uf);
    OtfOutcome {
        equivalent: true,
        witness: None,
        stats,
    }
}

/// Reconstructs the distinguishing witness for the pair at `idx` from the
/// BFS provenance chain.
fn build_witness(
    fsp: &Fsp,
    auto: &mut SubsetAutomaton,
    view: &SaturatedView,
    notion: DetNotion,
    pairs: &[(SubsetId, SubsetId)],
    provenance: &[Option<(usize, ActionId)>],
    idx: usize,
) -> OtfWitness {
    let mut word: Vec<ActionId> = Vec::new();
    let mut cursor = idx;
    while let Some((parent, action)) = provenance[cursor] {
        word.push(action);
        cursor = parent;
    }
    word.reverse();
    let trace: Vec<String> = word
        .iter()
        .map(|&a| fsp.action_name(a).to_owned())
        .collect();
    let (x, y) = pairs[idx];
    let refusal = match notion {
        DetNotion::Language | DetNotion::Trace => None,
        DetNotion::Failure => {
            if (x == SubsetAutomaton::DEAD) != (y == SubsetAutomaton::DEAD) {
                // The trace itself is one-sided: (trace, ∅) is a failure of
                // the side that has it and of nothing on the other.
                Some(Vec::new())
            } else {
                let rx = maximal_refusals(view, &auto.subset(x));
                let ry = maximal_refusals(view, &auto.subset(y));
                let set = distinguishing_refusal(&rx, &ry)
                    .or_else(|| distinguishing_refusal(&ry, &rx))
                    .unwrap_or_default();
                Some(name_set(fsp, &set))
            }
        }
    };
    OtfWitness { trace, refusal }
}

/// Compares the start states of two processes on the fly.
///
/// Convenience wrapper: forms the disjoint union, opens a throwaway
/// [`EquivSession`], and runs [`EquivSession::on_the_fly`].  For repeated
/// queries against one process keep a session instead — its arena and pair
/// caches carry every verdict forward.
///
/// # Errors
///
/// [`EquivError::ModelMismatch`] if `notion` is not determinizable
/// (only `language`, `trace` and `failure` have an on-the-fly face).
pub fn compare(left: &Fsp, right: &Fsp, notion: Equivalence) -> Result<OtfOutcome, EquivError> {
    let union = ops::disjoint_union(left, right);
    let (p, q) = ops::union_starts(&union, left, right);
    let session = EquivSession::new(union.fsp);
    session.on_the_fly(notion, p, q)
}

/// [`compare`] for two states of one process, sharing the caller's session.
///
/// # Errors
///
/// [`EquivError::ModelMismatch`] if `notion` is not determinizable.
pub fn compare_states(
    session: &EquivSession,
    notion: Equivalence,
    p: StateId,
    q: StateId,
) -> Result<OtfOutcome, EquivError> {
    session.on_the_fly(notion, p, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_fsp::format;

    fn parse(s: &str) -> Fsp {
        format::parse(s).unwrap()
    }

    #[test]
    fn rejects_branching_time_notions() {
        let f = parse("trans p a q\naccept p q");
        for notion in [
            Equivalence::Strong,
            Equivalence::Observational,
            Equivalence::KObservational(2),
        ] {
            let err = compare(&f, &f, notion).unwrap_err();
            assert_eq!(err.code(), "model-mismatch");
        }
    }

    #[test]
    fn equivalent_pair_commits_and_caches() {
        // Two weakly-equal loops; the second query must be a pure cache hit.
        let left = parse("trans p a q\ntrans q tau p\naccept p q");
        let right = parse("trans u a u\naccept u");
        let union = ops::disjoint_union(&left, &right);
        let (p, q) = ops::union_starts(&union, &left, &right);
        let session = EquivSession::new(union.fsp);
        let first = session.on_the_fly(Equivalence::Language, p, q).unwrap();
        assert!(first.equivalent);
        assert!(!first.stats.cache_hit);
        assert!(first.stats.pairs_visited > 0);
        let second = session.on_the_fly(Equivalence::Language, p, q).unwrap();
        assert!(second.equivalent);
        assert!(second.stats.cache_hit);
        assert_eq!(second.stats.pairs_visited, 0);
    }

    #[test]
    fn language_witness_is_the_distinguishing_word() {
        // a.b vs a: the word `a b` is accepted by the left only.
        let ab = parse("trans p a q\ntrans q b r\naccept p q r");
        let a = parse("trans u a v\naccept u v");
        let out = compare(&ab, &a, Equivalence::Language).unwrap();
        assert!(!out.equivalent);
        let w = out.witness.unwrap();
        assert_eq!(w.trace, vec!["a".to_owned(), "b".to_owned()]);
        assert_eq!(w.refusal, None);
    }

    #[test]
    fn failure_witness_carries_a_refusal() {
        let split = parse("trans u a v\ntrans u a w\ntrans v b x\ntrans w c y\naccept u v w x y");
        let merged = parse("trans p a q\ntrans q b r\ntrans q c s\naccept p q r s");
        let out = compare(&split, &merged, Equivalence::Failure).unwrap();
        assert!(!out.equivalent);
        let w = out.witness.unwrap();
        assert_eq!(w.trace, vec!["a".to_owned()]);
        let refusal = w.refusal.unwrap();
        // The split side's maximal refusals after `a` are {a,b} and {a,c};
        // either distinguishes (the merged side refuses only {a}).
        assert!(refusal.contains(&"b".to_owned()) || refusal.contains(&"c".to_owned()));
    }

    #[test]
    fn refuted_cache_still_yields_a_witness_on_requery() {
        let ab = parse("trans p a q\ntrans q b r\naccept p q r");
        let a = parse("trans u a v\naccept u v");
        let union = ops::disjoint_union(&ab, &a);
        let (p, q) = ops::union_starts(&union, &ab, &a);
        let session = EquivSession::new(union.fsp);
        let first = session.on_the_fly(Equivalence::Trace, p, q).unwrap();
        let second = session.on_the_fly(Equivalence::Trace, p, q).unwrap();
        assert!(!first.equivalent && !second.equivalent);
        assert_eq!(first.witness, second.witness);
    }
}
