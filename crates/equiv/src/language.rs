//! Language (classical NFA) equivalence — the notion `≈₁` specialises to in
//! the standard and restricted models (Propositions 2.2.3(b) and 2.2.4(b)).
//!
//! A standard FSP is an NFA with ε-moves (τ plays the role of ε); `L(p)` is
//! the set of observable strings that can reach an accepting state from `p`
//! through weak transitions.  Deciding `L(p) = L(q)` is PSPACE-complete
//! (Stockmeyer & Meyer), so the checker here is the classical *on-the-fly
//! subset construction*: synchronously determinize both sides, stopping as
//! soon as a reachable pair of subsets disagrees on acceptance.  The worst
//! case is exponential — exactly the behaviour Theorem 4.1(b) predicts — but
//! instances arising from small processes stay small.

use std::collections::{HashMap, HashSet, VecDeque};

use ccs_fsp::saturate::{tau_closure, SaturatedView, TauClosure};
use ccs_fsp::{ops, ActionId, Fsp, Label, StateId};

use crate::compact::narrow;

/// Outcome of a language-equivalence (or universality) test, with a witness
/// word when the answer is negative.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LanguageResult {
    /// Whether the tested property holds.
    pub holds: bool,
    /// A witness word (as action names) when the property fails: a word
    /// accepted by exactly one of the two states, or rejected word for
    /// universality.
    pub witness: Option<Vec<String>>,
}

/// A *subset state*: sorted, duplicate-free compact 32-bit state indices,
/// closed under `⇒ε` (state counts are checked against the 32-bit range at
/// process ingestion, so the narrowing here is total).
pub(crate) type Subset = Vec<u32>;

/// The ε-closure of a single state, as a subset state.
pub(crate) fn closure_of(closure: &TauClosure, p: StateId) -> Subset {
    closure
        .successors(p)
        .iter()
        .map(|s| narrow(s.index()))
        .collect()
}

/// One determinized step: all states reachable from `subset` by one
/// observable action followed by `⇒ε`.
pub(crate) fn subset_step(
    fsp: &Fsp,
    closure: &TauClosure,
    subset: &[u32],
    action: ActionId,
) -> Subset {
    let mut out: Vec<u32> = Vec::new();
    for &x in subset {
        for y in fsp.successors(StateId::from_index(x as usize), Label::Act(action)) {
            out.extend(closure.successors(y).iter().map(|s| narrow(s.index())));
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Like [`closure_of`], reading the ε column of a prebuilt
/// [`SaturatedView`] instead of walking a [`TauClosure`].
pub(crate) fn closure_of_view(view: &SaturatedView, p: StateId) -> Subset {
    view.epsilon_successors(p)
        .iter()
        .map(|s| narrow(s.index()))
        .collect()
}

/// Like [`subset_step`], but each member's weak `a`-successor set is a
/// single slice lookup in a prebuilt [`SaturatedView`] (the view's columns
/// already fold in the leading and trailing ε-closures, which is equivalent
/// on ε-closed subsets).
pub(crate) fn subset_step_view(view: &SaturatedView, subset: &[u32], action: ActionId) -> Subset {
    let mut out: Vec<u32> = Vec::new();
    for &x in subset {
        out.extend(
            view.successors(StateId::from_index(x as usize), action)
                .iter()
                .map(|s| narrow(s.index())),
        );
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Whether a subset state contains an accepting state.
pub(crate) fn subset_accepting(fsp: &Fsp, subset: &[u32]) -> bool {
    subset
        .iter()
        .any(|&x| fsp.is_accepting(StateId::from_index(x as usize)))
}

/// Tests whether the weak languages of two states of the same process are
/// equal: `L(p) = L(q)`.
#[must_use]
pub fn language_equivalent_states(fsp: &Fsp, p: StateId, q: StateId) -> LanguageResult {
    let closure = tau_closure(fsp);
    language_equivalent_states_with(fsp, &closure, p, q)
}

/// [`language_equivalent_states`] against a caller-provided τ-closure — the
/// entry point the [`session`](crate::session) layer uses so repeated
/// queries share one closure.
pub(crate) fn language_equivalent_states_with(
    fsp: &Fsp,
    closure: &TauClosure,
    p: StateId,
    q: StateId,
) -> LanguageResult {
    let start = (closure_of(closure, p), closure_of(closure, q));
    let mut seen: HashSet<(Subset, Subset)> = HashSet::new();
    // Queue holds the pair plus the word that reached it.
    let mut queue: VecDeque<((Subset, Subset), Vec<ActionId>)> = VecDeque::new();
    seen.insert(start.clone());
    queue.push_back((start, Vec::new()));
    while let Some(((xs, ys), word)) = queue.pop_front() {
        if subset_accepting(fsp, &xs) != subset_accepting(fsp, &ys) {
            return LanguageResult {
                holds: false,
                witness: Some(
                    word.iter()
                        .map(|&a| fsp.action_name(a).to_owned())
                        .collect(),
                ),
            };
        }
        for a in fsp.action_ids() {
            let nx = subset_step(fsp, closure, &xs, a);
            let ny = subset_step(fsp, closure, &ys, a);
            if nx.is_empty() && ny.is_empty() {
                continue;
            }
            let pair = (nx, ny);
            if seen.insert(pair.clone()) {
                let mut w = word.clone();
                w.push(a);
                queue.push_back((pair, w));
            }
        }
    }
    LanguageResult {
        holds: true,
        witness: None,
    }
}

/// Tests whether the start states of two processes accept the same language.
#[must_use]
pub fn language_equivalent(left: &Fsp, right: &Fsp) -> LanguageResult {
    let union = ops::disjoint_union(left, right);
    let (p, q) = ops::union_starts(&union, left, right);
    let mut result = language_equivalent_states(&union.fsp, p, q);
    // Witness action names are shared by construction; nothing to translate.
    if let Some(w) = &mut result.witness {
        w.shrink_to_fit();
    }
    result
}

/// Tests whether a state accepts a given word (membership, the efficiently
/// solvable MEMBER problem contrasted with EQUIVALENCE in Section 6).
///
/// Unknown action names make the word rejected (they cannot label any
/// transition).
#[must_use]
pub fn accepts(fsp: &Fsp, p: StateId, word: &[&str]) -> bool {
    let closure = tau_closure(fsp);
    let mut subset = closure_of(&closure, p);
    for name in word {
        let Some(a) = fsp.action_id(name) else {
            return false;
        };
        subset = subset_step(fsp, &closure, &subset, a);
        if subset.is_empty() {
            return false;
        }
    }
    subset_accepting(fsp, &subset)
}

/// Tests `L(p) = Σ*` — the universality problem underlying the
/// PSPACE-hardness results (Lemma 4.2).
#[must_use]
pub fn is_universal(fsp: &Fsp, p: StateId) -> LanguageResult {
    let closure = tau_closure(fsp);
    let start = closure_of(&closure, p);
    let mut seen: HashSet<Subset> = HashSet::new();
    let mut queue: VecDeque<(Subset, Vec<ActionId>)> = VecDeque::new();
    seen.insert(start.clone());
    queue.push_back((start, Vec::new()));
    while let Some((xs, word)) = queue.pop_front() {
        if !subset_accepting(fsp, &xs) {
            return LanguageResult {
                holds: false,
                witness: Some(
                    word.iter()
                        .map(|&a| fsp.action_name(a).to_owned())
                        .collect(),
                ),
            };
        }
        for a in fsp.action_ids() {
            let nx = subset_step(fsp, &closure, &xs, a);
            if seen.insert(nx.clone()) {
                let mut w = word.clone();
                w.push(a);
                queue.push_back((nx, w));
            }
        }
    }
    LanguageResult {
        holds: true,
        witness: None,
    }
}

/// Enumerates the language of a state up to a given word length, as sorted
/// words of action names.  Intended for tests and small examples.
#[must_use]
pub fn language_up_to(fsp: &Fsp, p: StateId, max_len: usize) -> Vec<Vec<String>> {
    let closure = tau_closure(fsp);
    let mut out = Vec::new();
    let mut frontier: Vec<(Subset, Vec<String>)> = vec![(closure_of(&closure, p), Vec::new())];
    if subset_accepting(fsp, &frontier[0].0) {
        out.push(Vec::new());
    }
    for _ in 0..max_len {
        let mut next_frontier = Vec::new();
        for (subset, word) in &frontier {
            for a in fsp.action_ids() {
                let nx = subset_step(fsp, &closure, subset, a);
                if nx.is_empty() {
                    continue;
                }
                let mut w = word.clone();
                w.push(fsp.action_name(a).to_owned());
                if subset_accepting(fsp, &nx) {
                    out.push(w.clone());
                }
                next_frontier.push((nx, w));
            }
        }
        frontier = next_frontier;
        if frontier.is_empty() {
            break;
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Builds a `HashMap` keyed by word from [`language_up_to`], convenient for
/// equality assertions in tests.
#[must_use]
pub fn language_set_up_to(fsp: &Fsp, p: StateId, max_len: usize) -> HashMap<Vec<String>, ()> {
    language_up_to(fsp, p, max_len)
        .into_iter()
        .map(|w| (w, ()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_fsp::format;

    #[test]
    fn nondeterministic_choice_is_language_equivalent_to_merged() {
        // a.b + a.c has the same language as a.(b + c).
        let split =
            format::parse("trans u a v\ntrans u a w\ntrans v b x\ntrans w c y\naccept u v w x y")
                .unwrap();
        let merged =
            format::parse("trans p a q\ntrans q b r\ntrans q c s\naccept p q r s").unwrap();
        assert!(language_equivalent(&split, &merged).holds);
    }

    #[test]
    fn distinct_languages_produce_a_witness() {
        let ab = format::parse("trans p a q\ntrans q b r\naccept r").unwrap();
        let ac = format::parse("trans u a v\ntrans v c w\naccept w").unwrap();
        let r = language_equivalent(&ab, &ac);
        assert!(!r.holds);
        let witness = r.witness.unwrap();
        // The witness is accepted by exactly one of the two processes.
        let wa: Vec<&str> = witness.iter().map(String::as_str).collect();
        assert_ne!(accepts(&ab, ab.start(), &wa), accepts(&ac, ac.start(), &wa));
    }

    #[test]
    fn tau_moves_behave_as_epsilon() {
        let with_tau = format::parse("trans p tau q\ntrans q a r\naccept r").unwrap();
        let without = format::parse("trans u a v\naccept v").unwrap();
        assert!(language_equivalent(&with_tau, &without).holds);
    }

    #[test]
    fn membership_queries() {
        let f = format::parse("trans p a q\ntrans q b p\naccept p").unwrap();
        let p = f.start();
        assert!(accepts(&f, p, &[]));
        assert!(accepts(&f, p, &["a", "b"]));
        assert!(!accepts(&f, p, &["a"]));
        assert!(!accepts(&f, p, &["b"]));
        assert!(!accepts(&f, p, &["zzz"]));
        assert!(accepts(&f, p, &["a", "b", "a", "b"]));
    }

    #[test]
    fn universality_detection() {
        // Accepts everything over {a}: a single accepting self-loop.
        let all = format::parse("trans p a p\naccept p").unwrap();
        assert!(is_universal(&all, all.start()).holds);
        // Missing the empty word: not universal, witness is the empty word.
        let no_eps = format::parse("trans p a q\ntrans q a q\naccept q").unwrap();
        let r = is_universal(&no_eps, no_eps.start());
        assert!(!r.holds);
        assert_eq!(r.witness.unwrap().len(), 0);
        // Missing "aa".
        let gap = format::parse("trans p a q\ntrans q a r\ntrans r a r\naccept p q").unwrap();
        let r = is_universal(&gap, gap.start());
        assert!(!r.holds);
        assert_eq!(r.witness.unwrap(), vec!["a".to_owned(), "a".to_owned()]);
    }

    #[test]
    fn language_enumeration() {
        let f = format::parse("trans p a q\ntrans q b p\naccept p").unwrap();
        let words = language_up_to(&f, f.start(), 4);
        assert!(words.contains(&vec![]));
        assert!(words.contains(&vec!["a".to_owned(), "b".to_owned()]));
        assert!(!words.iter().any(|w| w.len() == 1));
        assert!(!words.iter().any(|w| w.len() == 3));
        assert_eq!(words.len(), 3); // ε, ab, abab
        assert_eq!(language_set_up_to(&f, f.start(), 4).len(), 3);
    }

    #[test]
    fn equivalence_agrees_with_bounded_enumeration() {
        let cases = [
            (
                "trans p a q\naccept q",
                "trans u a v\ntrans u a w\naccept v w",
            ),
            (
                "trans p a p\naccept p",
                "trans u a v\ntrans v a u\naccept u v",
            ),
            ("trans p a q\naccept p", "trans u a v\naccept v"),
        ];
        for (l, r) in cases {
            let left = format::parse(l).unwrap();
            let right = format::parse(r).unwrap();
            let fast = language_equivalent(&left, &right).holds;
            let slow = language_up_to(&left, left.start(), 2 * 4)
                == language_up_to(&right, right.start(), 2 * 4);
            assert_eq!(fast, slow, "{l} vs {r}");
        }
    }

    #[test]
    fn states_within_one_process() {
        let f = format::parse("trans p a q\ntrans r a s\ntrans x b y\naccept q s y").unwrap();
        let p = f.state_by_name("p").unwrap();
        let r = f.state_by_name("r").unwrap();
        let x = f.state_by_name("x").unwrap();
        assert!(language_equivalent_states(&f, p, r).holds);
        assert!(!language_equivalent_states(&f, p, x).holds);
    }
}
