//! Trace sets and trace equivalence.
//!
//! In the *restricted* model (all states accepting) the language of a state
//! is exactly its prefix-closed set of traces, so trace equivalence coincides
//! with `≈₁` / language equivalence there (Proposition 2.2.3(b)).  For
//! general processes the two notions differ (acceptance matters for the
//! language but not for traces); both are provided.

use std::collections::{HashSet, VecDeque};

use ccs_fsp::saturate::{tau_closure, TauClosure};
use ccs_fsp::{ops, Fsp, StateId};

use crate::language::{closure_of, subset_step, LanguageResult, Subset};

/// Enumerates the traces of a state up to a given length (observable strings
/// `s` with `p ⇒s p′` for some `p′`), sorted.
#[must_use]
pub fn traces_up_to(fsp: &Fsp, p: StateId, max_len: usize) -> Vec<Vec<String>> {
    let closure = tau_closure(fsp);
    let mut out = vec![Vec::new()];
    let mut frontier: Vec<(Subset, Vec<String>)> = vec![(closure_of(&closure, p), Vec::new())];
    for _ in 0..max_len {
        let mut next_frontier = Vec::new();
        for (subset, word) in &frontier {
            for a in fsp.action_ids() {
                let nx = subset_step(fsp, &closure, subset, a);
                if nx.is_empty() {
                    continue;
                }
                let mut w = word.clone();
                w.push(fsp.action_name(a).to_owned());
                out.push(w.clone());
                next_frontier.push((nx, w));
            }
        }
        frontier = next_frontier;
        if frontier.is_empty() {
            break;
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Tests whether two states of the same process have the same trace set.
#[must_use]
pub fn trace_equivalent_states(fsp: &Fsp, p: StateId, q: StateId) -> LanguageResult {
    let closure = tau_closure(fsp);
    trace_equivalent_states_with(fsp, &closure, p, q)
}

/// [`trace_equivalent_states`] against a caller-provided τ-closure — used by
/// the [`session`](crate::session) layer so repeated queries share one
/// closure.
pub(crate) fn trace_equivalent_states_with(
    fsp: &Fsp,
    closure: &TauClosure,
    p: StateId,
    q: StateId,
) -> LanguageResult {
    let start = (closure_of(closure, p), closure_of(closure, q));
    let mut seen: HashSet<(Subset, Subset)> = HashSet::new();
    let mut queue: VecDeque<((Subset, Subset), Vec<String>)> = VecDeque::new();
    seen.insert(start.clone());
    queue.push_back((start, Vec::new()));
    while let Some(((xs, ys), word)) = queue.pop_front() {
        if xs.is_empty() != ys.is_empty() {
            return LanguageResult {
                holds: false,
                witness: Some(word),
            };
        }
        if xs.is_empty() {
            continue;
        }
        for a in fsp.action_ids() {
            let nx = subset_step(fsp, closure, &xs, a);
            let ny = subset_step(fsp, closure, &ys, a);
            if nx.is_empty() && ny.is_empty() {
                continue;
            }
            let pair = (nx, ny);
            if seen.insert(pair.clone()) {
                let mut w = word.clone();
                w.push(fsp.action_name(a).to_owned());
                queue.push_back((pair, w));
            }
        }
    }
    LanguageResult {
        holds: true,
        witness: None,
    }
}

/// Tests whether the start states of two processes have the same trace set.
#[must_use]
pub fn trace_equivalent(left: &Fsp, right: &Fsp) -> LanguageResult {
    let union = ops::disjoint_union(left, right);
    let (p, q) = ops::union_starts(&union, left, right);
    trace_equivalent_states(&union.fsp, p, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_fsp::format;

    #[test]
    fn trace_enumeration_is_prefix_closed() {
        let f = format::parse("trans p a q\ntrans q b p").unwrap();
        let traces = traces_up_to(&f, f.start(), 3);
        assert!(traces.contains(&vec![]));
        assert!(traces.contains(&vec!["a".into()]));
        assert!(traces.contains(&vec!["a".into(), "b".into()]));
        assert!(traces.contains(&vec!["a".into(), "b".into(), "a".into()]));
        assert_eq!(traces.len(), 4);
    }

    #[test]
    fn tau_does_not_appear_in_traces() {
        let f = format::parse("trans p tau q\ntrans q a r").unwrap();
        let traces = traces_up_to(&f, f.start(), 2);
        assert_eq!(traces, vec![vec![], vec!["a".to_owned()]]);
    }

    #[test]
    fn trace_equivalence_ignores_acceptance() {
        let accepting = format::parse("trans p a q\naccept q").unwrap();
        let plain = format::parse("trans u a v").unwrap();
        assert!(trace_equivalent(&accepting, &plain).holds);
        assert!(!crate::language::language_equivalent(&accepting, &plain).holds);
    }

    #[test]
    fn different_traces_yield_a_witness() {
        let ab = format::parse("trans p a q\ntrans q b r").unwrap();
        let ac = format::parse("trans u a v\ntrans v c w").unwrap();
        let r = trace_equivalent(&ab, &ac);
        assert!(!r.holds);
        let w = r.witness.unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0], "a");
    }

    #[test]
    fn restricted_model_traces_equal_language() {
        // All states accepting: trace equivalence and language equivalence agree.
        let a = format::parse("trans p a q\ntrans q b p\naccept p q").unwrap();
        let b = format::parse("trans u a v\ntrans v b w\ntrans w a x\ntrans x b u\naccept u v w x")
            .unwrap();
        assert_eq!(
            trace_equivalent(&a, &b).holds,
            crate::language::language_equivalent(&a, &b).holds
        );
        assert!(trace_equivalent(&a, &b).holds);
    }

    #[test]
    fn states_within_one_process() {
        let f = format::parse("trans p a q\ntrans r a s\ntrans s b t").unwrap();
        let p = f.state_by_name("p").unwrap();
        let r = f.state_by_name("r").unwrap();
        assert!(!trace_equivalent_states(&f, p, r).holds);
        let q = f.state_by_name("q").unwrap();
        let t = f.state_by_name("t").unwrap();
        assert!(trace_equivalent_states(&f, q, t).holds);
    }
}
