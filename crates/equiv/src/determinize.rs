//! The shared determinization subsystem: one memoized, interned subset
//! automaton per session, feeding both whole-space classification and
//! early-exiting pair checks for the PSPACE notions.
//!
//! The paper pins language, trace and failure equivalence to PSPACE
//! (Theorem 4.1(b), Theorem 5.1), and Proposition 2.2.4(b) plus the
//! Section 3 AHU recap show the escape hatch: once a process is
//! *determinized*, every one of those notions collapses to near-linear DFA
//! machinery.  Before this module, each `(state, state)` query re-ran an
//! independent on-the-fly subset construction ([`language`](crate::language),
//! [`traces`](crate::traces), [`failures`](crate::failures)), so classifying
//! `n` states cost `O(n · classes)` overlapping determinizations.  Here the
//! determinization is a first-class, *shared* artifact:
//!
//! * [`SubsetAutomaton`] interns every ε-closed subset once (the empty
//!   subset is the dead state [`SubsetAutomaton::DEAD`]), computes
//!   transitions lazily over the cached
//!   [`SaturatedView`], and annotates each
//!   subset with the three facts the notions read: an acceptance bit
//!   (language), the weakly-enabled action set (trace non-emptiness and
//!   exploration pruning), and the interned ⊆-maximal refusal antichain of
//!   Section 5 (failures).  All three notions read the same arena.
//! * [`determinized_partition`] determinizes *all* `n` start subsets into
//!   one product DFA ([`Dfa::from_subset_automaton`]) and runs **one**
//!   partition refinement over it — the Myhill–Nerode classes of the
//!   multi-class output function are exactly the notion's equivalence
//!   classes, so the per-class representative scan disappears.
//! * [`PairCache`] answers individual pair queries by a synchronized
//!   union-find search over interned subset ids (the AHU scheme of
//!   [`dfa_equiv`](ccs_partition::dfa_equiv), run on the lazily-built
//!   arena), pruned *up to congruence*: a popped pair whose sides are
//!   already merged is skipped, which subsumes the antichain pruning of the
//!   De Wulf–Doyen line for this synchronized-pair shape (Bonchi & Pous).
//!   Verdicts are memoized across queries — proven pairs merge into a
//!   persistent congruence, refuted pairs (and every ancestor on the path
//!   that exposed them) land in a refutation cache — so a session's later
//!   queries early-exit on first contact with anything already decided.
//!
//! The worst case is still exponential — as Theorem 4.1(b) demands — but
//! the exponential work is paid **once per subset**, not once per pair.

use std::collections::HashMap;

use ccs_fsp::saturate::SaturatedView;
use ccs_fsp::{ActionId, Fsp, StateId};
use ccs_partition::{solve, Algorithm, Dfa, Partition};

use crate::check::Equivalence;
use crate::failures::maximal_refusals;

/// Interned identifier of a subset state inside a [`SubsetAutomaton`].
pub type SubsetId = usize;

/// Sentinel for a transition that has not been computed yet.
const UNEXPLORED: usize = usize::MAX;

/// The three PSPACE notions the determinization layer decides.  Each picks a
/// different per-subset output class over the same arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DetNotion {
    /// Acceptance-based language equivalence `≈₁` (Proposition 2.2.4(b)).
    Language,
    /// Trace-set equality: the class is subset non-emptiness.
    Trace,
    /// Failure equivalence `≡F`: the class is the interned ⊆-maximal refusal
    /// antichain (Section 5), with the dead state distinguished.
    Failure,
}

impl DetNotion {
    /// The determinizable face of an [`Equivalence`] notion, if it has one.
    #[must_use]
    pub fn of(notion: Equivalence) -> Option<DetNotion> {
        match notion {
            Equivalence::Language => Some(DetNotion::Language),
            Equivalence::Trace => Some(DetNotion::Trace),
            Equivalence::Failure => Some(DetNotion::Failure),
            _ => None,
        }
    }
}

/// A memoized, interned subset automaton over one process.
///
/// Subsets are sorted, duplicate-free, ε-closed member lists, hashed and
/// interned once; transitions are computed lazily against a caller-provided
/// [`SaturatedView`] and cached forever.  Id [`SubsetAutomaton::DEAD`] is
/// the empty subset, which makes the (explored part of the) automaton a
/// *complete* DFA — the shape the partition core's [`Dfa`] wants.
#[derive(Clone, Debug)]
pub struct SubsetAutomaton {
    num_actions: usize,
    /// `subsets[id]` — the sorted member list (state indices).
    subsets: Vec<Vec<usize>>,
    intern: HashMap<Vec<usize>, SubsetId>,
    /// Row-major lazy transition table: `delta[id·|Σ| + a]`.
    delta: Vec<usize>,
    /// Per-subset acceptance bit (some member is accepting).
    accepting: Vec<bool>,
    /// Per-subset weakly-enabled observable actions (sorted indices): the
    /// columns whose [`SubsetAutomaton::step`] is not the dead state.
    enabled: Vec<Vec<usize>>,
    /// Lazily interned refusal-antichain class per subset.
    refusal_class: Vec<Option<usize>>,
    antichain_intern: HashMap<Vec<Vec<usize>>, usize>,
    /// Memoized ε-closure start subset per original state.
    start_ids: Vec<Option<SubsetId>>,
    /// Acceptance per *original* state, captured at construction so subset
    /// annotations never need the process again.
    state_accepting: Vec<bool>,
    steps_computed: usize,
}

impl SubsetAutomaton {
    /// The empty subset — the dead state of the complete DFA.
    pub const DEAD: SubsetId = 0;

    /// Creates an empty automaton for `fsp`, capturing the acceptance flags
    /// (the only fact the annotations need from the process itself; all
    /// transition structure comes from the [`SaturatedView`] passed to each
    /// exploring call, which must be the view of the same process).
    #[must_use]
    pub fn new(fsp: &Fsp) -> Self {
        let mut auto = SubsetAutomaton {
            num_actions: fsp.num_actions(),
            subsets: Vec::new(),
            intern: HashMap::new(),
            delta: Vec::new(),
            accepting: Vec::new(),
            enabled: Vec::new(),
            refusal_class: Vec::new(),
            antichain_intern: HashMap::new(),
            start_ids: vec![None; fsp.num_states()],
            state_accepting: fsp.state_ids().map(|s| fsp.is_accepting(s)).collect(),
            steps_computed: 0,
        };
        let dead = auto.intern_members(Vec::new(), &[]);
        debug_assert_eq!(dead, Self::DEAD);
        // The dead state self-loops on every action.
        for a in 0..auto.num_actions {
            auto.delta[Self::DEAD * auto.num_actions + a] = Self::DEAD;
        }
        auto
    }

    /// Number of interned subsets (the arena size).
    #[must_use]
    pub fn num_subsets(&self) -> usize {
        self.subsets.len()
    }

    /// Number of observable actions (the DFA label alphabet).
    #[must_use]
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// Number of lazily computed transitions so far (diagnostic).
    #[must_use]
    pub fn steps_computed(&self) -> usize {
        self.steps_computed
    }

    /// The sorted member list of a subset.
    #[must_use]
    pub fn subset(&self, id: SubsetId) -> &[usize] {
        &self.subsets[id]
    }

    /// Whether the subset contains an accepting state.
    #[must_use]
    pub fn is_accepting(&self, id: SubsetId) -> bool {
        self.accepting[id]
    }

    /// The weakly-enabled observable actions of the subset (sorted action
    /// indices) — exactly the columns whose [`SubsetAutomaton::step`] is not
    /// [`SubsetAutomaton::DEAD`].
    #[must_use]
    pub fn enabled(&self, id: SubsetId) -> &[usize] {
        &self.enabled[id]
    }

    /// Interns `members` (must be sorted, duplicate-free, and ε-closed),
    /// computing the acceptance and enabled-set annotations on first sight.
    fn intern_members(&mut self, members: Vec<usize>, view_enabled: &[usize]) -> SubsetId {
        if let Some(&id) = self.intern.get(&members) {
            return id;
        }
        let id = self.subsets.len();
        self.intern.insert(members.clone(), id);
        self.accepting
            .push(members.iter().any(|&s| self.state_accepting[s]));
        self.enabled.push(view_enabled.to_vec());
        self.subsets.push(members);
        self.refusal_class.push(None);
        self.delta
            .extend(std::iter::repeat(UNEXPLORED).take(self.num_actions));
        id
    }

    /// Computes the enabled-action set of a member list from the view's CSR
    /// columns (`|Σ|·|X|` slice-emptiness checks).
    fn enabled_of(&self, view: &SaturatedView, members: &[usize]) -> Vec<usize> {
        (0..self.num_actions)
            .filter(|&a| {
                members.iter().any(|&x| {
                    !view
                        .successors(StateId::from_index(x), ActionId::from_index(a))
                        .is_empty()
                })
            })
            .collect()
    }

    /// Interns an arbitrary ε-closed member list.
    fn intern_subset(&mut self, view: &SaturatedView, members: Vec<usize>) -> SubsetId {
        if let Some(&id) = self.intern.get(&members) {
            return id;
        }
        let enabled = self.enabled_of(view, &members);
        self.intern_members(members, &enabled)
    }

    /// The start subset of an original state: its ε-closure, interned
    /// (memoized per state).
    pub fn start(&mut self, view: &SaturatedView, p: StateId) -> SubsetId {
        if let Some(id) = self.start_ids[p.index()] {
            return id;
        }
        let members: Vec<usize> = view
            .epsilon_successors(p)
            .iter()
            .map(|s| s.index())
            .collect();
        let id = self.intern_subset(view, members);
        self.start_ids[p.index()] = Some(id);
        id
    }

    /// One determinized transition `δ(id, action)`, computed lazily (the
    /// view's columns already fold in the trailing ε-closure, so the union
    /// of member columns is itself ε-closed) and memoized forever.
    pub fn step(&mut self, view: &SaturatedView, id: SubsetId, action: ActionId) -> SubsetId {
        let slot = id * self.num_actions + action.index();
        if self.delta[slot] != UNEXPLORED {
            return self.delta[slot];
        }
        self.steps_computed += 1;
        let target = if self.enabled[id].binary_search(&action.index()).is_err() {
            Self::DEAD
        } else {
            let mut members: Vec<usize> = Vec::new();
            for &x in &self.subsets[id] {
                members.extend(
                    view.successors(StateId::from_index(x), action)
                        .iter()
                        .map(|s| s.index()),
                );
            }
            members.sort_unstable();
            members.dedup();
            self.intern_subset(view, members)
        };
        self.delta[slot] = target;
        target
    }

    /// The interned ⊆-maximal refusal-antichain class of the subset
    /// (Section 5): two subsets share a class iff their antichains of
    /// maximal refusal sets are identical, so the failure checkers compare
    /// one integer instead of two set families.  Lazily memoized.
    pub fn refusal_class(&mut self, view: &SaturatedView, id: SubsetId) -> usize {
        if let Some(class) = self.refusal_class[id] {
            return class;
        }
        let antichain = maximal_refusals(view, &self.subsets[id]);
        let fresh = self.antichain_intern.len();
        let class = *self.antichain_intern.entry(antichain).or_insert(fresh);
        self.refusal_class[id] = Some(class);
        class
    }

    /// Closes the transition table over every interned subset: explores
    /// until no `(subset, action)` slot is missing.  After this the explored
    /// arena is a complete DFA.
    pub fn explore(&mut self, view: &SaturatedView) {
        let mut next = 0;
        while next < self.subsets.len() {
            for a in 0..self.num_actions {
                self.step(view, next, ActionId::from_index(a));
            }
            next += 1;
        }
    }

    /// The fully-explored dense transition table (row-major, `|Σ|` columns).
    ///
    /// # Panics
    ///
    /// Panics if some slot is still unexplored — call
    /// [`SubsetAutomaton::explore`] first.
    #[must_use]
    pub fn transition_table(&self) -> &[usize] {
        assert!(
            !self.delta.contains(&UNEXPLORED),
            "transition table not fully explored"
        );
        &self.delta
    }

    /// The per-subset output classes of a notion: acceptance bits for
    /// language, non-emptiness for traces, `1 +` the interned refusal
    /// antichain (dead state `0`) for failures.
    pub fn classes(&mut self, view: &SaturatedView, notion: DetNotion) -> Vec<usize> {
        match notion {
            DetNotion::Language => self.accepting.iter().map(|&a| usize::from(a)).collect(),
            DetNotion::Trace => (0..self.num_subsets())
                .map(|id| usize::from(id != Self::DEAD))
                .collect(),
            DetNotion::Failure => (0..self.num_subsets())
                .map(|id| {
                    if id == Self::DEAD {
                        0
                    } else {
                        1 + self.refusal_class(view, id)
                    }
                })
                .collect(),
        }
    }

    /// Whether two subsets are immediately distinguished by the notion's
    /// output class (the zero-step test of the synchronized search).
    fn classes_differ(
        &mut self,
        view: &SaturatedView,
        notion: DetNotion,
        x: SubsetId,
        y: SubsetId,
    ) -> bool {
        match notion {
            DetNotion::Language => self.accepting[x] != self.accepting[y],
            DetNotion::Trace => (x == Self::DEAD) != (y == Self::DEAD),
            DetNotion::Failure => {
                if (x == Self::DEAD) != (y == Self::DEAD) {
                    true
                } else if x == Self::DEAD {
                    false
                } else {
                    self.refusal_class(view, x) != self.refusal_class(view, y)
                }
            }
        }
    }
}

/// Classifies all `num_states` original states under `notion` by **one**
/// determinization and **one** partition refinement: every start subset is
/// interned, the arena is explored to completion, the notion's per-subset
/// classes seed a multi-class [`Dfa`], and the chosen solver refines it once.
/// The block of a state is the block of its start subset.
pub fn determinized_partition(
    auto: &mut SubsetAutomaton,
    view: &SaturatedView,
    notion: DetNotion,
    num_states: usize,
    algorithm: Algorithm,
) -> Partition {
    let starts: Vec<SubsetId> = (0..num_states)
        .map(|s| auto.start(view, StateId::from_index(s)))
        .collect();
    auto.explore(view);
    let classes = auto.classes(view, notion);
    let dfa = Dfa::from_subset_automaton(
        auto.num_actions(),
        SubsetAutomaton::DEAD,
        auto.transition_table(),
        &classes,
    );
    let over_subsets = solve(&dfa.to_instance(), algorithm);
    let assignment: Vec<usize> = starts.iter().map(|&s| over_subsets.block_of(s)).collect();
    Partition::from_assignment(&assignment)
}

/// A per-notion memo of decided subset pairs: proven pairs merge into a
/// persistent union-find congruence, refuted pairs are cached with every
/// ancestor pair on the path that exposed them.
///
/// One cache serves every pair query of a session against one notion; the
/// arena ids it stores are those of the session's shared
/// [`SubsetAutomaton`], so the cache must never be reused across automata.
#[derive(Clone, Debug, Default)]
pub struct PairCache {
    /// Parent array of the proven-equivalent congruence (grows with the
    /// arena; a root points to itself).
    proven: Vec<usize>,
    /// Canonically-ordered refuted pairs.
    refuted: std::collections::HashSet<(SubsetId, SubsetId)>,
}

fn find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]]; // path halving
        x = parent[x];
    }
    x
}

/// Unions two ids; returns `false` if they were already merged.
fn union(parent: &mut [usize], a: usize, b: usize) -> bool {
    let (ra, rb) = (find(parent, a), find(parent, b));
    if ra == rb {
        return false;
    }
    parent[ra.max(rb)] = ra.min(rb);
    true
}

fn canon(a: SubsetId, b: SubsetId) -> (SubsetId, SubsetId) {
    (a.min(b), a.max(b))
}

impl PairCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        PairCache::default()
    }

    /// Number of refuted pairs memoized so far (diagnostic).
    #[must_use]
    pub fn refuted_pairs(&self) -> usize {
        self.refuted.len()
    }

    /// Whether the pair is already in the committed proven congruence — the
    /// `O(α)` early-exit of [`PairCache::equivalent`] (diagnostic).
    pub fn is_proven(&mut self, a: SubsetId, b: SubsetId) -> bool {
        let needed = a.max(b) + 1;
        Self::grow(&mut self.proven, needed);
        find(&mut self.proven, a) == find(&mut self.proven, b)
    }

    fn grow(parent: &mut Vec<usize>, n: usize) {
        while parent.len() < n {
            parent.push(parent.len());
        }
    }

    /// Decides whether two subset states are `notion`-equivalent by a
    /// synchronized union-find search over the shared arena, pruned up to
    /// the congruence of everything proven so far and early-exiting on any
    /// pair already refuted.
    ///
    /// On success the whole search's congruence is committed to the cache;
    /// on failure the distinguishing pair *and every ancestor on its
    /// provenance chain* (each inequivalent by the same suffix) are added to
    /// the refutation cache, and the speculative merges are discarded.
    pub fn equivalent(
        &mut self,
        auto: &mut SubsetAutomaton,
        view: &SaturatedView,
        notion: DetNotion,
        left: SubsetId,
        right: SubsetId,
    ) -> bool {
        Self::grow(&mut self.proven, auto.num_subsets());
        if find(&mut self.proven, left) == find(&mut self.proven, right) {
            return true;
        }
        if self.refuted.contains(&canon(left, right)) {
            return false;
        }
        // Speculative congruence: the persistent one plus this search's
        // merges; committed only if no distinguishing pair turns up.  The
        // root pair is merged up front (as every pushed pair is) so a
        // successful commit memoizes the queried pair itself.
        let mut uf = self.proven.clone();
        union(&mut uf, left, right);
        let mut pairs: Vec<(SubsetId, SubsetId)> = vec![(left, right)];
        let mut provenance: Vec<Option<usize>> = vec![None];
        let mut head = 0;
        while head < pairs.len() {
            let (x, y) = pairs[head];
            if auto.classes_differ(view, notion, x, y) || self.refuted.contains(&canon(x, y)) {
                // Every ancestor is distinguished by the same suffix.
                let mut cursor = Some(head);
                while let Some(i) = cursor {
                    self.refuted.insert(canon(pairs[i].0, pairs[i].1));
                    cursor = provenance[i];
                }
                return false;
            }
            for a in 0..auto.num_actions() {
                let action = ActionId::from_index(a);
                let nx = auto.step(view, x, action);
                let ny = auto.step(view, y, action);
                Self::grow(&mut uf, auto.num_subsets());
                if union(&mut uf, nx, ny) {
                    pairs.push((nx, ny));
                    provenance.push(Some(head));
                }
            }
            head += 1;
        }
        self.proven = uf;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_fsp::format;
    use ccs_fsp::saturate::{tau_closure, SaturatedView};

    fn arena(fsp: &Fsp) -> (SubsetAutomaton, SaturatedView) {
        let closure = tau_closure(fsp);
        let view = SaturatedView::build(fsp, &closure);
        (SubsetAutomaton::new(fsp), view)
    }

    #[test]
    fn dead_state_is_interned_first_and_self_loops() {
        let f = format::parse("trans p a q\naccept q").unwrap();
        let (mut auto, view) = arena(&f);
        assert_eq!(auto.num_subsets(), 1);
        assert!(auto.subset(SubsetAutomaton::DEAD).is_empty());
        assert!(!auto.is_accepting(SubsetAutomaton::DEAD));
        let a = f.action_id("a").unwrap();
        assert_eq!(
            auto.step(&view, SubsetAutomaton::DEAD, a),
            SubsetAutomaton::DEAD
        );
    }

    #[test]
    fn starts_are_epsilon_closures_and_memoized() {
        let f = format::parse("trans p tau q\ntrans q a r\naccept r").unwrap();
        let (mut auto, view) = arena(&f);
        let p = f.state_by_name("p").unwrap();
        let sp = auto.start(&view, p);
        assert_eq!(auto.subset(sp).len(), 2); // {p, q}
        assert_eq!(auto.start(&view, p), sp);
        let a = f.action_id("a").unwrap();
        let after = auto.step(&view, sp, a);
        assert!(auto.is_accepting(after));
        // Enabled set: `a` is weakly enabled at {p, q}, nothing at {r}.
        assert_eq!(auto.enabled(sp), &[a.index()]);
        assert!(auto.enabled(after).is_empty());
    }

    #[test]
    fn steps_are_computed_once() {
        let f = format::parse("trans p a p\ntrans p b p\naccept p").unwrap();
        let (mut auto, view) = arena(&f);
        let p = f.start();
        let sp = auto.start(&view, p);
        for _ in 0..3 {
            for a in f.action_ids() {
                assert_eq!(auto.step(&view, sp, a), sp);
            }
        }
        // 2 actions on {p}; the dead state's loops were prefilled.
        assert_eq!(auto.steps_computed(), 2);
    }

    #[test]
    fn refusal_classes_intern_antichains() {
        // After `a`, the split process refuses {b} or {c}; the merged one
        // refuses neither — different antichains, different classes.
        let f = format::parse(
            "trans u a v\ntrans u a w\ntrans v b x\ntrans w c y\n\
             trans p a q\ntrans q b r\ntrans q c s\naccept u v w x y p q r s",
        )
        .unwrap();
        let (mut auto, view) = arena(&f);
        let u = f.state_by_name("u").unwrap();
        let p = f.state_by_name("p").unwrap();
        let a = f.action_id("a").unwrap();
        let su = auto.start(&view, u);
        let sp = auto.start(&view, p);
        let after_u = auto.step(&view, su, a); // {v, w}
        let after_p = auto.step(&view, sp, a); // {q}
        assert_ne!(
            auto.refusal_class(&view, after_u),
            auto.refusal_class(&view, after_p)
        );
        // Memoized: same class on re-query.
        assert_eq!(
            auto.refusal_class(&view, after_u),
            auto.refusal_class(&view, after_u)
        );
        // Start subsets: both enable exactly `a`, refusing {b, c} — equal.
        assert_eq!(auto.refusal_class(&view, su), auto.refusal_class(&view, sp));
    }

    #[test]
    fn explore_completes_the_table() {
        let f = format::parse("trans p a q\ntrans q b p\ntrans r a r\naccept p r").unwrap();
        let (mut auto, view) = arena(&f);
        for s in f.state_ids() {
            auto.start(&view, s);
        }
        auto.explore(&view);
        let table = auto.transition_table();
        assert_eq!(table.len(), auto.num_subsets() * auto.num_actions());
        assert!(table.iter().all(|&t| t < auto.num_subsets()));
    }

    #[test]
    fn pair_cache_agrees_with_free_checkers_and_memoizes() {
        let f = format::parse("trans p a q\ntrans r a s\ntrans x b y\ntrans q a q\naccept q s y")
            .unwrap();
        let (mut auto, view) = arena(&f);
        let mut cache = PairCache::new();
        let states: Vec<StateId> = f.state_ids().collect();
        for &a in &states {
            for &b in &states {
                let (sa, sb) = (auto.start(&view, a), auto.start(&view, b));
                let got = cache.equivalent(&mut auto, &view, DetNotion::Language, sa, sb);
                let want = crate::language::language_equivalent_states(&f, a, b).holds;
                assert_eq!(got, want, "{a} vs {b}");
                // Positive verdicts land in the committed congruence (the
                // root pair is merged, not just its successors), so repeats
                // and the symmetric query take the early exit.
                if want {
                    assert!(cache.is_proven(sa, sb), "{a} ≡ {b} not memoized");
                }
                // Memoized verdicts are stable.
                assert_eq!(
                    cache.equivalent(&mut auto, &view, DetNotion::Language, sa, sb),
                    want
                );
            }
        }
        assert!(cache.refuted_pairs() > 0);
    }

    #[test]
    fn determinized_partition_matches_pairwise_oracle_per_notion() {
        let f = format::parse(
            "trans u a v\ntrans u a w\ntrans v b x\ntrans w c y\n\
             trans p a q\ntrans q b r\ntrans q c s\naccept u v w x y p q r s",
        )
        .unwrap();
        let closure = tau_closure(&f);
        let view = SaturatedView::build(&f, &closure);
        for notion in [DetNotion::Language, DetNotion::Trace, DetNotion::Failure] {
            let mut auto = SubsetAutomaton::new(&f);
            let partition = determinized_partition(
                &mut auto,
                &view,
                notion,
                f.num_states(),
                Algorithm::PaigeTarjan,
            );
            for p in f.state_ids() {
                for q in f.state_ids() {
                    let want = match notion {
                        DetNotion::Language => {
                            crate::language::language_equivalent_states(&f, p, q).holds
                        }
                        DetNotion::Trace => crate::traces::trace_equivalent_states(&f, p, q).holds,
                        DetNotion::Failure => {
                            crate::failures::failure_equivalent_states(&f, p, q).equivalent
                        }
                    };
                    assert_eq!(
                        partition.same_block(p.index(), q.index()),
                        want,
                        "{notion:?}: {p} vs {q}"
                    );
                }
            }
        }
    }

    #[test]
    fn det_notion_of_maps_only_the_pspace_notions() {
        assert_eq!(
            DetNotion::of(Equivalence::Language),
            Some(DetNotion::Language)
        );
        assert_eq!(DetNotion::of(Equivalence::Trace), Some(DetNotion::Trace));
        assert_eq!(
            DetNotion::of(Equivalence::Failure),
            Some(DetNotion::Failure)
        );
        assert_eq!(DetNotion::of(Equivalence::Strong), None);
        assert_eq!(DetNotion::of(Equivalence::KObservational(1)), None);
    }
}
